"""The asyncio HTTP front of the ingestion service (stdlib only).

A deliberately small HTTP/1.1 server: every connection carries one
request (``Connection: close``), bodies are bounded by
``ServeConfig.max_body_bytes``, and all responses are JSON except the
trace download (``text/plain``).  The heavy lifting — simulation
threads, engine batches, quarantine — lives in :mod:`repro.serve.jobs`;
handlers here only translate HTTP to registry calls.

Routes (all under ``/v1`` except the health probe):

====== ============================= =======================================
POST   /v1/jobs                      create a job (201); body may carry
                                     inline ``steps`` for an upload job
POST   /v1/jobs/{id}/events          append one NDJSON chunk of step events
POST   /v1/jobs/{id}/close           end of stream; job finalizes
DELETE /v1/jobs/{id}                 cancel
GET    /v1/jobs/{id}                 status (live progress while streaming)
GET    /v1/jobs/{id}/clusters        current/final cluster set
GET    /v1/jobs/{id}/metrics         serve + run metrics
GET    /v1/jobs/{id}/result          result summary (409 until terminal)
GET    /v1/jobs/{id}/trace           final trace, ``text/plain``
GET    /v1/stats                     service-wide counters
GET    /healthz                      liveness probe
====== ============================= =======================================
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from ..harness.engine import ExperimentEngine
from .jobs import TERMINAL_STATES, JobError, JobRegistry, ServeConfig

__all__ = ["ServeApp", "ServeConfig", "ServerThread"]

_MAX_HEADER_BYTES = 32 * 1024


class _BadRequest(Exception):
    pass


def _json_bytes(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class ServeApp:
    """One server instance: a registry plus an asyncio acceptor."""

    def __init__(self, engine: ExperimentEngine,
                 config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.registry = JobRegistry(engine, self.config)
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.registry.shutdown()

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            except JobError as exc:
                await self._respond(writer, exc.status, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError):
                return
            try:
                status, doc, content_type = await asyncio.get_running_loop(
                ).run_in_executor(None, self._route, method, path, body)
            except JobError as exc:
                status, doc, content_type = (
                    exc.status, {"error": str(exc)}, "application/json"
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                status, doc, content_type = (
                    500, {"error": f"{type(exc).__name__}: {exc}"},
                    "application/json",
                )
            await self._respond(writer, status, doc, content_type)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length: {length_raw!r}"
            ) from None
        if length < 0:
            raise _BadRequest("negative Content-Length")
        if length > self.config.max_body_bytes:
            raise JobError(
                413, f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    # -- routing (runs in a worker thread; may block on registry locks) ---

    def _route(self, method: str, path: str,
               body: bytes) -> tuple[int, Any, str]:
        reg = self.registry
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}, "application/json"
        if path == "/v1/stats" and method == "GET":
            return 200, reg.stats(), "application/json"
        if path == "/v1/jobs":
            if method != "POST":
                raise JobError(405, "POST /v1/jobs")
            job = reg.create(self._json_body(body))
            return 201, job.status_doc(), "application/json"
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, action = rest.partition("/")
            if not job_id or "/" in action:
                raise JobError(404, f"no such route: {path}")
            if action == "" and method == "DELETE":
                state = reg.get(job_id).cancel()
                return 200, {"job": job_id, "state": state}, \
                    "application/json"
            if method == "POST":
                if action == "events":
                    return 200, reg.append(job_id, body), "application/json"
                if action == "close":
                    job = reg.get(job_id)
                    job.close()
                    return 200, job.status_doc(), "application/json"
                raise JobError(404, f"no such route: {path}")
            if method == "GET":
                job = reg.get(job_id)
                if action == "":
                    return 200, job.status_doc(), "application/json"
                if action == "clusters":
                    return 200, job.clusters_doc(), "application/json"
                if action == "metrics":
                    return 200, job.metrics_doc(), "application/json"
                if action == "result":
                    if job.state not in TERMINAL_STATES:
                        raise JobError(
                            409, f"job {job_id} is {job.state}; result is "
                            "available once terminal"
                        )
                    return 200, job.status_doc(), "application/json"
                if action == "trace":
                    return 200, job.trace_text(), "text/plain; charset=utf-8"
                raise JobError(404, f"no such route: {path}")
            raise JobError(405, f"{method} not allowed on {path}")
        raise JobError(404, f"no such route: {path}")

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise JobError(400, "body must be a JSON object")
        return doc

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       doc: Any, content_type: str = "application/json"
                       ) -> None:
        if isinstance(doc, str):
            payload = doc.encode("utf-8")
        else:
            payload = _json_bytes(doc)
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


class ServerThread:
    """A :class:`ServeApp` on its own event loop in a daemon thread.

    The test-suite and the CI smoke script use this to run a real server
    in-process: ``with ServerThread(engine) as srv: ... srv.port ...``.
    """

    def __init__(self, engine: ExperimentEngine,
                 config: ServeConfig | None = None) -> None:
        self.app = ServeApp(engine, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        assert self.app.port is not None, "server not started"
        return self.app.port

    @property
    def registry(self) -> JobRegistry:
        return self.app.registry

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.app.start()
            self._started.set()
            assert self.app._server is not None
            async with self.app._server:
                try:
                    await self.app._server.serve_forever()
                except asyncio.CancelledError:
                    pass

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            def _shutdown() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(_shutdown)
            thread.join(timeout)
        self.app.registry.shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
