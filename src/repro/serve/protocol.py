"""Wire protocol of the ingestion service: NDJSON events over HTTP.

One chunk POSTed to ``/v1/jobs/{id}/events`` is newline-delimited JSON:
each non-empty line one *step event*, validated twice —

1. structurally against the checked-in ``schemas/stream_events.schema.json``
   (the same dependency-free validator CI uses for exporter output), and
2. semantically by :func:`repro.workloads.stream.normalize_step`, which
   fills defaults and rejects unknown fields/out-of-range values.

Chunk framing is irrelevant to the result: a client may split its stream
at any line boundaries, and the normalized steps are byte-identical to
the batch spelling (the bit-identity oracle rests on this).
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path
from typing import Any

from ..obs.schema import validate as schema_validate
from ..workloads.stream import (
    StreamSpecError,
    canonical_steps_json,
    normalize_step,
    normalize_steps,
)

__all__ = [
    "ProtocolError",
    "canonical_steps_json",
    "event_schema",
    "normalize_step",
    "normalize_steps",
    "parse_ndjson_events",
]

#: Where the checked-in schemas live relative to this file (repo layout:
#: ``src/repro/serve/protocol.py`` -> ``schemas/``).
_SCHEMA_PATH = (
    Path(__file__).resolve().parents[3] / "schemas"
    / "stream_events.schema.json"
)


class ProtocolError(ValueError):
    """A request body violates the ingestion protocol (HTTP 400)."""


@lru_cache(maxsize=1)
def event_schema() -> dict[str, Any] | None:
    """The stream-event JSON schema, or ``None`` when the checked-out
    tree doesn't carry ``schemas/`` (installed-package case) — code-level
    normalization still validates everything the schema does and more."""
    try:
        with _SCHEMA_PATH.open(encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def parse_ndjson_events(
    body: bytes, *, max_ops_per_step: int | None = None
) -> list[dict]:
    """Parse one NDJSON chunk into a list of *normalized* step events.

    Raises :class:`ProtocolError` naming the offending line on any
    decode, schema, or vocabulary violation — a rejected chunk is atomic
    (no partial append).
    """
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"chunk is not valid UTF-8: {exc}") from None
    schema = event_schema()
    steps: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"line {lineno}: invalid JSON: {exc}") from None
        if schema is not None:
            errors = schema_validate(event, schema)
            if errors:
                raise ProtocolError(
                    f"line {lineno}: schema violation: {errors[0]}"
                )
        try:
            kwargs = {} if max_ops_per_step is None else {
                "max_ops": max_ops_per_step
            }
            steps.append(normalize_step(event, **kwargs))
        except StreamSpecError as exc:
            raise ProtocolError(f"line {lineno}: {exc}") from None
    return steps


def encode_ndjson(steps: list[dict]) -> bytes:
    """Render step events as an NDJSON chunk (client-side helper)."""
    return b"".join(
        json.dumps(step, sort_keys=True).encode("utf-8") + b"\n"
        for step in steps
    )
