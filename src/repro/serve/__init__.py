"""repro.serve — streaming trace-ingestion service with online clustering.

A long-running asyncio HTTP server (stdlib only) behind ``repro serve``:
clients create jobs, stream step events as NDJSON chunks (or upload a
whole stream at creation), and the server feeds each tenant job's events
into the Chameleon machinery *incrementally* — clustering state advances
as chunks arrive, not at job close.  Jobs multiplex over the shared
:class:`~repro.harness.engine.ExperimentEngine` with the
content-addressed run cache as the dedup layer, supervised by the
engine's :class:`~repro.resilience.RetryPolicy` (a poisoned job is
quarantined and reported ``failed``; its siblings finish).

The core correctness claim is the **streamed-vs-batch bit-identity
oracle**: a job fed chunk-by-chunk produces the exact clustering output
(`ClusterSet`, lead traces, downloadable trace bytes) of the equivalent
batch ``repro run --workload stream``.  See docs/SERVING.md.

This module keeps imports lazy so that dependency-light consumers (the
``stream`` workload, the protocol helpers) never pull in the engine or
the asyncio app.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "JobError",
    "JobRegistry",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "parse_ndjson_events",
]

_LAZY = {
    "JobError": ".jobs",
    "JobRegistry": ".jobs",
    "ServeApp": ".app",
    "ServeConfig": ".jobs",
    "ServerThread": ".app",
    "ServeClient": ".client",
    "parse_ndjson_events": ".protocol",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module, __name__), name)
