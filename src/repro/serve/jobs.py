"""Job registry: tenant lifecycle, engine multiplexing, quarantine.

Two job kinds share one lifecycle vocabulary:

* **streamed** jobs (``POST /v1/jobs`` then NDJSON chunks) run a
  dedicated simulation thread that consumes an :class:`EventBuffer`
  incrementally — state ``open`` while accepting events, ``finalizing``
  after close, then ``complete``/``failed``/``cancelled``.  On success
  the result is written into the engine's content-addressed cache under
  the digest of the *equivalent batch cell*, so a later batch run (or
  upload of the same events) is a cache hit.
* **upload** jobs (``steps`` inline at creation) are batched by a single
  dispatcher thread into one ``engine.run_cells(..., contain_errors=True)``
  call: they multiplex over the engine's worker pool, dedup against the
  cache and each other, and a poisoned job is *quarantined* by the
  engine's :class:`~repro.resilience.RetryPolicy` machinery — it reports
  ``failed`` with its quarantine record while its batch siblings
  complete.

Streamed jobs cannot be deadline-killed (threads aren't killable), so
their supervision is the policy's ``job_idle_timeout``: a stream that
goes quiet mid-job is aborted and failed as abandoned.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.config import ChameleonConfig
from ..harness.engine import ExperimentEngine, make_cell
from ..harness.runner import Mode, RunResult, chameleon_config_for, run_mode
from ..obs.metrics import MetricsRegistry
from ..resilience.policy import QuarantineError
from ..simmpi.simconfig import SimConfig, parse_config
from ..workloads.stream import (
    MAX_OPS_PER_STEP,
    StreamWorkload,
    canonical_steps_json,
    normalize_steps,
)
from .ingest import EventBuffer, LiveStreamWorkload, StreamAborted, \
    progress_snapshot
from .protocol import ProtocolError

__all__ = [
    "Job",
    "JobError",
    "JobRegistry",
    "ServeConfig",
    "TERMINAL_STATES",
]

TERMINAL_STATES = ("complete", "failed", "cancelled")


class JobError(Exception):
    """A request-level error with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the ingestion service (service-level DoS bounds).

    ``idle_timeout`` of ``None`` defers to the engine policy's
    ``job_idle_timeout``; an explicit value overrides it.
    """

    host: str = "127.0.0.1"
    port: int = 8537
    max_stream_jobs: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    max_steps_per_job: int = 100_000
    max_ops_per_step: int = MAX_OPS_PER_STEP
    max_nprocs: int = 4096
    idle_timeout: float | None = None
    retain_jobs: int = 1024
    #: seconds the upload dispatcher waits after waking to coalesce
    #: concurrently-submitted jobs into one engine batch
    batch_window: float = 0.05

    def __post_init__(self) -> None:
        if self.max_stream_jobs < 1:
            raise ValueError("max_stream_jobs must be >= 1")
        if self.max_body_bytes < 1024:
            raise ValueError("max_body_bytes must be >= 1024")
        if self.max_nprocs < 1:
            raise ValueError("max_nprocs must be >= 1")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive (or None)")


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to rebuild a job's batch-equivalent cell."""

    nprocs: int
    mode: Mode
    call_frequency: int
    config: ChameleonConfig
    sim: SimConfig
    label: str = ""


def _parse_spec(body: dict[str, Any], limits: ServeConfig) -> JobSpec:
    if not isinstance(body, dict):
        raise JobError(400, "job body must be a JSON object")
    known = {"nprocs", "mode", "call_frequency", "config_overrides",
             "config", "label", "steps"}
    extra = set(body) - known
    if extra:
        raise JobError(400, f"unknown field(s): {', '.join(sorted(extra))}")
    nprocs = body.get("nprocs", 8)
    if (isinstance(nprocs, bool) or not isinstance(nprocs, int)
            or not 1 <= nprocs <= limits.max_nprocs):
        raise JobError(
            400, f"nprocs must be an int in [1, {limits.max_nprocs}]"
        )
    try:
        mode = Mode(body.get("mode", "chameleon"))
    except ValueError:
        raise JobError(
            400, f"unknown mode {body.get('mode')!r}; choose one of "
            f"{', '.join(m.value for m in Mode)}"
        ) from None
    call_frequency = body.get("call_frequency", 1)
    if (isinstance(call_frequency, bool) or not isinstance(call_frequency, int)
            or call_frequency < 1):
        raise JobError(400, "call_frequency must be an int >= 1")
    overrides = body.get("config_overrides", {})
    if not isinstance(overrides, dict):
        raise JobError(400, "config_overrides must be an object")
    try:
        config = chameleon_config_for(
            StreamWorkload, call_frequency=call_frequency, **overrides
        )
    except (TypeError, ValueError) as exc:
        raise JobError(400, f"bad config_overrides: {exc}") from None
    sim_kv = body.get("config", {})
    if not isinstance(sim_kv, dict):
        raise JobError(400, "config must be an object of SimConfig fields")
    try:
        sim = parse_config([f"{k}={v}" for k, v in sorted(sim_kv.items())])
    except ValueError as exc:
        raise JobError(400, f"bad config: {exc}") from None
    if sim.shards != 1:
        raise JobError(
            400, "sharded execution is not supported for serve jobs "
            "(jobs already parallelize across the worker pool)"
        )
    label = body.get("label", "")
    if not isinstance(label, str) or len(label) > 200:
        raise JobError(400, "label must be a string of <= 200 chars")
    return JobSpec(nprocs=nprocs, mode=mode, call_frequency=call_frequency,
                   config=config, sim=sim, label=label)


class Job:
    """One tenant job; all mutable state is guarded by ``_lock``."""

    def __init__(self, job_id: str, spec: JobSpec, kind: str,
                 idle_timeout: float | None) -> None:
        self.id = job_id
        self.spec = spec
        self.kind = kind  # "streamed" | "upload"
        self._lock = threading.Lock()
        self.state = "open" if kind == "streamed" else "finalizing"
        self.steps: list[dict] = []
        self.chunks = 0
        self.bytes_in = 0
        self.consumed = 0
        self.live: dict[str, Any] = {}
        self.error: str | None = None
        self.quarantine: dict[str, Any] | None = None
        self.result: RunResult | None = None
        self.fingerprint: str | None = None
        self.digest: str | None = None
        self.cache_outcome: str | None = None
        self.metrics = MetricsRegistry()
        self.buffer = (
            EventBuffer(idle_timeout) if kind == "streamed" else None
        )
        self.thread: threading.Thread | None = None

    # -- producer side (HTTP handlers) ----------------------------------

    def append_steps(self, steps: list[dict], nbytes: int,
                     max_steps: int) -> int:
        with self._lock:
            if self.state != "open":
                raise JobError(
                    409, f"job {self.id} is {self.state}, not accepting "
                    "events"
                )
            if len(self.steps) + len(steps) > max_steps:
                raise JobError(
                    413, f"job {self.id} would exceed {max_steps} steps"
                )
            self.steps.extend(steps)
            self.chunks += 1
            self.bytes_in += nbytes
            self.metrics.count("serve/chunks", 1)
            self.metrics.count("serve/steps_received", len(steps))
            self.metrics.count("serve/bytes_in", nbytes)
        assert self.buffer is not None
        try:
            return self.buffer.extend(steps)
        except StreamAborted as exc:
            raise JobError(409, f"job {self.id}: {exc}") from None

    def close(self) -> str:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return self.state
            if self.state == "open":
                self.state = "finalizing"
        if self.buffer is not None:
            self.buffer.close()
        return "finalizing"

    def cancel(self) -> str:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return self.state
        if self.buffer is not None:
            self.buffer.abort("cancelled")
        else:
            # upload job: mark for the dispatcher to skip
            with self._lock:
                self.state = "cancelled"
                self.error = "cancelled"
        return "cancelling"

    # -- consumer side (sim thread / dispatcher) -------------------------

    def publish(self, step_index: int, decision: Any, tracer: Any) -> None:
        snap = progress_snapshot(step_index, decision, tracer)
        with self._lock:
            self.consumed = step_index + 1
            self.live = snap
            self.metrics.count("serve/steps_consumed", 1)

    def fail(self, error: str, quarantine: dict[str, Any] | None = None,
             state: str = "failed") -> None:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            self.error = error
            self.quarantine = quarantine

    def complete_with(self, result: RunResult, digest: str | None,
                      cache_outcome: str | None) -> None:
        fingerprint = result.fingerprint()
        with self._lock:
            if self.state in TERMINAL_STATES:
                return
            self.result = result
            self.fingerprint = fingerprint
            self.digest = digest
            self.cache_outcome = cache_outcome
            self.state = "complete"

    # -- views -----------------------------------------------------------

    def status_doc(self) -> dict[str, Any]:
        with self._lock:
            doc: dict[str, Any] = {
                "job": self.id,
                "kind": self.kind,
                "state": self.state,
                "label": self.spec.label,
                "nprocs": self.spec.nprocs,
                "mode": self.spec.mode.value,
                "steps_received": len(self.steps),
                "steps_consumed": self.consumed,
                "chunks": self.chunks,
                "bytes_in": self.bytes_in,
            }
            if self.live:
                doc["live"] = dict(self.live)
            if self.error is not None:
                doc["error"] = self.error
            if self.quarantine is not None:
                doc["quarantine"] = dict(self.quarantine)
            if self.digest is not None:
                doc["digest"] = self.digest
            if self.cache_outcome is not None:
                doc["cache"] = self.cache_outcome
            if self.result is not None:
                doc["result"] = self._result_summary()
            return doc

    def _result_summary(self) -> dict[str, Any]:
        result = self.result
        assert result is not None
        return {
            "fingerprint": self.fingerprint,
            "max_time": result.max_time,
            "total_time": result.total_time,
            "lead_ranks": sorted(result.lead_ranks),
            "failed_ranks": list(result.failed_ranks),
            "has_trace": result.trace is not None,
        }

    def clusters_doc(self) -> dict[str, Any]:
        with self._lock:
            doc: dict[str, Any] = {"job": self.id, "state": self.state}
            clusters = self.live.get("clusters")
            if clusters is not None:
                doc.update(clusters)
            elif self.result is not None:
                doc["leads"] = sorted(self.result.lead_ranks)
            return doc

    def metrics_doc(self) -> dict[str, Any]:
        with self._lock:
            doc: dict[str, Any] = {
                "job": self.id,
                "serve": self.metrics.to_dict(),
            }
            if self.result is not None:
                doc["run"] = self.result.registry().to_dict()
            return doc

    def trace_text(self) -> str:
        with self._lock:
            if self.state != "complete":
                raise JobError(
                    409, f"job {self.id} is {self.state}; trace is "
                    "available once complete"
                )
            assert self.result is not None
            if self.result.trace is None:
                raise JobError(
                    404, f"job {self.id} ran in mode "
                    f"{self.spec.mode.value!r}, which records no trace"
                )
            return self.result.trace.serialize()


class JobRegistry:
    """All jobs of one server, plus the threads that execute them."""

    def __init__(self, engine: ExperimentEngine,
                 config: ServeConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.idle_timeout = (
            self.config.idle_timeout
            if self.config.idle_timeout is not None
            else engine.policy.job_idle_timeout
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._counter = itertools.count(1)
        self._upload_q: list[Job] = []
        self._qcond = threading.Condition()
        self._shutdown = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- creation --------------------------------------------------------

    def _new_id(self) -> str:
        return f"j{next(self._counter):05d}-{os.urandom(3).hex()}"

    def create(self, body: dict[str, Any]) -> Job:
        spec = _parse_spec(body, self.config)
        steps_raw = body.get("steps")
        if steps_raw is not None:
            try:
                steps = normalize_steps(
                    steps_raw, max_steps=self.config.max_steps_per_job,
                    max_ops=self.config.max_ops_per_step,
                )
            except ValueError as exc:
                raise JobError(400, f"bad steps: {exc}") from None
            if not steps:
                raise JobError(400, "steps must contain at least one step")
            job = Job(self._new_id(), spec, "upload", None)
            job.steps = steps
            with self._lock:
                self._register(job)
            with self._qcond:
                self._upload_q.append(job)
                self._qcond.notify_all()
            return job
        with self._lock:
            active = sum(
                1 for j in self._jobs.values()
                if j.kind == "streamed" and j.state not in TERMINAL_STATES
            )
            if active >= self.config.max_stream_jobs:
                raise JobError(
                    429, f"too many open streamed jobs "
                    f"({active}/{self.config.max_stream_jobs})"
                )
            job = Job(self._new_id(), spec, "streamed", self.idle_timeout)
            self._register(job)
        job.thread = threading.Thread(
            target=self._run_streamed, args=(job,),
            name=f"repro-serve-{job.id}", daemon=True,
        )
        job.thread.start()
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) > self.config.retain_jobs:
            for jid, old in list(self._jobs.items()):
                if old.state in TERMINAL_STATES:
                    del self._jobs[jid]
                    if len(self._jobs) <= self.config.retain_jobs:
                        break

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobError(404, f"no such job: {job_id}")
        return job

    # -- event ingestion -------------------------------------------------

    def append(self, job_id: str, body: bytes) -> dict[str, Any]:
        from .protocol import parse_ndjson_events

        job = self.get(job_id)
        if job.kind != "streamed":
            raise JobError(
                409, f"job {job_id} is an upload job; it takes no event "
                "chunks"
            )
        try:
            steps = parse_ndjson_events(
                body, max_ops_per_step=self.config.max_ops_per_step
            )
        except ProtocolError as exc:
            raise JobError(400, str(exc)) from None
        total = job.append_steps(steps, len(body),
                                 self.config.max_steps_per_job)
        return {"job": job.id, "accepted": len(steps),
                "steps_received": total}

    # -- streamed execution ----------------------------------------------

    def _run_streamed(self, job: Job) -> None:
        assert job.buffer is not None
        workload = LiveStreamWorkload(job.buffer, publish=job.publish)
        try:
            result = run_mode(
                workload, job.spec.nprocs, job.spec.mode,
                config=job.spec.config, sim=job.spec.sim,
            )
        except StreamAborted as exc:
            self._fail_streamed(job, str(exc))
        except Exception as exc:  # noqa: BLE001 - tenant isolation boundary
            # The simulator wraps a StreamAborted raised inside a rank
            # coroutine in its own failure type; the buffer remembers.
            aborted = job.buffer.abort_reason
            if aborted is not None:
                self._fail_streamed(job, aborted)
            else:
                reason = f"cell-error: {type(exc).__name__}: {exc}"
                job.fail(f"{type(exc).__name__}: {exc}",
                         quarantine={"reason": reason, "attempts": 1})
        else:
            self._finalize_streamed(job, result)

    @staticmethod
    def _fail_streamed(job: Job, reason: str) -> None:
        if reason == "cancelled":
            job.fail("cancelled", state="cancelled")
        else:
            job.fail(reason, quarantine={"reason": reason, "attempts": 1})

    def _finalize_streamed(self, job: Job, result: RunResult) -> None:
        """Record the streamed result and write it through the dedup layer.

        The digest is the *batch-equivalent cell's* — identical to what
        ``repro run --workload stream`` over the same events computes —
        and the stored result is bit-identical to that batch run (the
        oracle the test-suite asserts), so streamed work pre-warms the
        cache for batch reruns and vice versa.
        """
        if not job.steps:
            job.complete_with(result, None, None)
            return
        cell = make_cell(
            "stream", job.spec.nprocs, job.spec.mode,
            workload_params={
                "steps_json": canonical_steps_json(job.steps)
            },
            config=job.spec.config, sim=job.spec.sim,
        )
        digest = cell.digest()
        cache = self.engine.cache
        outcome = "disabled"
        if cache is not None:
            cached = cache.get(digest)
            if cached is None:
                cache.put(digest, result)
                outcome = "stored"
            else:
                outcome = (
                    "hit" if cached.fingerprint() == result.fingerprint()
                    else "divergent"
                )
        job.complete_with(result, digest, outcome)

    # -- upload execution (engine batches) --------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._qcond:
                while not self._upload_q and not self._shutdown:
                    self._qcond.wait()
                if self._shutdown and not self._upload_q:
                    return
            time.sleep(self.config.batch_window)  # coalesce a burst
            with self._qcond:
                batch = [j for j in self._upload_q
                         if j.state not in TERMINAL_STATES]
                self._upload_q.clear()
            if batch:
                self._run_upload_batch(batch)

    def _run_upload_batch(self, jobs: list[Job]) -> None:
        cells = []
        for job in jobs:
            cell = make_cell(
                "stream", job.spec.nprocs, job.spec.mode,
                workload_params={
                    "steps_json": canonical_steps_json(job.steps)
                },
                config=job.spec.config, sim=job.spec.sim,
            )
            job.digest = cell.digest()
            cells.append(cell)
        cache = self.engine.cache
        pre_hit = {
            job.id: cache is not None and cache.path_for(job.digest).exists()
            for job in jobs if job.digest is not None
        }
        quarantined: dict[str, Any] = {}
        try:
            results = self.engine.run_cells(cells, contain_errors=True)
        except QuarantineError as err:
            results = err.results
            quarantined = {q.digest: q for q in err.quarantined}
        except Exception as exc:  # noqa: BLE001 - batch-level host failure
            for job in jobs:
                job.fail(f"{type(exc).__name__}: {exc}")
            return
        for job, result in zip(jobs, results):
            if result is None:
                q = quarantined.get(job.digest)
                reason = q.reason if q is not None else "quarantined"
                job.fail(reason, quarantine={
                    "reason": reason,
                    "attempts": q.attempts if q is not None else 1,
                })
            else:
                if cache is None:
                    outcome = "disabled"
                else:
                    outcome = "hit" if pre_hit.get(job.id) else "stored"
                job.complete_with(result, job.digest, outcome)

    # -- service views ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            doc: dict[str, Any] = {
                "jobs": len(self._jobs),
                "by_state": by_state,
                "engine": self.engine.metrics.as_dict(),
            }
        if self.engine.cache is not None:
            doc["cache"] = self.engine.cache.stats.as_dict()
        return doc

    def shutdown(self, timeout: float = 5.0) -> None:
        with self._qcond:
            self._shutdown = True
            self._qcond.notify_all()
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.buffer is not None and job.state not in TERMINAL_STATES:
                job.buffer.abort("server shutdown")
        self._dispatcher.join(timeout)
        for job in jobs:
            if job.thread is not None:
                job.thread.join(timeout)
