"""A minimal blocking client for the ingestion service (stdlib only).

One :class:`http.client.HTTPConnection` per request — the server closes
every connection after responding, so there is nothing to pool.  Used by
the test-suite, the CI smoke script, and handy from a REPL:

    client = ServeClient("127.0.0.1", 8537)
    job = client.create_job(nprocs=8)["job"]
    client.send_events(job, steps)     # repeat per chunk
    client.close_job(job)
    doc = client.wait(job)
    trace_text = client.trace(job)
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from .protocol import encode_ndjson

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, body: str) -> None:
        super().__init__(f"HTTP {status}: {body.strip()}")
        self.status = status
        self.body = body


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8537,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport --------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None,
                 content_type: str = "application/json") -> tuple[int, str]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": content_type} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read().decode("utf-8")
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: bytes | None = None) -> dict[str, Any]:
        status, text = self._request(method, path, body)
        if not 200 <= status < 300:
            raise ServeHTTPError(status, text)
        return json.loads(text)

    # -- API --------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def create_job(self, **spec: Any) -> dict[str, Any]:
        body = json.dumps(spec).encode("utf-8") if spec else b"{}"
        return self._json("POST", "/v1/jobs", body)

    def send_events(self, job_id: str,
                    steps: list[dict]) -> dict[str, Any]:
        status, text = self._request(
            "POST", f"/v1/jobs/{job_id}/events", encode_ndjson(steps),
            content_type="application/x-ndjson",
        )
        if not 200 <= status < 300:
            raise ServeHTTPError(status, text)
        return json.loads(text)

    def close_job(self, job_id: str) -> dict[str, Any]:
        return self._json("POST", f"/v1/jobs/{job_id}/close")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def clusters(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}/clusters")

    def metrics(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}/metrics")

    def result(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def trace(self, job_id: str) -> str:
        status, text = self._request("GET", f"/v1/jobs/{job_id}/trace")
        if not 200 <= status < 300:
            raise ServeHTTPError(status, text)
        return text

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its
        status document.  Raises :class:`TimeoutError` otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["state"] in ("complete", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout:g}s"
                )
            time.sleep(poll)
