"""Incremental ingestion: feeding a live event stream into the simulator.

The Chameleon machinery runs inside a single-threaded simulated SPMD
world (:func:`~repro.simmpi.launcher.run_spmd` drives every rank
coroutine in one OS thread).  Incremental clustering therefore works by
*blocking the simulation on the stream*: each per-job simulation runs in
a dedicated thread whose rank coroutines pull steps from a thread-safe
:class:`EventBuffer`; when the next step hasn't arrived yet the whole
simulation parks (virtual time is untouched — clocks only advance on
executed ops), and resumes the moment an HTTP chunk lands.  Clustering
state really does advance chunk-by-chunk: after every marker the rank-0
tracer's live :class:`~repro.core.clustering.ClusterSet` is published to
the job, long before close.

Bit-identity with the batch path is structural: the loop below replays
:meth:`repro.workloads.base.Workload.run` exactly (validate, setup,
pre-step, step, progress point, marker), executes the same normalized
step dicts through the same :func:`~repro.workloads.stream.exec_step`,
and defers nothing to job close.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..simmpi.launcher import RankContext
from ..workloads.base import Workload
from ..workloads.stream import StreamWorkload

__all__ = [
    "EOF",
    "EventBuffer",
    "LiveStreamWorkload",
    "StreamAborted",
    "cluster_snapshot",
]


class StreamAborted(RuntimeError):
    """The event stream ended abnormally (cancelled or idle-timed-out)."""


class _Eof:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<EOF>"


#: Sentinel returned by :meth:`EventBuffer.get` once the stream is closed
#: and fully consumed.
EOF = _Eof()


class EventBuffer:
    """Thread-safe ordered buffer between HTTP handlers and a simulation.

    Producers (the asyncio request handlers) call :meth:`extend` /
    :meth:`close` / :meth:`abort`; the single consumer (the job's
    simulation thread, via every rank's coroutine) calls :meth:`get`
    with a monotonically non-decreasing index.
    """

    def __init__(self, idle_timeout: float | None = None) -> None:
        self._steps: list[dict] = []
        self._closed = False
        self._abort_reason: str | None = None
        self._cond = threading.Condition()
        self.idle_timeout = idle_timeout

    def __len__(self) -> int:
        with self._cond:
            return len(self._steps)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def abort_reason(self) -> str | None:
        """Why the stream was aborted, or ``None``.  The simulator wraps
        a consumer-side :class:`StreamAborted` in its own failure type,
        so supervisors check this instead of the exception class."""
        with self._cond:
            return self._abort_reason

    def extend(self, steps: list[dict]) -> int:
        """Append normalized steps; returns the new total."""
        with self._cond:
            if self._closed:
                raise StreamAborted("stream is closed")
            if self._abort_reason is not None:
                raise StreamAborted(self._abort_reason)
            self._steps.extend(steps)
            self._cond.notify_all()
            return len(self._steps)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abort(self, reason: str) -> None:
        with self._cond:
            self._abort_reason = reason
            self._cond.notify_all()

    def get(self, index: int) -> Any:
        """Step ``index``, blocking until it exists; :data:`EOF` once the
        stream is closed and drained.

        Raises :class:`StreamAborted` when the stream was aborted or no
        event arrived within ``idle_timeout`` seconds of waiting.
        """
        deadline = (
            time.monotonic() + self.idle_timeout
            if self.idle_timeout is not None else None
        )
        with self._cond:
            while True:
                if self._abort_reason is not None:
                    raise StreamAborted(self._abort_reason)
                if index < len(self._steps):
                    return self._steps[index]
                if self._closed:
                    return EOF
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Record the abort so sibling rank generators (and
                    # the job supervisor) see a consistent reason.
                    self._abort_reason = (
                        f"idle-timeout: no event within "
                        f"{self.idle_timeout:g}s"
                    )
                    raise StreamAborted(self._abort_reason)
                self._cond.wait(remaining)


#: Called on rank 0 after each marker: (step_index, marker_decision,
#: tracer).  Implementations must be fast and must not touch the sim.
PublishFn = Callable[[int, Any, Any], None]


class LiveStreamWorkload(StreamWorkload):
    """A ``stream`` workload whose steps arrive while it runs.

    Bit-identity with the batch twin is enforced by construction: the
    *entire* execution path — :meth:`Workload.run`'s loop body,
    :meth:`StreamWorkload.timestep`, :func:`exec_step` — is inherited
    unchanged, so every captured call path hashes to the same signature
    as a batch run over the same steps.  The only overrides are the two
    hooks designed to stay off the stack: :meth:`_step_stream`, a
    generator that blocks on the :class:`EventBuffer` until the next
    step arrives (a suspended generator frame is invisible to the
    :class:`~repro.scalatrace.signatures.StackWalker`), and
    :meth:`_on_marker`, which publishes rank-0 progress after the
    marker has already run.  Blocking the generator stalls the entire
    single-threaded simulation, which is exactly right: no rank may run
    ahead of the declared program, and virtual clocks only advance on
    executed ops.
    """

    def __init__(self, buffer: EventBuffer, publish: PublishFn | None = None,
                 compute_scale: float = 1.0) -> None:
        # Bypass StreamWorkload.__init__: there is no steps_json yet.
        Workload.__init__(self, iterations=1, compute_scale=compute_scale)
        self.buffer = buffer
        self.publish = publish
        self._steps: list[dict] = []  # grown as events arrive

    def _step_stream(self, ctx: RankContext) -> Any:
        step = 0
        while True:
            entry = self.buffer.get(step)
            if entry is EOF:
                break
            # All rank coroutines share one OS thread and each runs its
            # own generator; the first to reach a step materializes it
            # for StreamWorkload.timestep.
            if step == len(self._steps):
                self._steps.append(entry)
            yield step
            step += 1
        self.iterations = max(step, 1)

    def _on_marker(self, ctx: RankContext, step: int, decision: Any,
                   tracer: Any) -> None:
        if self.publish is not None and ctx.rank == 0:
            self.publish(step, decision, tracer)


def cluster_snapshot(topk: Any, *, member_cap: int = 64) -> dict[str, Any]:
    """JSON view of a live :class:`~repro.core.clustering.ClusterSet`."""
    clusters = []
    for info in topk.all_clusters():
        entry: dict[str, Any] = {
            "lead": info.lead,
            "size": info.members.count,
            "signature": list(info.signature),
        }
        if info.members.count <= member_cap:
            entry["members"] = list(info.members.ranks())
        clusters.append(entry)
    return {
        "num_clusters": len(topk),
        "num_callpaths": topk.num_callpaths,
        "leads": topk.leads(),
        "clusters": clusters,
    }


def progress_snapshot(step_index: int, decision: Any,
                      tracer: Any) -> dict[str, Any]:
    """The per-marker progress document published to a job.

    Built from whatever the tracer exposes: Chameleon tracers carry the
    live Top-K cluster set and per-rank stats; ScalaTrace/APP tracers
    yield steps-done only.
    """
    snap: dict[str, Any] = {"steps_done": step_index + 1}
    if decision is not None:
        snap["marker_state"] = decision.state.value
        snap["phase_changed"] = bool(decision.phase_changed)
    cstats = getattr(tracer, "cstats", None)
    if cstats is not None:
        snap["reclusterings"] = cstats.reclusterings
        snap["k_used"] = cstats.k_used
        snap["num_callpaths"] = cstats.num_callpaths
    topk = getattr(tracer, "topk", None)
    if topk is not None:
        snap["clusters"] = cluster_snapshot(topk)
    return snap
