"""Command-line interface: run, inspect, replay, and reproduce.

Usage (installed as a module)::

    python -m repro list
    python -m repro run --workload bt --nprocs 16 --mode chameleon -o bt.st
    python -m repro run --workload synthetic --mode chameleon \
        --trace-out t.json --obs-out run.obs.json
    python -m repro trace run.obs.json -o t.json
    python -m repro stats run.obs.json
    python -m repro info bt.st
    python -m repro replay bt.st
    python -m repro experiment table2
    python -m repro experiment fig4 --jobs 4
    python -m repro run --workload bt --faults plan.json --fault-seed 7
    python -m repro chaos --workload bt --nprocs 16 --report chaos.json
    python -m repro bench --baseline benchmarks/BENCH_scaling.json
    python -m repro serve --port 8537 --jobs 4

``experiment`` regenerates one of the paper's tables/figures and prints the
same rows the paper reports (see EXPERIMENTS.md for the mapping).  ``run``
and ``experiment`` share the process-wide experiment engine: ``--jobs N``
fans cells out over worker processes, and a content-addressed run cache
(``--cache-dir``, disable with ``--no-cache``) makes re-invocations serve
previously-computed cells from disk.

Observability: ``run --trace-out`` writes a Chrome ``trace_event`` JSON of
the run's virtual-time timeline (open it in ui.perfetto.dev),
``--metrics-out`` a flat metrics JSONL, and ``--obs-out`` the raw
observability bundle that ``repro trace`` and ``repro stats`` consume
offline.  Instrumented runs bypass the cache; their virtual clocks are
bit-identical to uninstrumented ones.

Fault injection: ``run --faults PLAN.json`` installs a deterministic
:class:`~repro.faults.FaultPlan` (see docs/FAULTS.md for the schema), and
``repro chaos`` sweeps a small built-in fault matrix — crash-a-lead,
drop-messages, noisy-rank — running every scenario twice with the same
seed to check bit-identical reproduction, and reports survival plus the
trace-fidelity delta against the fault-free baseline.

Host resilience: ``repro chaos host`` sweeps *host-level* faults — killed
and SIGSTOPped shard/pool worker processes, damaged cache files — twice,
asserting every fault ends in a recorded fallback, retry or quarantine
with identical virtual-time results (docs/RESILIENCE.md).  ``repro cache
verify`` (``--fix``) sweeps the run cache for corrupt and orphaned
entries.

Failures map to distinct exit codes with one-line diagnostics: invalid
fault plan = 2, deadlock = 3, rank failure = 4, engine limit = 5,
quarantined cells = 6 (partial results preserved on the error).  Pass
``repro --traceback …`` to get the full Python stack instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .api import EXPERIMENTS as _EXPERIMENTS
from .faults.plan import FaultPlan, FaultPlanError
from .harness import Mode, overhead, run_suite
from .harness.engine import CellEvent, ExperimentEngine, configure_engine
from .replay import accuracy, replay_trace
from .resilience.policy import QuarantineError
from .scalatrace.analysis import communication_matrix, hotspots, summarize
from .scalatrace.trace import Trace
from .simmpi.errors import DeadlockError, EngineLimitError, TaskFailedError
from .workloads.registry import workload_names


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for experiment cells "
        "(default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk run cache for this invocation",
    )
    parser.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="run cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-cell progress (hit/start/done) to stderr",
    )


def _progress_printer(event: CellEvent) -> None:
    if event.kind == "scheduled":
        return
    wall = f" [{event.wall:.2f}s]" if event.kind == "done" else ""
    print(f"[engine] {event.kind:>5s} {event.label}{wall}", file=sys.stderr)


def _engine_from(args: argparse.Namespace) -> ExperimentEngine:
    if args.cache_dir and Path(args.cache_dir).is_file():
        raise SystemExit(
            f"error: --cache-dir {args.cache_dir!r} is a file, not a directory"
        )
    return configure_engine(
        jobs=args.jobs,
        cache_dir=args.cache_dir or None,
        no_cache=True if args.no_cache else None,
        progress=_progress_printer if args.progress else None,
    )


def _faults_from(args: argparse.Namespace) -> FaultPlan | None:
    """Load + validate the --faults plan, applying --fault-seed."""
    if not args.faults:
        if args.fault_seed is not None:
            raise SystemExit("error: --fault-seed requires --faults PLAN.json")
        return None
    import dataclasses

    plan = FaultPlan.load(args.faults)
    if args.fault_seed is not None:
        plan = dataclasses.replace(plan, seed=args.fault_seed)
    plan.validate(args.nprocs)
    return plan


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("experiments:")
    for name in sorted(_EXPERIMENTS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    engine = _engine_from(args)
    mode = Mode(args.mode)
    if args.output and mode is Mode.APP:
        print(
            "warning: --output ignored — APP mode runs uninstrumented "
            "and produces no trace; pick a tracing mode "
            "(chameleon/scalatrace/acurdion) to save one",
            file=sys.stderr,
        )
    params = {}
    if args.problem_class:
        params["problem_class"] = args.problem_class
    if args.iterations:
        params["iterations"] = args.iterations
    faults = _faults_from(args)
    if faults is not None:
        return _run_with_faults(args, engine, mode, params, faults)
    modes = (Mode.APP, mode) if mode is not Mode.APP else (Mode.APP,)
    obs_wanted = bool(args.trace_out or args.metrics_out or args.obs_out)
    if obs_wanted:
        # The selected mode runs inline with a live Recorder (bypassing
        # the cache); any baseline cells still go through the engine.
        from .harness.engine import make_suite_cells
        from .obs import Recorder

        cells = make_suite_cells(
            args.workload,
            args.nprocs,
            modes=modes,
            workload_params=params,
            call_frequency=args.call_frequency,
        )
        suite = {}
        for cell in cells:
            if cell.mode is mode:
                suite[cell.mode] = engine.run_cell_instrumented(
                    cell, Recorder()
                )
            else:
                (suite[cell.mode],) = engine.run_cells([cell])
    else:
        suite = run_suite(
            args.workload,
            args.nprocs,
            modes=modes,
            workload_params=params,
            call_frequency=args.call_frequency,
        )
    app = suite[Mode.APP]
    print(f"application time (aggregated): {app.total_time:.6f} s")
    if mode is not Mode.APP:
        result = suite[mode]
        print(f"{mode.value} overhead:            {overhead(result, app):.6f} s")
        if result.trace is not None:
            print(
                f"trace: {result.trace.leaf_count()} PRSD events / "
                f"{result.trace.expanded_count()} MPI calls"
            )
            if args.output:
                result.trace.save(args.output)
                print(f"written to {args.output}")
        elif args.output:
            print(
                f"warning: --output ignored — the {mode.value} run "
                "produced no trace",
                file=sys.stderr,
            )
    if obs_wanted:
        _write_obs_outputs(suite[mode], args)
    return 0


def _run_with_faults(
    args: argparse.Namespace,
    engine: ExperimentEngine,
    mode: Mode,
    params: dict,
    faults: FaultPlan,
) -> int:
    """`run --faults`: one faulted cell, no fault-free APP baseline."""
    from .api import run as api_run
    from .obs import Recorder

    obs_wanted = bool(args.trace_out or args.metrics_out or args.obs_out)
    result = api_run(
        args.workload,
        args.nprocs,
        mode,
        workload_params=params or None,
        call_frequency=args.call_frequency,
        engine=engine,
        instrument=Recorder() if obs_wanted else None,
        faults=faults,
    )
    print(f"{mode.value} run under fault plan {args.faults}")
    print(f"virtual makespan: {result.max_time:.6f} s")
    if result.failed_ranks:
        print(f"crashed ranks: {', '.join(map(str, result.failed_ranks))}")
    summary = result.extra.get("fault_summary", {})
    if summary:
        items = ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
        print(f"fault events: {items}")
    if result.trace is not None:
        print(
            f"trace: {result.trace.leaf_count()} PRSD events / "
            f"{result.trace.expanded_count()} MPI calls"
        )
        if args.output:
            result.trace.save(args.output)
            print(f"written to {args.output}")
    elif args.output:
        print(
            f"warning: --output ignored — the {mode.value} run "
            "produced no trace",
            file=sys.stderr,
        )
    if obs_wanted:
        _write_obs_outputs(result, args)
    return 0


def _write_obs_outputs(result, args: argparse.Namespace) -> None:
    import json

    from .obs import export_chrome_trace, export_metrics_jsonl

    obs = result.obs
    assert obs is not None  # guaranteed by the instrumented path
    if args.trace_out:
        doc = export_chrome_trace(obs, args.trace_out)
        print(
            f"chrome trace: {args.trace_out} "
            f"({len(doc['traceEvents'])} events, {len(obs.ranks())} lanes)"
            " — open in ui.perfetto.dev"
        )
    if args.metrics_out:
        rows = export_metrics_jsonl(result.registry(), args.metrics_out)
        print(f"metrics: {args.metrics_out} ({rows} rows)")
    if args.obs_out:
        with open(args.obs_out, "w", encoding="utf-8") as fh:
            json.dump(obs.to_dict(), fh)
        print(
            f"obs bundle: {args.obs_out} "
            "(inspect with `repro trace` / `repro stats`)"
        )


def _load_obs_bundle(path: str):
    import json

    from .obs import ObsData

    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read obs bundle {path!r}: {exc}")
    if "traceEvents" in data:
        raise SystemExit(
            f"error: {path!r} is an exported Chrome trace; `repro trace` "
            "and `repro stats` take the raw bundle written by "
            "`repro run --obs-out`"
        )
    return ObsData.from_dict(data)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import export_chrome_trace

    obs = _load_obs_bundle(args.run)
    out = args.output or str(Path(args.run).with_suffix("")) + ".trace.json"
    doc = export_chrome_trace(obs, out)
    print(
        f"chrome trace: {out} ({len(doc['traceEvents'])} events, "
        f"{len(obs.ranks())} lanes) — open in ui.perfetto.dev"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import export_metrics_jsonl, format_summary

    obs = _load_obs_bundle(args.run)
    print(format_summary(obs))
    if args.jsonl:
        rows = export_metrics_jsonl(obs, args.jsonl)
        print(f"metrics: {args.jsonl} ({rows} rows)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    print(summarize(trace).report())
    hs = hotspots(trace)
    if hs:
        print("  top senders (p2p bytes):")
        for rank, nbytes in hs:
            print(f"    rank {rank:5d}: {nbytes:.0f} B")
    if args.matrix:
        matrix = communication_matrix(trace)
        print("  communication matrix (bytes):")
        for row in matrix:
            print("   ", " ".join(f"{v:10.0f}" for v in row))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    nprocs = args.nprocs or trace.nprocs
    result = replay_trace(trace, nprocs=nprocs)
    print(f"replayed {result.stats.ops_issued} operations on {nprocs} ranks")
    print(f"replay time: {result.time:.6f} s")
    if result.stats.p2p_dropped:
        print(f"warning: {result.stats.p2p_dropped} unmatched p2p ops dropped")
    if args.reference is not None:
        print(f"accuracy vs reference: {100 * accuracy(args.reference, result.time):.2f}%")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .replay import reconstruct_timeline

    trace = Trace.load(args.trace)
    nprocs = args.nprocs or trace.nprocs
    timeline = reconstruct_timeline(trace, nprocs=nprocs)
    print(timeline.gantt(width=args.width))
    print()
    for rank in range(timeline.nprocs):
        print(
            f"rank {rank:4d}: busy "
            f"{100 * timeline.busy_fraction(rank):5.1f}%"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .scalatrace.difftool import diff_traces

    a = Trace.load(args.trace_a)
    b = Trace.load(args.trace_b)
    diff = diff_traces(a, b)
    print(diff.report())
    return 0 if diff.similarity() >= args.threshold else 1


#: The built-in fault matrix swept by `repro chaos`.
CHAOS_SCENARIOS = ("crash-a-lead", "drop-messages", "noisy-rank")


def _chaos_plan(name: str, baseline, nprocs: int, seed: int) -> FaultPlan:
    from .faults.plan import ComputeFault, CrashFault, MessageFaults

    if name == "crash-a-lead":
        # Prefer a non-zero lead, and crash past the clustering warm-up,
        # so the run exercises lead re-election rather than the rank-0 /
        # startup degraded fallback.
        leads = sorted(r for r in baseline.lead_ranks if r != 0)
        victim = leads[0] if leads else max(1, nprocs - 1)
        return FaultPlan(
            seed=seed,
            crashes=(CrashFault(rank=victim, time=baseline.max_time * 0.7),),
        )
    if name == "drop-messages":
        return FaultPlan(seed=seed, messages=MessageFaults(drop_prob=0.05))
    if name == "noisy-rank":
        return FaultPlan(
            seed=seed,
            compute=(
                ComputeFault(rank=max(1, nprocs // 2), slowdown=1.5,
                             jitter=0.1),
            ),
        )
    raise ValueError(f"unknown chaos scenario {name!r}")


def _cmd_chaos_host(args: argparse.Namespace) -> int:
    from .resilience.chaos import HOST_SCENARIOS, run_host_chaos

    scenarios = args.scenario or list(HOST_SCENARIOS)
    unknown = [s for s in scenarios if s not in HOST_SCENARIOS]
    if unknown:
        raise SystemExit(
            f"error: unknown host chaos scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(HOST_SCENARIOS)})"
        )
    seed = args.fault_seed if args.fault_seed is not None else 0x0457
    print(f"chaos host: {len(scenarios)} scenarios, seed={seed:#x}")
    report = run_host_chaos(scenarios, seed=seed,
                            report_path=args.report, log=print)
    if args.report:
        print(f"chaos report: {args.report}")
    if report["ok"]:
        print("chaos host: every injected fault recovered, reruns identical")
    else:
        print("chaos host: FAILURES above", file=sys.stderr)
    return 0 if report["ok"] else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .api import run as api_run
    from .simmpi.errors import SimMPIError

    if args.kind == "host":
        return _cmd_chaos_host(args)

    # The determinism check needs both runs computed, not one computed and
    # one served from disk, so chaos always bypasses the run cache.
    engine = configure_engine(jobs=args.jobs, no_cache=True)
    sim = _sim_from(args)
    mode = Mode(args.mode)
    seed = args.fault_seed if args.fault_seed is not None else FaultPlan.seed
    scenarios = args.scenario or list(CHAOS_SCENARIOS)
    unknown = [s for s in scenarios if s not in CHAOS_SCENARIOS]
    if unknown:
        raise SystemExit(
            f"error: unknown chaos scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(CHAOS_SCENARIOS)})"
        )
    params = {}
    if args.problem_class:
        params["problem_class"] = args.problem_class
    if args.iterations:
        params["iterations"] = args.iterations
    print(
        f"chaos: {args.workload} x {args.nprocs} ranks, mode={mode.value}, "
        f"seed={seed:#x}"
    )

    baseline = api_run(args.workload, args.nprocs, mode,
                       workload_params=params or None, sim=sim,
                       engine=engine)
    base_leaves = (
        baseline.trace.leaf_count() if baseline.trace is not None else 0
    )
    print(
        f"baseline: makespan {baseline.max_time:.6f} s, "
        f"{base_leaves} trace events"
    )

    report = {
        "workload": args.workload,
        "nprocs": args.nprocs,
        "mode": mode.value,
        "fault_seed": seed,
        "baseline": {
            "fingerprint": baseline.fingerprint(),
            "max_time": baseline.max_time,
            "trace_leaves": base_leaves,
        },
        "scenarios": [],
    }
    ok = True
    for name in scenarios:
        plan = _chaos_plan(name, baseline, args.nprocs, seed)
        entry = {"name": name, "plan": plan.to_dict()}
        kwargs = dict(workload_params=params or None, sim=sim,
                      engine=engine, faults=plan)
        try:
            first = api_run(args.workload, args.nprocs, mode, **kwargs)
            second = api_run(args.workload, args.nprocs, mode, **kwargs)
        except SimMPIError as exc:
            entry.update(
                survived=False,
                deterministic=False,
                error=str(exc).splitlines()[0],
            )
            ok = False
        else:
            deterministic = first.fingerprint() == second.fingerprint()
            leaves = (
                first.trace.leaf_count() if first.trace is not None else 0
            )
            delta = (
                abs(leaves - base_leaves) / base_leaves * 100.0
                if base_leaves
                else 0.0
            )
            entry.update(
                survived=True,
                deterministic=deterministic,
                failed_ranks=list(first.failed_ranks),
                max_time=first.max_time,
                trace_leaves=leaves,
                fidelity_delta_pct=round(delta, 3),
                fault_summary=dict(
                    sorted(first.extra.get("fault_summary", {}).items())
                ),
            )
            ok = ok and deterministic
        report["scenarios"].append(entry)
        if entry.get("survived"):
            status = "ok" if entry["deterministic"] else "NON-DETERMINISTIC"
            print(
                f"  {name:<16s} {status:<17s} "
                f"failed_ranks={entry['failed_ranks']} "
                f"fidelity_delta={entry['fidelity_delta_pct']}%"
            )
        else:
            print(f"  {name:<16s} FAILED            {entry['error']}")
    report["ok"] = ok
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"chaos report: {args.report}")
    if ok:
        print("chaos: all scenarios survived, reruns bit-identical")
    else:
        print("chaos: FAILURES above", file=sys.stderr)
    return 0 if ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .harness.cache import RunCache, default_cache_dir

    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = RunCache(root=root)
    report = cache.verify(fix=args.fix)
    print(f"cache: {root} (generation {report.generation})")
    print(report.summary())
    for path in report.corrupt:
        print(f"  corrupt:  {path}")
    for path in report.orphaned:
        print(f"  orphaned: {path}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"cache report: {args.report}")
    if report.clean:
        return 0
    damage = len(report.corrupt) + len(report.orphaned)
    return 0 if args.fix and report.removed == damage else 1


def _sim_from(args: argparse.Namespace):
    """Parse repeated ``--config KEY=VAL`` flags into a SimConfig."""
    from .simmpi.simconfig import parse_config

    try:
        return parse_config(args.config or ())
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness.bench import (
        KERNELS,
        compare,
        format_bench,
        load_bench,
        run_scaling_bench,
        save_bench,
    )

    sim = _sim_from(args)
    ps = tuple(args.p) if args.p else None
    kernels = tuple(args.kernel) if args.kernel else tuple(KERNELS)

    def _progress(record: dict) -> None:
        shards = f" shards={record['shards']}" if record["shards"] != 1 else ""
        print(
            f"[bench] {record['kernel']} P={record['nprocs']}{shards}: "
            f"{record['wall_s']:.3f}s, "
            f"{record['matched_per_s']} matches/s",
            file=sys.stderr,
        )

    doc = run_scaling_bench(ps=ps, kernels=kernels, progress=_progress,
                            sim=sim)
    print(format_bench(doc))
    if args.output:
        save_bench(doc, args.output)
        print(f"written to {args.output}")
    if args.baseline:
        try:
            baseline = load_bench(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot read baseline: {exc}")
        problems = compare(doc, baseline, tolerance=args.tolerance)
        if problems:
            print(
                f"bench: {len(problems)} regression(s) vs {args.baseline}:",
                file=sys.stderr,
            )
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"bench: within {args.tolerance:.0%} of {args.baseline}")
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    """``repro config show``: print the resolved engine configuration."""
    from .simmpi.simconfig import NETWORK_PRESETS

    sim = _sim_from(args)
    n = sim.network
    preset = next(
        (name for name, model in NETWORK_PRESETS.items() if model == n),
        "<custom>",
    )
    ms = "unlimited" if sim.max_steps is None else str(sim.max_steps)
    print(f"network       {preset}")
    print(f"  latency             {n.latency:.3e} s")
    print(f"  bandwidth           {n.bandwidth:.3e} B/s")
    print(f"  o_send              {n.o_send:.3e} s")
    print(f"  o_recv              {n.o_recv:.3e} s")
    print(f"  eager_threshold     {n.eager_threshold} B")
    print(f"  min_message_bytes   {n.min_message_bytes} B")
    print(f"matching      {sim.matching}")
    print(f"collectives   {sim.collectives}")
    print(f"p2p           {sim.p2p}")
    print(f"shards        {sim.shards}")
    print(f"max_steps     {ms}")
    print(f"cache digest  {sim.digest()}")
    print("  (digests only the outcome-determining fields; matching/"
          "collectives/p2p/shards\n   select bit-identical strategies and "
          "share one cache slot)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        fn = _EXPERIMENTS[args.name]
    except KeyError:
        print(
            f"unknown experiment {args.name!r}; choose from "
            f"{', '.join(sorted(_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    engine = _engine_from(args)
    rows, text = fn()
    print(text)
    print(engine.metrics.summary())
    if args.export:
        from .harness.export import save_rows

        if isinstance(rows, dict):  # table4 returns a dict payload
            rows = [rows]
        path = save_rows(rows, args.export)
        print(f"rows exported to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve.app import ServeApp
    from .serve.jobs import ServeConfig

    engine = _engine_from(args)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_stream_jobs=args.max_stream_jobs,
            idle_timeout=args.idle_timeout,
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    app = ServeApp(engine, config)

    async def _main() -> None:
        await app.start()
        # Explicit handlers rather than relying on KeyboardInterrupt: a
        # process started in the background inherits SIGINT as SIG_IGN,
        # in which case Python never raises KeyboardInterrupt at all —
        # add_signal_handler overrides the disposition either way, and
        # SIGTERM gets the same graceful path.  Installed before the
        # banner so "listening on" means signals are handled too.
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop: ctrl-C still arrives as KeyboardInterrupt
        print(
            f"repro serve: listening on http://{config.host}:{app.port} "
            f"(jobs={engine.jobs}, cache="
            f"{'on' if engine.cache is not None else 'off'})",
            flush=True,
        )
        server = app._server
        assert server is not None
        async with server:
            forever = asyncio.ensure_future(server.serve_forever())
            waiter = asyncio.ensure_future(stop.wait())
            done, pending = await asyncio.wait(
                {forever, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            if forever in done:
                forever.result()  # surface unexpected server errors

    try:
        asyncio.run(_main())
        print("repro serve: shutting down", file=sys.stderr)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        app.registry.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chameleon reproduction: run workloads, inspect traces, "
        "regenerate the paper's experiments.",
    )
    parser.add_argument(
        "--traceback", action="store_true",
        help="print full Python tracebacks instead of one-line diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(
        fn=_cmd_list
    )

    p_run = sub.add_parser("run", help="run a workload under a tracing mode")
    p_run.add_argument("--workload", required=True, choices=workload_names())
    p_run.add_argument("--nprocs", type=int, default=16)
    p_run.add_argument(
        "--mode",
        default="chameleon",
        choices=[m.value for m in Mode],
    )
    p_run.add_argument("--problem-class", default="")
    p_run.add_argument("--iterations", type=int, default=0)
    p_run.add_argument("--call-frequency", type=int, default=1)
    p_run.add_argument("-o", "--output", default="", help="save trace here")
    p_run.add_argument(
        "--trace-out", default="", metavar="FILE",
        help="write a Chrome trace_event JSON of the run's virtual-time "
        "timeline (open in ui.perfetto.dev); implies instrumentation",
    )
    p_run.add_argument(
        "--metrics-out", default="", metavar="FILE",
        help="write the run's metrics as JSONL (one sample per line)",
    )
    p_run.add_argument(
        "--obs-out", default="", metavar="FILE",
        help="write the raw observability bundle for `repro trace`/`stats`",
    )
    p_run.add_argument(
        "--faults", default="", metavar="PLAN.json",
        help="inject deterministic faults from this plan "
        "(schema in docs/FAULTS.md); the run degrades gracefully and "
        "reports crashed ranks + fault-event counters",
    )
    p_run.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="override the fault plan's seed (requires --faults)",
    )
    _add_engine_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_info = sub.add_parser("info", help="summarize a trace file")
    p_info.add_argument("trace")
    p_info.add_argument("--matrix", action="store_true",
                        help="print the full communication matrix")
    p_info.set_defaults(fn=_cmd_info)

    p_replay = sub.add_parser("replay", help="replay a trace file")
    p_replay.add_argument("trace")
    p_replay.add_argument("--nprocs", type=int, default=0)
    p_replay.add_argument(
        "--reference", type=float, default=None,
        help="reference time for the accuracy metric",
    )
    p_replay.set_defaults(fn=_cmd_replay)

    p_tl = sub.add_parser("timeline", help="ASCII Gantt chart of a trace")
    p_tl.add_argument("trace")
    p_tl.add_argument("--nprocs", type=int, default=0)
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.set_defaults(fn=_cmd_timeline)

    p_diff = sub.add_parser("diff", help="semantically compare two traces")
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.add_argument(
        "--threshold", type=float, default=0.95,
        help="exit non-zero if similarity falls below this",
    )
    p_diff.set_defaults(fn=_cmd_diff)

    p_trace = sub.add_parser(
        "trace", help="export an obs bundle as a Chrome/Perfetto trace"
    )
    p_trace.add_argument("run", help="bundle written by `repro run --obs-out`")
    p_trace.add_argument(
        "-o", "--output", default="",
        help="output path (default: <run>.trace.json)",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="summarize an obs bundle's metrics in the terminal"
    )
    p_stats.add_argument("run", help="bundle written by `repro run --obs-out`")
    p_stats.add_argument(
        "--jsonl", default="", metavar="FILE",
        help="also export the metric samples as JSONL",
    )
    p_stats.set_defaults(fn=_cmd_stats)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep a fault matrix (virtual-time faults) or the host-fault "
        "suite (`chaos host`); report survival and determinism",
    )
    p_chaos.add_argument(
        "kind", nargs="?", default="matrix", choices=("matrix", "host"),
        help="matrix = virtual-time fault scenarios inside the simulation "
        "(default); host = kill/stop/delay real worker processes and "
        "damage cache files, asserting recorded recovery",
    )
    p_chaos.add_argument(
        "--workload", default="bt", choices=workload_names()
    )
    p_chaos.add_argument("--nprocs", type=int, default=16)
    p_chaos.add_argument("--problem-class", default="")
    p_chaos.add_argument("--iterations", type=int, default=0)
    p_chaos.add_argument(
        "--mode", default="chameleon",
        choices=[m.value for m in Mode if m is not Mode.APP],
        help="tracing mode to stress (APP produces no trace to compare)",
    )
    p_chaos.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed for every scenario's plan (default: the plan default)",
    )
    p_chaos.add_argument(
        "--scenario", action="append", metavar="NAME",
        help=f"run only this scenario (repeatable; matrix scenarios: "
        f"{', '.join(CHAOS_SCENARIOS)}; host scenarios: "
        "kill-shard-worker, stop-shard-worker, ... — an unknown name "
        "lists the full set)",
    )
    p_chaos.add_argument(
        "--config", action="append", metavar="KEY=VAL",
        help="engine option as a SimConfig field (repeatable), "
        "as in `repro bench --config`",
    )
    p_chaos.add_argument(
        "--report", default="", metavar="FILE",
        help="write the machine-readable chaos report as JSON",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_cache = sub.add_parser(
        "cache",
        help="inspect and repair the on-disk run cache",
    )
    p_cache.add_argument(
        "action", choices=("verify",),
        help="verify: re-validate every entry of the current generation "
        "(schema, key, checksum) and report orphaned .tmp spills and "
        "stale-generation entries",
    )
    p_cache.add_argument(
        "--fix", action="store_true",
        help="delete corrupt and orphaned files instead of just reporting "
        "them",
    )
    p_cache.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="run cache directory (default: $REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    p_cache.add_argument(
        "--report", default="", metavar="FILE",
        help="write the verification report as JSON",
    )
    p_cache.set_defaults(fn=_cmd_cache)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator scaling (wall time, RSS, match throughput) "
        "and optionally gate against a committed BENCH_scaling.json",
    )
    p_bench.add_argument(
        "--p", type=int, action="append", metavar="N",
        help="process count to benchmark (repeatable; "
        "default 256 1024 4096 16384)",
    )
    p_bench.add_argument(
        "--kernel", action="append", metavar="NAME",
        choices=["allreduce_barrier", "halo_exchange"],
        help="kernel to run (repeatable; default: all)",
    )
    p_bench.add_argument(
        "-o", "--output", default="BENCH_scaling.json", metavar="FILE",
        help="write the benchmark document here (empty string to skip)",
    )
    p_bench.add_argument(
        "--baseline", default="", metavar="FILE",
        help="compare against this committed benchmark document; "
        "exit 1 on wall-time regression beyond --tolerance",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed wall-time growth vs baseline (default 0.2 = +20%%)",
    )
    p_bench.add_argument(
        "--config", action="append", metavar="KEY=VAL",
        help="engine option as a SimConfig field (repeatable): "
        "network=qdr|slow|zero, matching=indexed|linear, "
        "collectives=fast|simulated, p2p=fast|simulated, shards=N|auto, "
        "max_steps=N|none",
    )
    p_bench.set_defaults(fn=_cmd_bench)

    p_config = sub.add_parser(
        "config",
        help="inspect the resolved engine configuration",
    )
    p_config.add_argument(
        "action", choices=("show",),
        help="show: print the resolved SimConfig (preset expanded) and "
        "its cache digest",
    )
    p_config.add_argument(
        "--config", action="append", metavar="KEY=VAL",
        help="engine option as a SimConfig field (repeatable), "
        "as in `repro bench --config`",
    )
    p_config.set_defaults(fn=_cmd_config)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name")
    p_exp.add_argument(
        "--export", default="",
        help="also write the rows to this .json or .csv file",
    )
    _add_engine_flags(p_exp)
    p_exp.set_defaults(fn=_cmd_experiment)

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming trace-ingestion service (docs/SERVING.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8537,
        help="TCP port (0 picks a free one and prints it)",
    )
    p_serve.add_argument(
        "--max-stream-jobs", type=int, default=32,
        help="cap on concurrently-open streamed jobs",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="fail a streamed job when no event arrives for this long "
        "(default: the engine policy's job_idle_timeout)",
    )
    _add_engine_flags(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    return parser


#: Exception-to-exit-code map: distinct nonzero codes per failure class,
#: checked in order (FaultPlanError subclasses ValueError, the rest
#: SimMPIError; EngineLimitError must precede TaskFailedError — deliberately
#: unrelated classes, but the ordering documents the intent).
_DIAGNOSTIC_EXITS: tuple[tuple[type, int, str], ...] = (
    (FaultPlanError, 2, "invalid fault plan"),
    (DeadlockError, 3, "deadlock"),
    (EngineLimitError, 5, "engine limit"),
    (TaskFailedError, 4, "rank failure"),
    (QuarantineError, 6, "cells quarantined"),
)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0
    except (FaultPlanError, DeadlockError, EngineLimitError,
            TaskFailedError, QuarantineError) as exc:
        if args.traceback:
            raise
        for etype, code, label in _DIAGNOSTIC_EXITS:
            if isinstance(exc, etype):
                first_line = str(exc).splitlines()[0] if str(exc) else repr(exc)
                print(
                    f"repro: {label}: {first_line} "
                    "(re-run with --traceback for the full stack)",
                    file=sys.stderr,
                )
                return code
        raise  # unreachable: the tuple above covers every caught type


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
