"""repro.scalatrace — ScalaTrace V2: scalable MPI trace compression.

The substrate Chameleon builds on (paper §II): per-rank *intra-node*
loop compression into RSD/PRSD trees, location-independent event encodings
(relative endpoints, stack signatures, ranklists), delta-time histograms,
and the *inter-node* radix-tree trace reduction normally run inside
``MPI_Finalize``.
"""

from .analysis import (
    TraceSummary,
    collective_volume,
    communication_matrix,
    hotspots,
    summarize,
)
from .costmodel import DEFAULT_COSTS, ZERO_COSTS, InstrumentationCostModel
from .difftool import KeyDiff, TraceDiff, diff_traces
from .endpoint import EndpointStat, Pattern
from .events import EventRecord, Op, ParamStat
from .inter import merge_many, merge_traces
from .intra import DEFAULT_WINDOW, IntraCompressor, fold_tail
from .ranklist import Ranklist, RankSet
from .rsd import (
    EventNode,
    LoopNode,
    TraceNode,
    WorkMeter,
    expand,
    iter_leaves,
    merge_nodes,
    same_shape,
    shape_signature,
)
from .signatures import (
    EndpointSignatures,
    RunningAverage,
    StackWalker,
    callpath_signature,
    combine_frames,
    fnv1a64,
    frame_signature,
    hash_u64,
)
from .timehist import DeltaHistogram
from .trace import Trace
from .tracer import TRACE_TAG, ScalaTraceTracer, TracerStats

__all__ = [
    "DEFAULT_COSTS",
    "DEFAULT_WINDOW",
    "DeltaHistogram",
    "EndpointSignatures",
    "EndpointStat",
    "EventNode",
    "EventRecord",
    "InstrumentationCostModel",
    "IntraCompressor",
    "LoopNode",
    "Op",
    "ParamStat",
    "Pattern",
    "Ranklist",
    "RankSet",
    "RunningAverage",
    "ScalaTraceTracer",
    "StackWalker",
    "TRACE_TAG",
    "Trace",
    "TraceDiff",
    "TraceNode",
    "TraceSummary",
    "TracerStats",
    "WorkMeter",
    "ZERO_COSTS",
    "callpath_signature",
    "collective_volume",
    "communication_matrix",
    "combine_frames",
    "expand",
    "fnv1a64",
    "fold_tail",
    "frame_signature",
    "diff_traces",
    "hash_u64",
    "hotspots",
    "KeyDiff",
    "iter_leaves",
    "merge_many",
    "merge_nodes",
    "merge_traces",
    "same_shape",
    "shape_signature",
    "summarize",
]
