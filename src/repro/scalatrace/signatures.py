"""64-bit signatures: stack signatures, Call-Path, SRC/DEST parameter sigs.

ScalaTrace distinguishes MPI events issued from different source locations by
a *stack signature* — a 64-bit fold of the return addresses on the call
stack.  Chameleon builds three derived signatures per marker interval
(paper §III):

* **Call-Path**: ``XOR over events of ((seq mod 10) + 1) * stack_sig``
  (mod 2^64).  The sequence-number multiplier stops permuted call sequences
  or recursion from cancelling out under XOR.
* **SRC** / **DEST**: the *average* of the parameter signatures of the
  source/destination endpoint parameters, computed with an overflow-safe
  running-mean estimator (aggregating raw 64-bit values and dividing would
  overflow the paper's C implementation; we reproduce their estimator).

In this reproduction a "return address" is a hashed Python stack frame
(file, function, line) plus any *logical frames* the workload pushed via
``RankContext.frame`` — the Python equivalent of the Fortran call paths the
original tool would see.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Sequence

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash — the fold used for all signature material."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def hash_u64(value: int) -> int:
    """Hash an integer (e.g. an endpoint offset) to a 64-bit signature.

    A splitmix64 finalizer: cheap, well-distributed, and stable across runs —
    the 'parameter signature' of the paper's clustering input.
    """
    x = value & _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


def _rotl(x: int, r: int) -> int:
    r %= 64
    return ((x << r) | (x >> (64 - r))) & _MASK64


def combine_frames(frame_sigs: Sequence[int]) -> int:
    """Fold per-frame signatures into one order-sensitive stack signature.

    XOR with a depth-dependent rotation so that ``A->B`` and ``B->A`` hash
    differently (plain XOR of frames would be order-blind).
    """
    sig = 0
    for depth, fs in enumerate(frame_sigs):
        sig ^= _rotl(fs & _MASK64, depth * 7 + 1)
    return sig


#: Bound on the signature memo tables.  Real programs have a small, fixed
#: set of call sites, so the caches stay tiny; the cap only guards against
#: pathological generated code, and clearing (rather than evicting) keeps
#: the overflow path trivial.
_SIG_CACHE_MAX = 1 << 16

_frame_sig_cache: dict[tuple[str, str, int], int] = {}
_logical_sig_cache: dict[str, int] = {}


def frame_signature(filename: str, function: str, lineno: int) -> int:
    """Signature of one stack frame ('return address' equivalent).

    Memoized: tracing hashes the same few call sites millions of times, and
    the FNV fold over the formatted string dominated capture cost.
    """
    key = (filename, function, lineno)
    sig = _frame_sig_cache.get(key)
    if sig is None:
        if len(_frame_sig_cache) >= _SIG_CACHE_MAX:
            _frame_sig_cache.clear()
        sig = fnv1a64(f"{filename}:{function}:{lineno}".encode())
        _frame_sig_cache[key] = sig
    return sig


def _logical_signature(name: str) -> int:
    sig = _logical_sig_cache.get(name)
    if sig is None:
        if len(_logical_sig_cache) >= _SIG_CACHE_MAX:
            _logical_sig_cache.clear()
        sig = fnv1a64(("logical:" + name).encode())
        _logical_sig_cache[name] = sig
    return sig


class StackWalker:
    """Captures the application call path at an MPI call site.

    Walks the real Python stack from the caller outward, keeping only
    *application* frames: frames inside the tracing layers
    (``repro.scalatrace``, ``repro.core``) are skipped, and the walk stops at
    the simulator's engine frame — everything below it is harness, not
    application.  Logical frames pushed by the workload are appended so
    skeleton codes can expose the calling contexts of the original programs.
    """

    #: path fragments whose frames are internal plumbing, not application code
    _SKIP_FRAGMENTS = ("/repro/scalatrace/", "/repro/core/", "/repro/replay/")
    _STOP_FRAGMENT = "/repro/simmpi/"

    def __init__(self, extra_skip: tuple[str, ...] = ()) -> None:
        self._skip = self._SKIP_FRAGMENTS + extra_skip
        # Memo over complete captures: an SPMD loop hits the same (stack,
        # logical frames) shape on every iteration, so the combine/label
        # work collapses to one dict probe after the first event.
        self._capture_cache: dict[
            tuple[tuple[tuple[str, str, int], ...], tuple[str, ...]],
            tuple[int, tuple[str, ...]],
        ] = {}

    def capture(self, logical_stack: Sequence[str] = ()) -> tuple[int, tuple[str, ...]]:
        """Return ``(stack_signature, human-readable frame list)``."""
        frames: list[tuple[str, str, int]] = []
        f = sys._getframe(1)
        while f is not None:
            filename = f.f_code.co_filename
            if self._STOP_FRAGMENT in filename:
                break
            if not any(frag in filename for frag in self._skip):
                frames.append((filename, f.f_code.co_name, f.f_lineno))
            f = f.f_back
        key = (tuple(frames), tuple(logical_stack))
        hit = self._capture_cache.get(key)
        if hit is not None:
            return hit
        sigs = [frame_signature(*fr) for fr in frames]
        sigs.extend(_logical_signature(name) for name in key[1])
        labels = tuple(
            [f"{fn.rsplit('/', 1)[-1]}:{func}:{line}" for fn, func, line in frames]
            + [f"<{name}>" for name in key[1]]
        )
        out = (combine_frames(sigs), labels)
        if len(self._capture_cache) >= _SIG_CACHE_MAX:
            self._capture_cache.clear()
        self._capture_cache[key] = out
        return out


def callpath_signature(stack_sigs: Iterable[int]) -> int:
    """The Chameleon Call-Path signature of an event sequence.

    ``XOR over events of ((seq mod 10) + 1) * stack_sig`` (mod 2^64), where
    ``seq`` is the event's position in the interval.  An empty interval has
    signature 0, which the transition graph treats as 'nothing new'.
    """
    sig = 0
    for seq, ss in enumerate(stack_sigs):
        sig ^= ((seq % 10) + 1) * (ss & _MASK64) & _MASK64
    return sig


@dataclass
class RunningAverage:
    """Overflow-safe running mean of 64-bit parameter signatures.

    The paper notes that summing 64-bit signatures before dividing would
    overflow, so Chameleon uses an estimation function; the incremental
    Welford-style update below is that estimator: ``mean += (x - mean)/n``
    never materializes the sum.
    """

    mean: float = 0.0
    count: int = 0

    def add(self, value: int) -> None:
        self.count += 1
        self.mean += ((value & _MASK64) - self.mean) / self.count

    def merge(self, other: "RunningAverage") -> None:
        if other.count == 0:
            return
        total = self.count + other.count
        self.mean += (other.mean - self.mean) * other.count / total
        self.count = total

    def signature(self) -> int:
        """Quantize the mean back to a 64-bit signature value."""
        if self.count == 0:
            return 0
        return int(self.mean) & _MASK64


@dataclass
class EndpointSignatures:
    """Accumulates the SRC and DEST signatures over a marker interval."""

    src: RunningAverage = field(default_factory=RunningAverage)
    dest: RunningAverage = field(default_factory=RunningAverage)

    def observe(self, src_offset: int | None, dest_offset: int | None) -> None:
        if src_offset is not None:
            self.src.add(hash_u64(src_offset))
        if dest_offset is not None:
            self.dest.add(hash_u64(dest_offset))

    def values(self) -> tuple[int, int]:
        return self.src.signature(), self.dest.signature()

    def reset(self) -> None:
        self.src = RunningAverage()
        self.dest = RunningAverage()
