"""Semantic trace comparison.

Replay-time accuracy (the paper's ACC metric) is an end-to-end check; this
module compares two traces *structurally*: do they describe the same MPI
events, covering the same ranks, with the same per-event volume?  Used to
validate that Chameleon's online trace is equivalent to ScalaTrace's
finalize output (the paper's claim that the online trace "incrementally
expands to an equivalent output of MPI_Finalize").

Events are bucketed by their static key (operation, call-site signature,
communicator, root, endpoint arity); per bucket we compare expanded
occurrence counts, covered ranks, and mean payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import StaticKey
from .trace import Trace


@dataclass
class KeyDiff:
    """Differences for one event bucket."""

    key: StaticKey
    occurrences_a: int = 0
    occurrences_b: int = 0
    ranks_a: set = field(default_factory=set)
    ranks_b: set = field(default_factory=set)
    bytes_a: float = 0.0
    bytes_b: float = 0.0

    @property
    def only_in_a(self) -> bool:
        return self.occurrences_b == 0

    @property
    def only_in_b(self) -> bool:
        return self.occurrences_a == 0

    @property
    def rank_coverage_equal(self) -> bool:
        return self.ranks_a == self.ranks_b

    @property
    def occurrence_ratio(self) -> float:
        if self.occurrences_a == 0:
            return float("inf") if self.occurrences_b else 1.0
        return self.occurrences_b / self.occurrences_a


@dataclass
class TraceDiff:
    """Full comparison of two traces."""

    buckets: dict[StaticKey, KeyDiff]
    nprocs_a: int
    nprocs_b: int

    @property
    def common_keys(self) -> list[StaticKey]:
        return [
            k
            for k, d in self.buckets.items()
            if not d.only_in_a and not d.only_in_b
        ]

    @property
    def missing_in_b(self) -> list[StaticKey]:
        return [k for k, d in self.buckets.items() if d.only_in_a]

    @property
    def missing_in_a(self) -> list[StaticKey]:
        return [k for k, d in self.buckets.items() if d.only_in_b]

    def similarity(self) -> float:
        """[0, 1]: fraction of event occurrences in agreement.

        For every bucket the agreement is ``min(occ_a, occ_b)``; the score
        is total agreement over total occurrences of the larger trace.
        """
        agree = 0
        total = 0
        for d in self.buckets.values():
            agree += min(d.occurrences_a, d.occurrences_b)
            total += max(d.occurrences_a, d.occurrences_b)
        return agree / total if total else 1.0

    def rank_coverage_ok(self) -> bool:
        return all(d.rank_coverage_equal for d in self.buckets.values())

    def report(self, max_rows: int = 10) -> str:
        lines = [
            f"trace diff: similarity {self.similarity():.4f}, "
            f"{len(self.common_keys)} shared event kinds, "
            f"{len(self.missing_in_b)} only in A, "
            f"{len(self.missing_in_a)} only in B",
        ]
        shown = 0
        for key, d in self.buckets.items():
            if d.occurrences_a == d.occurrences_b and d.rank_coverage_equal:
                continue
            if shown >= max_rows:
                lines.append("  ...")
                break
            op, sig = key[0], key[1]
            lines.append(
                f"  {op} sig={sig & 0xFFFF:04x}: "
                f"occurrences {d.occurrences_a} vs {d.occurrences_b}, "
                f"ranks {len(d.ranks_a)} vs {len(d.ranks_b)}"
            )
            shown += 1
        return "\n".join(lines)


def _accumulate(trace: Trace, buckets: dict, side: str) -> None:
    for rec in trace.events():
        key = rec.static_key()
        diff = buckets.get(key)
        if diff is None:
            diff = buckets[key] = KeyDiff(key=key)
        members = rec.participants.ranks()
        occurrences = len(members)
        nbytes = (rec.count.mean if rec.count.n else 0.0) * occurrences
        if side == "a":
            diff.occurrences_a += occurrences
            diff.ranks_a.update(members)
            diff.bytes_a += nbytes
        else:
            diff.occurrences_b += occurrences
            diff.ranks_b.update(members)
            diff.bytes_b += nbytes


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Compare two traces bucket-by-bucket."""
    buckets: dict[StaticKey, KeyDiff] = {}
    _accumulate(a, buckets, "a")
    _accumulate(b, buckets, "b")
    return TraceDiff(buckets=buckets, nprocs_a=a.nprocs, nprocs_b=b.nprocs)
