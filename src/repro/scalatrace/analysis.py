"""Trace analysis: summaries and communication matrices from trace files.

Downstream users of a tracing toolset mostly want aggregate views: which
operations dominate, how much data moved between which ranks, where compute
time went.  These helpers derive them from a (compressed) trace without
expanding it per rank more than once.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .events import Op
from .trace import Trace

_P2P_SENDING = {Op.SEND, Op.ISEND, Op.SENDRECV}


@dataclass
class TraceSummary:
    """Aggregate statistics of one trace."""

    nprocs: int
    prsd_events: int
    total_events: int
    compression_ratio: float
    size_bytes: int
    events_by_op: Counter = field(default_factory=Counter)
    bytes_by_op: Counter = field(default_factory=Counter)
    compute_seconds: float = 0.0
    distinct_callsites: int = 0

    def report(self) -> str:
        lines = [
            f"trace over {self.nprocs} ranks",
            f"  {self.prsd_events} PRSD events representing "
            f"{self.total_events} MPI calls "
            f"({self.compression_ratio:.1f}x compression)",
            f"  {self.distinct_callsites} distinct call sites, "
            f"~{self.size_bytes} bytes",
            f"  recorded compute time: {self.compute_seconds:.6f} s",
            "  events by operation:",
        ]
        for op, count in self.events_by_op.most_common():
            nbytes = self.bytes_by_op.get(op, 0)
            lines.append(f"    {op:10s} {count:8d} calls  {nbytes:12.0f} B")
        return "\n".join(lines)


def summarize(trace: Trace) -> TraceSummary:
    """Aggregate per-operation counts, bytes and compute time."""
    summary = TraceSummary(
        nprocs=trace.nprocs,
        prsd_events=trace.leaf_count(),
        total_events=trace.expanded_count(),
        compression_ratio=trace.compression_ratio(),
        size_bytes=trace.size_bytes(),
        distinct_callsites=len(trace.distinct_stack_signatures()),
    )
    for rec in trace.events():
        participants = rec.participants.count
        summary.events_by_op[rec.op.value] += participants
        if rec.count.n:
            summary.bytes_by_op[rec.op.value] += rec.count.mean * participants
        summary.compute_seconds += rec.dhist.mean * participants
    return summary


def communication_matrix(trace: Trace, nprocs: int | None = None) -> np.ndarray:
    """P x P matrix of bytes sent from rank i to rank j during replay.

    Endpoints are resolved exactly like the replay engine does (relative /
    absolute / strided encodings, occurrence-indexed), so the matrix shows
    the traffic the trace *represents*.
    """
    nprocs = trace.nprocs if nprocs is None else nprocs
    matrix = np.zeros((nprocs, nprocs), dtype=np.float64)
    occurrences: dict[int, int] = {}
    for rec in trace.events():
        idx = occurrences.get(id(rec), 0)
        occurrences[id(rec)] = idx + 1
        if rec.op not in _P2P_SENDING or rec.dest is None:
            continue
        nbytes = rec.count.mean if rec.count.n else 0.0
        for r in rec.participants.ranks():
            if r >= nprocs:
                continue
            target = rec.dest.resolve(r, idx)
            if target is not None and 0 <= target < nprocs:
                matrix[r, target] += nbytes
    return matrix


def collective_volume(trace: Trace) -> float:
    """Total bytes moved through collective operations (modelled payloads)."""
    total = 0.0
    for rec in trace.events():
        if rec.op.is_collective and rec.count.n:
            total += rec.count.mean * rec.participants.count
    return total


def hotspots(trace: Trace, top: int = 5) -> list[tuple[int, float]]:
    """Ranks sending the most point-to-point bytes: [(rank, bytes)]."""
    matrix = communication_matrix(trace)
    sent = matrix.sum(axis=1)
    order = np.argsort(sent)[::-1][:top]
    return [(int(r), float(sent[r])) for r in order if sent[r] > 0]
