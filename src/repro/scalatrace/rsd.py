"""RSD / PRSD trace tree: loop-compressed event sequences.

A compressed trace is a list of nodes where each node is either

* an :class:`EventNode` — one MPI event with merged statistics (an RSD leaf),
* a :class:`LoopNode` — ``iters`` repetitions of a body sequence (an RSD for
  the innermost level, a power-RSD when loops nest).

``<100, Send1, Recv1>`` from the paper's example becomes
``LoopNode(100, [EventNode(send), EventNode(recv)])`` and the enclosing
``<1000, RSD1, Barrier1>`` a LoopNode around that.

Two predicates drive compression:

* :func:`same_shape` — structural congruence (same match keys / loop shapes,
  ignoring statistics and loop counts where noted); used to *detect*
  repetitions.
* :func:`merge_nodes` — folds one congruent subtree's statistics into
  another; used when a repetition is found or when traces from different
  ranks are combined.

Both count their comparisons in an optional :class:`WorkMeter`, which the
cost model converts to virtual time — this is how the paper's
``O(n^2 log P)`` inter-compression cost arises mechanically in the
simulation rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from .events import EventRecord


@dataclass
class WorkMeter:
    """Counts the primitive operations compression performs."""

    comparisons: int = 0
    merges: int = 0
    folds: int = 0

    def reset(self) -> None:
        self.comparisons = 0
        self.merges = 0
        self.folds = 0

    @property
    def total(self) -> int:
        return self.comparisons + self.merges + self.folds


@dataclass
class EventNode:
    """A leaf: one compressed MPI event."""

    record: EventRecord

    def size_bytes(self) -> int:
        return self.record.size_bytes()

    def leaf_count(self) -> int:
        return 1

    def expanded_count(self) -> int:
        return 1

    def copy(self) -> "EventNode":
        return EventNode(self.record.copy())

    def __str__(self) -> str:
        return str(self.record)


@dataclass
class LoopNode:
    """``iters`` repetitions of a node sequence (RSD / PRSD)."""

    iters: int
    body: list["TraceNode"] = field(default_factory=list)

    def size_bytes(self) -> int:
        return 16 + sum(n.size_bytes() for n in self.body)

    def leaf_count(self) -> int:
        return sum(n.leaf_count() for n in self.body)

    def expanded_count(self) -> int:
        return self.iters * sum(n.expanded_count() for n in self.body)

    def copy(self) -> "LoopNode":
        return LoopNode(self.iters, [n.copy() for n in self.body])

    def __str__(self) -> str:
        inner = "; ".join(str(n) for n in self.body)
        return f"loop x{self.iters} [{inner}]"


TraceNode = Union[EventNode, LoopNode]


def same_shape(
    a: TraceNode,
    b: TraceNode,
    meter: WorkMeter | None = None,
    match_iters: bool = True,
    allow_chain: bool = True,
) -> bool:
    """Structural congruence of two subtrees.

    EventNodes are congruent when their records are mergeable; LoopNodes
    when their bodies are pairwise congruent (and, if ``match_iters``, the
    iteration counts agree — inter-node merging requires it so that merged
    statistics keep a consistent meaning; intra-node folding absorbs a
    repetition into a neighbouring loop regardless of its count).
    ``allow_chain`` is False for cross-rank merges (see EventRecord).
    """
    if meter is not None:
        meter.comparisons += 1
    if isinstance(a, EventNode) and isinstance(b, EventNode):
        return a.record.can_merge(b.record, allow_chain)
    if isinstance(a, LoopNode) and isinstance(b, LoopNode):
        if match_iters and a.iters != b.iters:
            return False
        if len(a.body) != len(b.body):
            return False
        return all(
            same_shape(x, y, meter, match_iters, allow_chain)
            for x, y in zip(a.body, b.body)
        )
    return False


def merge_nodes(
    dst: TraceNode,
    src: TraceNode,
    meter: WorkMeter | None = None,
    allow_chain: bool = True,
) -> None:
    """Fold ``src``'s statistics into the congruent subtree ``dst``."""
    if meter is not None:
        meter.merges += 1
    if isinstance(dst, EventNode) and isinstance(src, EventNode):
        dst.record.merge(src.record, allow_chain)
        return
    if isinstance(dst, LoopNode) and isinstance(src, LoopNode):
        if len(dst.body) != len(src.body):
            raise ValueError("merge of loops with different body lengths")
        for d, s in zip(dst.body, src.body):
            merge_nodes(d, s, meter, allow_chain)
        return
    raise ValueError(f"cannot merge {type(dst).__name__} with {type(src).__name__}")


def iter_leaves(nodes: list[TraceNode]) -> Iterator[EventNode]:
    """All EventNode leaves in trace order (loop bodies visited once)."""
    for node in nodes:
        if isinstance(node, EventNode):
            yield node
        else:
            yield from iter_leaves(node.body)


def expand(nodes: list[TraceNode]) -> Iterator[EventRecord]:
    """Full event stream: loop bodies repeated ``iters`` times."""
    for node in nodes:
        if isinstance(node, EventNode):
            yield node.record
        else:
            for _ in range(node.iters):
                yield from expand(node.body)


def shape_signature(node: TraceNode) -> tuple:
    """A hashable structural key (used to prefilter congruence checks)."""
    if isinstance(node, EventNode):
        return ("E", node.record.match_key())
    return ("L", node.iters, tuple(shape_signature(n) for n in node.body))
