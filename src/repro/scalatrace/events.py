"""MPI event records: the leaves of ScalaTrace's compressed trace.

Each record captures one MPI call site's parameters with ScalaTrace's
location-independent encodings (paper §II):

* endpoints are :class:`~repro.scalatrace.endpoint.EndpointStat` values
  tracking relative-constant, absolute-constant and strided-pattern
  representations simultaneously (``None`` = wildcard/no endpoint);
* the calling context is a 64-bit stack signature;
* per-occurrence values (payload bytes, tags, compute gaps) are kept as
  mergeable statistics, not per-occurrence lists.

Two records are *mergeable* — into one compressed event covering more loop
iterations or more ranks — when their static keys match and their endpoint
encodings are still jointly representable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from .endpoint import EndpointStat
from .ranklist import RankSet
from .timehist import DeltaHistogram


class Op(enum.Enum):
    """MPI operation kinds the tracer records."""

    SEND = "send"
    RECV = "recv"
    ISEND = "isend"
    IRECV = "irecv"
    SENDRECV = "sendrecv"
    BARRIER = "barrier"
    BCAST = "bcast"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    SCATTER = "scatter"
    ALLGATHER = "allgather"
    ALLTOALL = "alltoall"
    SCAN = "scan"
    MARKER = "marker"
    FINALIZE = "finalize"

    @property
    def is_collective(self) -> bool:
        return self in _COLLECTIVES

    @property
    def is_p2p(self) -> bool:
        return self in _P2P


_COLLECTIVES = {
    Op.BARRIER,
    Op.BCAST,
    Op.REDUCE,
    Op.ALLREDUCE,
    Op.GATHER,
    Op.SCATTER,
    Op.ALLGATHER,
    Op.ALLTOALL,
    Op.SCAN,
    Op.MARKER,
    Op.FINALIZE,
}
_P2P = {Op.SEND, Op.RECV, Op.ISEND, Op.IRECV, Op.SENDRECV}


@dataclass
class ParamStat:
    """Mergeable min/max/mean statistic of an integer call parameter."""

    n: int = 0
    mean: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    @classmethod
    def of(cls, value: float) -> "ParamStat":
        s = cls()
        s.add(value)
        return s

    def add(self, value: float) -> None:
        self.n += 1
        self.mean += (value - self.mean) / self.n
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "ParamStat") -> None:
        if other.n == 0:
            return
        total = self.n + other.n
        self.mean += (other.mean - self.mean) * other.n / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "ParamStat":
        s = ParamStat()
        s.n, s.mean, s.min, s.max = self.n, self.mean, self.min, self.max
        return s

    def to_text(self) -> str:
        lo = "inf" if math.isinf(self.min) else repr(self.min)
        hi = "-inf" if math.isinf(self.max) and self.max < 0 else repr(self.max)
        return f"{self.n}~{self.mean!r}~{lo}~{hi}"

    @classmethod
    def from_text(cls, text: str) -> "ParamStat":
        n, mean, lo, hi = text.split("~")
        s = cls()
        s.n = int(n)
        s.mean = float(mean)
        s.min = math.inf if lo == "inf" else float(lo)
        s.max = -math.inf if hi == "-inf" else float(hi)
        return s


#: Fields that must agree exactly for two records to describe one event.
StaticKey = tuple[str, int, int, int | None, bool, bool]


@dataclass
class EventRecord:
    """One compressed MPI event (possibly covering many ranks/iterations)."""

    op: Op
    stack_sig: int
    comm_id: int = 0
    src: EndpointStat | None = None  # None = wildcard / no source param
    dest: EndpointStat | None = None
    root: int | None = None  # collectives: absolute root rank
    participants: RankSet = field(default_factory=lambda: RankSet.single(0))
    count: ParamStat = field(default_factory=ParamStat)  # payload bytes
    tag: ParamStat = field(default_factory=ParamStat)
    dhist: DeltaHistogram = field(default_factory=DeltaHistogram)
    frames: tuple[str, ...] = ()  # human-readable call path (debug only)

    def static_key(self) -> StaticKey:
        return (
            self.op.value,
            self.stack_sig,
            self.comm_id,
            self.root,
            self.src is None,
            self.dest is None,
        )

    # Backwards-compatible alias used throughout the tests/tools.
    def match_key(self):
        return (
            self.static_key(),
            None if self.src is None else self.src.rel,
            None if self.dest is None else self.dest.rel,
        )

    @property
    def src_offset(self) -> int | None:
        """Constant relative source offset if that encoding survived."""
        return None if self.src is None else self.src.rel

    @property
    def dest_offset(self) -> int | None:
        return None if self.dest is None else self.dest.rel

    @staticmethod
    def _ep_compatible(
        a: EndpointStat | None, b: EndpointStat | None, allow_chain: bool
    ) -> bool:
        if a is None or b is None:
            return a is None and b is None
        return a.can_merge(b, allow_chain)

    def can_merge(self, other: "EventRecord", allow_chain: bool = True) -> bool:
        """Whether ``other`` may fold into this record.

        ``allow_chain`` distinguishes intra-node folding (stream order —
        strided endpoint patterns may extend) from inter-node merging
        (different ranks — only matching constant/cycle encodings merge).
        """
        return (
            self.static_key() == other.static_key()
            and self._ep_compatible(self.src, other.src, allow_chain)
            and self._ep_compatible(self.dest, other.dest, allow_chain)
        )

    def merge(self, other: "EventRecord", allow_chain: bool = True) -> None:
        """Fold ``other`` into this record (``can_merge`` must hold)."""
        if not self.can_merge(other, allow_chain):
            raise ValueError(
                f"cannot merge events: {self} vs {other}"
            )
        if self.src is not None:
            self.src.merge(other.src, allow_chain)  # type: ignore[arg-type]
        if self.dest is not None:
            self.dest.merge(other.dest, allow_chain)  # type: ignore[arg-type]
        self.participants = self.participants.union(other.participants)
        self.count.merge(other.count)
        self.tag.merge(other.tag)
        self.dhist.merge(other.dhist)

    def copy(self) -> "EventRecord":
        return EventRecord(
            op=self.op,
            stack_sig=self.stack_sig,
            comm_id=self.comm_id,
            src=self.src.copy() if self.src else None,
            dest=self.dest.copy() if self.dest else None,
            root=self.root,
            participants=RankSet(self.participants.ranks()),
            count=self.count.copy(),
            tag=self.tag.copy(),
            dhist=self.dhist.copy(),
            frames=self.frames,
        )

    def size_bytes(self) -> int:
        """Modelled allocation of this record (paper Table IV accounting):
        fixed header + endpoint encodings + ranklist + sparse histogram."""
        ep = sum(e.size_bytes() for e in (self.src, self.dest) if e is not None)
        return 96 + ep + self.participants.size_bytes() + self.dhist.size_bytes()

    def __str__(self) -> str:
        ep = ""
        if self.dest is not None:
            ep += f" dest{self.dest!r}"
        if self.src is not None:
            ep += f" src{self.src!r}"
        if self.root is not None:
            ep += f" root={self.root}"
        return (
            f"{self.op.value}{ep} sig={self.stack_sig & 0xFFFF:04x} "
            f"ranks={self.participants}"
        )
