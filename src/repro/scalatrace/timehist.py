"""Delta-time histograms for computation intervals between MPI events.

ScalaTrace does not store one timestamp per event occurrence — that would
defeat compression.  Instead each compressed event keeps a *histogram* of
the delta times (compute gaps) observed across loop iterations and ranks
(Wu et al. [27]: "probabilistic communication and I/O tracing").  The replay
engine draws from the histogram to regenerate computation as sleeps.

Bins are logarithmic from 1 ns to ~1000 s, which covers every interval a
simulated workload produces while keeping the structure constant-size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

_MIN_DT = 1e-9
_DECADES = 12  # 1e-9 .. 1e3 seconds
_BINS_PER_DECADE = 4
_NBINS = _DECADES * _BINS_PER_DECADE + 1


def _bin_index(dt: float) -> int:
    if dt <= _MIN_DT:
        return 0
    idx = int((math.log10(dt) + 9.0) * _BINS_PER_DECADE) + 1
    return min(max(idx, 0), _NBINS - 1)


def _bin_bounds(idx: int) -> tuple[float, float]:
    """(low, high) duration bounds of one logarithmic bin."""
    if idx == 0:
        return (0.0, _MIN_DT)
    lo = 10.0 ** ((idx - 1) / _BINS_PER_DECADE - 9.0)
    hi = 10.0 ** (idx / _BINS_PER_DECADE - 9.0)
    return (lo, hi)


@dataclass
class DeltaHistogram:
    """Mergeable log-binned histogram of non-negative durations."""

    counts: list[int] = field(default_factory=lambda: [0] * _NBINS)
    total: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = 0.0

    def record(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("delta times are non-negative")
        self.counts[_bin_index(dt)] += 1
        self.total += 1
        self.sum += dt
        self.min = dt if dt < self.min else self.min
        self.max = dt if dt > self.max else self.max

    def merge(self, other: "DeltaHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def sample(self) -> float:
        """Deterministic replay value: the mean preserves total replay time
        exactly, which is what the paper's accuracy metric measures."""
        return self.mean

    def draw(self, rng: "random.Random") -> float:
        """Probabilistic replay value (Wu et al. [27]): draw a bin weighted
        by its population and return a uniform value inside it."""
        if self.total == 0:
            return 0.0
        target = rng.randrange(self.total)
        acc = 0
        idx = 0
        for i, c in enumerate(self.counts):
            acc += c
            if target < acc:
                idx = i
                break
        lo, hi = _bin_bounds(idx)
        lo = max(lo, self.min if self.min != math.inf else lo)
        hi = min(hi, self.max if self.max > 0 else hi)
        if hi <= lo:
            return lo
        return lo + rng.random() * (hi - lo)

    def size_bytes(self) -> int:
        """Modelled allocation: only non-empty bins are stored (sparse)."""
        nonzero = sum(1 for c in self.counts if c)
        return 8 * (4 + 2 * nonzero)  # total/sum/min/max + (bin, count) pairs

    def copy(self) -> "DeltaHistogram":
        h = DeltaHistogram()
        h.counts = list(self.counts)
        h.total = self.total
        h.sum = self.sum
        h.min = self.min
        h.max = self.max
        return h

    # -- serialization ----------------------------------------------------

    def to_text(self) -> str:
        bins = ";".join(f"{i}:{c}" for i, c in enumerate(self.counts) if c)
        lo = "inf" if math.isinf(self.min) else repr(self.min)
        return f"{self.total}|{self.sum!r}|{lo}|{self.max!r}|{bins}"

    @classmethod
    def from_text(cls, text: str) -> "DeltaHistogram":
        total_s, sum_s, min_s, max_s, bins = text.split("|")
        h = cls()
        h.total = int(total_s)
        h.sum = float(sum_s)
        h.min = math.inf if min_s == "inf" else float(min_s)
        h.max = float(max_s)
        if bins:
            for part in bins.split(";"):
                i, c = part.split(":")
                h.counts[int(i)] = int(c)
        return h
