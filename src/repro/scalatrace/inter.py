"""Inter-node trace compression: merging per-rank compressed traces.

ScalaTrace consolidates task-level traces in a reduction over a radix tree:
each interior node merges its children's traces into its own and forwards
the result (paper §II).  The merge of two PRSD node sequences is a sequence
*alignment*: congruent subtrees combine (participant ranklists union,
statistics merge), non-matching regions are spliced in order.

The alignment is a longest-common-subsequence DP over structural congruence,
which is ``O(len_a * len_b)`` comparisons per merge — with ``n`` PRSD events
per trace this is the ``O(n^2)`` factor of the paper's ``O(n^2 log P)``
inter-compression bound; the ``log P`` is the radix-tree depth.  Every
comparison is counted in the :class:`WorkMeter` so virtual time can be
charged mechanically.
"""

from __future__ import annotations

from .rsd import (
    EventNode,
    LoopNode,
    TraceNode,
    WorkMeter,
    merge_nodes,
    same_shape,
)


def _static_shape_key(node: TraceNode) -> int:
    """Hash of a node's call-site structure (endpoints/statistics excluded).

    Used to run the alignment DP over cheap integer comparisons; a key match
    is necessary but not sufficient for merging — endpoint compatibility is
    verified with the full :func:`same_shape` only on aligned pairs.
    """
    if isinstance(node, EventNode):
        rec = node.record
        return hash(("E",) + rec.static_key())
    return hash(
        ("L", node.iters, tuple(_static_shape_key(n) for n in node.body))
    )


def merge_traces(
    a: list[TraceNode],
    b: list[TraceNode],
    meter: WorkMeter | None = None,
) -> list[TraceNode]:
    """Merge two compressed node sequences into one (consuming both).

    Congruent nodes merge in place (into ``a``'s node); unmatched nodes are
    spliced in an order consistent with both inputs.  Congruent LoopNodes
    with equal iteration counts merge their bodies recursively.

    The alignment is an LCS DP over per-node structural keys — the
    ``O(len_a * len_b)`` work the paper's inter-compression bound describes;
    the meter is charged one comparison per DP cell.
    """
    if not a:
        return list(b)
    if not b:
        return list(a)
    la, lb = len(a), len(b)
    ka = [_static_shape_key(n) for n in a]
    kb = [_static_shape_key(n) for n in b]
    if meter is not None:
        meter.comparisons += la * lb
    # LCS DP over structural keys.
    dp = [[0] * (lb + 1) for _ in range(la + 1)]
    for i in range(la - 1, -1, -1):
        row = dp[i]
        nxt = dp[i + 1]
        kai = ka[i]
        for j in range(lb - 1, -1, -1):
            if kai == kb[j]:
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = max(nxt[j], row[j + 1])
    # Backtrack, merging matches and splicing the rest.  allow_chain=False:
    # traces from different ranks must not invent strided endpoint patterns.
    out: list[TraceNode] = []
    i = j = 0
    while i < la and j < lb:
        if ka[i] == kb[j] and dp[i][j] == dp[i + 1][j + 1] + 1:
            if same_shape(a[i], b[j], meter, match_iters=True, allow_chain=False):
                merged = a[i]
                if isinstance(merged, LoopNode):
                    other = b[j]
                    assert isinstance(other, LoopNode)
                    merged.body = merge_traces(merged.body, other.body, meter)
                    # bodies are congruent, so merge_traces reduces to pure
                    # pairwise merging; iteration count is unchanged
                else:
                    merge_nodes(merged, b[j], meter, allow_chain=False)
                out.append(merged)
                i += 1
                j += 1
            else:
                # Same call site but incompatible endpoint encodings
                # (ScalaTrace splits such events, e.g. ring wraparound
                # ranks).  Advance only one side: b[j] may still merge
                # with a later a-node carrying the compatible encoding.
                out.append(a[i])
                i += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def merge_many(
    traces: list[list[TraceNode]], meter: WorkMeter | None = None
) -> list[TraceNode]:
    """Left fold of :func:`merge_traces` over several traces."""
    if not traces:
        return []
    acc = traces[0]
    for other in traces[1:]:
        acc = merge_traces(acc, other, meter)
    return acc
