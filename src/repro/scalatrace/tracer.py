"""The ScalaTrace tracer: a PMPI-style interposition layer.

:class:`ScalaTraceTracer` wraps a rank's :class:`~repro.simmpi.Communicator`
with the same awaitable API and records every MPI call into the online
intra-node compressor.  Its :meth:`finalize` performs the classic ScalaTrace
inter-node compression: all P ranks reduce their compressed traces over a
radix tree rooted at rank 0, interior nodes merging child traces into their
own — the ``O(n^2 log P)`` step whose cost Chameleon attacks.

Recording can be switched off per rank (``tracer.enabled``); Chameleon uses
this for non-lead processes in the L state, which is where the paper's
Table IV space savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..faults.injector import LOST
from ..simmpi.comm import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Request
from ..simmpi.datatypes import payload_nbytes
from ..simmpi.launcher import RankContext
from ..simmpi.topology import RadixTree
from .costmodel import DEFAULT_COSTS, InstrumentationCostModel
from .endpoint import EndpointStat
from .events import EventRecord, Op
from .inter import merge_traces
from .intra import DEFAULT_WINDOW, IntraCompressor
from .ranklist import RankSet
from .rsd import WorkMeter
from .signatures import StackWalker
from .trace import Trace

#: reserved tag for shipping trace payloads up the reduction tree
#: (above MAX_USER_TAG: invisible to application wildcard receives)
TRACE_TAG = MAX_USER_TAG + 1


@dataclass
class TracerStats:
    """Counters the experiment harness reads after a run."""

    events_recorded: int = 0
    events_skipped: int = 0  # calls made while tracing was disabled
    record_time: float = 0.0  # virtual seconds spent recording/compressing
    merge_time: float = 0.0  # virtual seconds spent in inter-node merging
    merge_comm_time: float = 0.0  # virtual seconds in merge communication
    peak_bytes: int = 0
    bytes_by_state: dict[str, int] = field(default_factory=dict)


class ScalaTraceTracer:
    """Interposition layer recording one rank's MPI activity."""

    def __init__(
        self,
        ctx: RankContext,
        costs: InstrumentationCostModel = DEFAULT_COSTS,
        window: int = DEFAULT_WINDOW,
        tree_arity: int = 2,
    ) -> None:
        self.ctx = ctx
        self.comm = ctx.comm
        self.costs = costs
        self.tree_arity = tree_arity
        #: the run's observability event bus (no-op unless a Recorder was
        #: passed to run_spmd); never advances virtual time
        self.obs = ctx.comm.engine.instrument
        self.meter = WorkMeter()
        self.compressor = IntraCompressor(window=window, meter=self.meter)
        self.walker = StackWalker()
        self.enabled = True
        self.stats = TracerStats()
        self._last_event_end = ctx.clock
        self._interval_records: list[EventRecord] = []  # since last marker

    # -- identity -----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def nprocs(self) -> int:
        return self.comm.size

    # -- recording ---------------------------------------------------------

    def _record(
        self,
        op: Op,
        *,
        src: int | None = None,
        dest: int | None = None,
        root: int | None = None,
        nbytes: int = 0,
        tag: int = 0,
        comm_id: int | None = None,
    ) -> EventRecord | None:
        """PMPI pre-wrapper: build and compress the event record.

        Returns the record (or None when tracing is disabled) so subclasses
        can feed signature accumulators.
        """
        if not self.enabled:
            self.stats.events_skipped += 1
            return None
        t0 = self.ctx.clock
        dt = max(self.ctx.clock - self._last_event_end, 0.0)
        sig, frames = self.walker.capture(self.ctx.task.logical_stack)
        rec = EventRecord(
            op=op,
            stack_sig=sig,
            comm_id=self.comm.context.id if comm_id is None else comm_id,
            src=None if src is None else EndpointStat.of(src, self.rank),
            dest=None if dest is None else EndpointStat.of(dest, self.rank),
            root=root,
            participants=RankSet.single(self.rank),
            frames=frames,
        )
        rec.count.add(nbytes)
        rec.tag.add(tag)
        rec.dhist.record(dt)
        work0 = self.meter.total
        self.compressor.append(rec)
        self._interval_records.append(rec)
        self.stats.events_recorded += 1
        charge = (
            self.costs.per_event_record
            + (self.meter.total - work0) * self.costs.per_compression_op
        )
        self.ctx.compute(charge)
        self.stats.record_time += self.ctx.clock - t0
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.current_bytes())
        ins = self.obs
        if ins.enabled:
            ins.metrics.count("record/events", 1, rank=self.rank,
                              op=op.name.lower(), t=self.ctx.clock)
            ins.metrics.count("record/time", self.ctx.clock - t0,
                              rank=self.rank, t=self.ctx.clock)
        return rec

    def _post(self) -> None:
        """PMPI post-wrapper: next delta time starts after the call."""
        self._last_event_end = self.ctx.clock

    def current_bytes(self) -> int:
        return self.compressor.size_bytes()

    def interval_records(self) -> list[EventRecord]:
        """Events recorded since the last :meth:`clear_interval` call."""
        return list(self._interval_records)

    def clear_interval(self) -> None:
        self._interval_records.clear()

    # -- traced MPI API ------------------------------------------------------

    async def send(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> None:
        nbytes = payload_nbytes(payload) if size is None else int(size)
        self._record(Op.SEND, dest=dest, nbytes=nbytes, tag=tag)
        await self.comm.send(dest, payload, tag=tag, size=size)
        self._post()

    async def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        payload, status = await self.recv_with_status(source, tag)
        return payload

    async def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, dict]:
        # ANY_SOURCE is recorded as a wildcard (no source encoding) so the
        # replay engine re-issues it as a wildcard receive.
        src = None if source == ANY_SOURCE else source
        self._record(Op.RECV, src=src, tag=0 if tag == ANY_TAG else tag)
        payload, status = await self.comm.recv_with_status(source, tag)
        self._post()
        return payload, status

    async def sendrecv(
        self,
        dest: int,
        payload: Any = None,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        size: int | None = None,
    ) -> Any:
        nbytes = payload_nbytes(payload) if size is None else int(size)
        src = None if source == ANY_SOURCE else source
        self._record(
            Op.SENDRECV, dest=dest, src=src, nbytes=nbytes, tag=sendtag
        )
        value = await self.comm.sendrecv(
            dest, payload, source=source, sendtag=sendtag, recvtag=recvtag, size=size
        )
        self._post()
        return value

    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> Request:
        nbytes = payload_nbytes(payload) if size is None else int(size)
        self._record(Op.ISEND, dest=dest, nbytes=nbytes, tag=tag)
        req = self.comm.isend(dest, payload, tag=tag, size=size)
        self._post()
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        src = None if source == ANY_SOURCE else source
        self._record(Op.IRECV, src=src, tag=0 if tag == ANY_TAG else tag)
        req = self.comm.irecv(source, tag)
        self._post()
        return req

    async def wait(self, request: Request) -> Any:
        value = await request.wait()
        self._post()
        return value

    async def wait_all(self, requests: Sequence[Request]) -> list[Any]:
        values = [await r.wait() for r in requests]
        self._post()
        return values

    async def barrier(self) -> None:
        self._record(Op.BARRIER)
        await self.comm.barrier()
        self._post()

    async def bcast(self, value: Any, root: int = 0, size: int | None = None) -> Any:
        nbytes = payload_nbytes(value) if size is None else int(size)
        self._record(Op.BCAST, root=root, nbytes=nbytes)
        out = await self.comm.bcast(value, root=root, size=size)
        self._post()
        return out

    async def reduce(
        self, value: Any, op=None, root: int = 0, size: int | None = None
    ) -> Any:
        from ..simmpi.collectives import SUM

        nbytes = payload_nbytes(value) if size is None else int(size)
        self._record(Op.REDUCE, root=root, nbytes=nbytes)
        out = await self.comm.reduce(value, op=op or SUM, root=root, size=size)
        self._post()
        return out

    async def allreduce(self, value: Any, op=None, size: int | None = None) -> Any:
        from ..simmpi.collectives import SUM

        nbytes = payload_nbytes(value) if size is None else int(size)
        self._record(Op.ALLREDUCE, nbytes=nbytes)
        out = await self.comm.allreduce(value, op=op or SUM, size=size)
        self._post()
        return out

    async def gather(self, value: Any, root: int = 0, size: int | None = None):
        nbytes = payload_nbytes(value) if size is None else int(size)
        self._record(Op.GATHER, root=root, nbytes=nbytes)
        out = await self.comm.gather(value, root=root, size=size)
        self._post()
        return out

    async def scatter(self, values, root: int = 0, size: int | None = None):
        self._record(Op.SCATTER, root=root, nbytes=0 if size is None else size)
        out = await self.comm.scatter(values, root=root, size=size)
        self._post()
        return out

    async def allgather(self, value: Any, size: int | None = None):
        nbytes = payload_nbytes(value) if size is None else int(size)
        self._record(Op.ALLGATHER, nbytes=nbytes)
        out = await self.comm.allgather(value, size=size)
        self._post()
        return out

    async def alltoall(self, values, size: int | None = None):
        self._record(Op.ALLTOALL, nbytes=0 if size is None else size)
        out = await self.comm.alltoall(values, size=size)
        self._post()
        return out

    async def marker(self):
        """Timestep-boundary marker hook.

        Plain ScalaTrace ignores markers (all clustering work happens in
        ``MPI_Finalize``); Chameleon overrides this with Algorithm 3.
        Returns the marker decision (None here).
        """
        return None

    # -- inter-node compression ----------------------------------------------

    async def merge_over_tree(
        self, trace: Trace, members: Sequence[int] | None = None
    ) -> Trace | None:
        """Reduce ``trace`` over the radix tree of ``members`` (default: all
        ranks).  Returns the merged trace on the tree root, None elsewhere.

        Interior nodes receive child traces as (rendezvous-sized) messages
        and merge them with the LCS alignment, charging virtual time for the
        measured merge work — the mechanics behind ``O(n^2 log P)``.
        """
        tree = RadixTree(members if members is not None else self.nprocs,
                         arity=self.tree_arity)
        if self.rank not in tree:
            return None
        t0 = self.ctx.clock
        for child in reversed(tree.children(self.rank)):
            tc0 = self.ctx.clock
            child_trace: Trace = await self.comm.recv(child, tag=TRACE_TAG)
            self.stats.merge_comm_time += self.ctx.clock - tc0
            if child_trace is LOST:
                continue  # fault hole: the child's partial trace is gone
            work0 = self.meter.total
            trace.nodes = merge_traces(trace.nodes, child_trace.nodes, self.meter)
            trace.origin = trace.origin.union(child_trace.origin)
            self.ctx.compute(
                (self.meter.total - work0) * self.costs.per_merge_cell
            )
        parent = tree.parent(self.rank)
        result: Trace | None = trace
        if parent is not None:
            tc0 = self.ctx.clock
            await self.comm.send(
                parent, trace, tag=TRACE_TAG, size=trace.size_bytes()
            )
            self.stats.merge_comm_time += self.ctx.clock - tc0
            result = None
        self.stats.merge_time += self.ctx.clock - t0
        ins = self.obs
        if ins.enabled:
            ins.span(
                self.rank, "merge_over_tree", "tracer", t0, self.ctx.clock,
                {"members": tree.size, "root": result is not None},
            )
            ins.metrics.count("merge/time", self.ctx.clock - t0,
                              rank=self.rank, t=self.ctx.clock)
        return result

    async def finalize(self) -> Trace | None:
        """ScalaTrace's ``MPI_Finalize`` wrapper: global inter-node merge.

        Returns the global trace on rank 0 and ``None`` on other ranks.
        """
        local = Trace(
            nodes=self.compressor.take_nodes(),
            origin=RankSet.single(self.rank),
            nprocs=self.nprocs,
        )
        return await self.merge_over_tree(local)
