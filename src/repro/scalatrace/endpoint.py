"""Endpoint encodings: relative, absolute, and strided-pattern forms.

ScalaTrace's location-independent encoding stores communication endpoints in
whichever representation stays constant under compression (paper §II and
ScalaExtrap [28]):

* **relative-constant** — ``dest = rank + c`` (stencil neighbours);
* **absolute-constant** — ``dest = a`` (hub patterns: every worker talks to
  the master at rank 0);
* **strided pattern** — across loop iterations the relative offset walks an
  arithmetic sequence (a master sending to ``rank+1, rank+2, ...``); the
  pattern is ``(start, stride, length)`` and *closes* when it wraps back to
  its start, after which further occurrences must keep cycling through it.

An :class:`EndpointStat` tracks all three candidates simultaneously and
invalidates the ones observations contradict.  Two event records may merge
only while at least one representation survives in both — this is what lets
a master-worker pipeline compress to a handful of PRSD events while a ring
with wraparound correctly stays split into interior/edge variants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Pattern:
    """Arithmetic offset cycle: ``start + stride * (i mod length)``."""

    start: int
    stride: int | None  # None until a second distinct value fixes it
    length: int
    closed: bool  # True once the cycle wrapped; length is then frozen
    n: int  # total observations consumed by this pattern

    def copy(self) -> "Pattern":
        return Pattern(self.start, self.stride, self.length, self.closed, self.n)

    def offset_at(self, index: int) -> int:
        if self.stride in (None, 0) or self.length == 1:
            return self.start
        return self.start + self.stride * (index % self.length)


class EndpointStat:
    """All candidate encodings of one event's endpoint parameter."""

    __slots__ = ("rel", "abs_", "pattern")

    def __init__(
        self,
        rel: int | None,
        abs_: int | None,
        pattern: Pattern | None,
    ) -> None:
        self.rel = rel
        self.abs_ = abs_
        self.pattern = pattern

    @classmethod
    def of(cls, absolute: int, rank: int) -> "EndpointStat":
        rel = absolute - rank
        return cls(
            rel=rel,
            abs_=absolute,
            pattern=Pattern(start=rel, stride=None, length=1, closed=False, n=1),
        )

    # -- single-observation extension (intra-rank, in stream order) --------

    def _pattern_extended(self, rel_value: int) -> Pattern | None:
        """The pattern after appending one relative offset, or None."""
        p = self.pattern
        if p is None:
            return None
        q = p.copy()
        q.n += 1
        if rel_value == p.start and p.stride in (None, 0) and p.length == 1:
            # repeated constant: normalize to a closed length-1 cycle
            q.stride = 0
            q.closed = True
            return q
        if not p.closed:
            if p.stride is None:
                # second distinct value fixes the stride
                q.stride = rel_value - p.start
                q.length = 2
                return q
            expected = p.start + p.stride * p.length
            if rel_value == expected:
                q.length += 1
                return q
            if rel_value == p.start and p.length >= 2:
                q.closed = True
                return q
            return None
        # closed cycle: the new observation (index p.n) must keep cycling
        if rel_value == p.offset_at(p.n % p.length):
            return q
        return None

    # -- merging two stats ---------------------------------------------------

    @staticmethod
    def _patterns_mergeable(
        a: Pattern | None, b: Pattern | None, allow_chain: bool
    ) -> Pattern | None:
        """Merged pattern of two congruent stats, or None.

        Two cases: (1) ``b`` is a single observation continuing ``a``'s
        sequence — only valid when the two stats come from the *same rank's
        stream* in order (``allow_chain``, i.e. intra-node folding; chaining
        observations from different ranks would invent bogus strides);
        (2) ``a`` and ``b`` are *identical* complete cycles (the loop-fold
        and cross-rank merge path).
        """
        if a is None or b is None:
            return None
        if b.n == 1 and allow_chain:
            helper = EndpointStat(None, None, a)
            return helper._pattern_extended(b.start)
        if b.n == 1 and a.length == 1 and a.start == b.start:
            # cross-rank: same constant offset, still a trivial cycle
            merged = a.copy()
            merged.n += 1
            return merged
        # identical cycles covering complete periods
        if (
            a.start == b.start
            and a.length == b.length
            and (a.stride == b.stride or a.length == 1)
        ):
            a_complete = a.closed or a.n == a.length
            b_complete = b.closed or b.n == b.length
            if a_complete and b_complete:
                merged = a.copy()
                merged.n = a.n + b.n
                merged.closed = a.closed or b.closed or a.length > 1
                if a.length == 1:
                    merged.closed = True
                return merged
        return None

    def can_merge(self, other: "EndpointStat", allow_chain: bool = True) -> bool:
        if self.rel is not None and self.rel == other.rel:
            return True
        if self.abs_ is not None and self.abs_ == other.abs_:
            return True
        return (
            self._patterns_mergeable(self.pattern, other.pattern, allow_chain)
            is not None
        )

    def merge(self, other: "EndpointStat", allow_chain: bool = True) -> None:
        """Fold ``other`` into this stat (``can_merge`` must hold)."""
        merged_pattern = self._patterns_mergeable(
            self.pattern, other.pattern, allow_chain
        )
        rel = self.rel if self.rel is not None and self.rel == other.rel else None
        abs_ = (
            self.abs_ if self.abs_ is not None and self.abs_ == other.abs_ else None
        )
        if rel is None and abs_ is None and merged_pattern is None:
            raise ValueError("endpoint stats are not mergeable")
        self.rel = rel
        self.abs_ = abs_
        self.pattern = merged_pattern

    # -- interpretation ------------------------------------------------------

    def resolve(self, rank: int, occurrence: int) -> int | None:
        """Absolute endpoint for ``rank``'s ``occurrence``-th replay of the
        event (ScalaReplay's transposition).  None if nothing survived."""
        if self.rel is not None:
            return rank + self.rel
        if self.pattern is not None and self.pattern.stride is not None:
            return rank + self.pattern.offset_at(occurrence)
        if self.abs_ is not None:
            return self.abs_
        if self.pattern is not None:
            return rank + self.pattern.start
        return None

    @property
    def is_constant_rel(self) -> bool:
        return self.rel is not None

    def copy(self) -> "EndpointStat":
        return EndpointStat(
            self.rel,
            self.abs_,
            self.pattern.copy() if self.pattern else None,
        )

    def size_bytes(self) -> int:
        return 8 * (2 + (5 if self.pattern else 0))

    def __repr__(self) -> str:
        parts = []
        if self.rel is not None:
            parts.append(f"rel{self.rel:+d}")
        if self.abs_ is not None:
            parts.append(f"abs={self.abs_}")
        if self.pattern is not None and self.pattern.length > 1:
            p = self.pattern
            parts.append(f"pat({p.start},{p.stride},{p.length})")
        return "<" + (" ".join(parts) or "invalid") + ">"

    # -- serialization ------------------------------------------------------

    def to_text(self) -> str:
        def opt(v):
            return "." if v is None else str(v)

        p = self.pattern
        pat = (
            f"{p.start}/{opt(p.stride)}/{p.length}/{int(p.closed)}/{p.n}"
            if p
            else "."
        )
        return f"{opt(self.rel)}:{opt(self.abs_)}:{pat}"

    @classmethod
    def from_text(cls, text: str) -> "EndpointStat":
        rel_s, abs_s, pat_s = text.split(":")

        def opt(v):
            return None if v == "." else int(v)

        pattern = None
        if pat_s != ".":
            start, stride, length, closed, n = pat_s.split("/")
            pattern = Pattern(
                start=int(start),
                stride=opt(stride),
                length=int(length),
                closed=bool(int(closed)),
                n=int(n),
            )
        return cls(rel=opt(rel_s), abs_=opt(abs_s), pattern=pattern)
