"""Trace container and on-disk text format.

A :class:`Trace` owns a compressed node list plus provenance metadata and
provides the size/statistics accounting the paper's Table IV relies on, and
a line-oriented text serialization (one node per line, loops bracketed) so
traces can be written, diffed and replayed from disk like ScalaTrace's
trace files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from .endpoint import EndpointStat
from .events import EventRecord, Op, ParamStat
from .ranklist import RankSet
from .rsd import EventNode, LoopNode, TraceNode, expand, iter_leaves
from .timehist import DeltaHistogram

_FORMAT_VERSION = 1


@dataclass
class Trace:
    """A compressed (possibly global) communication trace."""

    nodes: list[TraceNode] = field(default_factory=list)
    origin: RankSet = field(default_factory=lambda: RankSet.single(0))
    nprocs: int = 1

    # -- statistics --------------------------------------------------------

    def leaf_count(self) -> int:
        """PRSD-compressed event count (the paper's ``n``)."""
        return sum(n.leaf_count() for n in self.nodes)

    def expanded_count(self) -> int:
        """Original event count represented by the compression."""
        return sum(n.expanded_count() for n in self.nodes)

    def size_bytes(self) -> int:
        """Modelled allocation of the trace structure."""
        return 64 + sum(n.size_bytes() for n in self.nodes)

    def nbytes_hint(self) -> int:
        """Lets the simulator size messages carrying traces."""
        return self.size_bytes()

    def compression_ratio(self) -> float:
        leaf = self.leaf_count()
        return self.expanded_count() / leaf if leaf else 1.0

    def leaves(self) -> Iterator[EventNode]:
        return iter_leaves(self.nodes)

    def events(self) -> Iterator[EventRecord]:
        """The full expanded event stream."""
        return expand(self.nodes)

    def distinct_stack_signatures(self) -> set[int]:
        return {leaf.record.stack_sig for leaf in self.leaves()}

    def copy(self) -> "Trace":
        return Trace(
            nodes=[n.copy() for n in self.nodes],
            origin=RankSet(self.origin.ranks()),
            nprocs=self.nprocs,
        )

    # -- serialization -------------------------------------------------------

    def serialize(self) -> str:
        """Text form: header + one line per node (loops bracketed)."""
        lines = [
            f"#scalatrace v{_FORMAT_VERSION} nprocs={self.nprocs} "
            f"origin={self.origin.to_text()}"
        ]

        def emit(node: TraceNode, depth: int) -> None:
            pad = "  " * depth
            if isinstance(node, EventNode):
                lines.append(pad + _event_to_text(node.record))
            else:
                lines.append(f"{pad}loop {node.iters} {{")
                for child in node.body:
                    emit(child, depth + 1)
                lines.append(pad + "}")

        for node in self.nodes:
            emit(node, 0)
        return "\n".join(lines) + "\n"

    @classmethod
    def deserialize(cls, text: str) -> "Trace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines or not lines[0].startswith("#scalatrace"):
            raise ValueError("not a scalatrace trace file")
        header = lines[0].split()
        meta = dict(part.split("=", 1) for part in header[2:])
        trace = cls(
            nodes=[],
            origin=RankSet.from_text(meta["origin"]),
            nprocs=int(meta["nprocs"]),
        )
        stack: list[list[TraceNode]] = [trace.nodes]
        loop_stack: list[LoopNode] = []
        for line in lines[1:]:
            stripped = line.strip()
            if stripped.startswith("loop "):
                iters = int(stripped.split()[1])
                loop = LoopNode(iters, [])
                stack[-1].append(loop)
                stack.append(loop.body)
                loop_stack.append(loop)
            elif stripped == "}":
                if len(stack) == 1:
                    raise ValueError("unbalanced loop brackets")
                stack.pop()
                loop_stack.pop()
            else:
                stack[-1].append(EventNode(_event_from_text(stripped)))
        if len(stack) != 1:
            raise ValueError("unterminated loop in trace file")
        return trace

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.serialize())

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, encoding="utf-8") as fh:
            return cls.deserialize(fh.read())


def _opt(v: int | None) -> str:
    return "." if v is None else str(v)


def _opt_parse(s: str) -> int | None:
    return None if s == "." else int(s)


def _event_to_text(rec: EventRecord) -> str:
    fields = [
        "ev",
        rec.op.value,
        f"{rec.stack_sig:016x}",
        str(rec.comm_id),
        "." if rec.src is None else rec.src.to_text(),
        "." if rec.dest is None else rec.dest.to_text(),
        _opt(rec.root),
        rec.participants.to_text(),
        rec.count.to_text(),
        rec.tag.to_text(),
        rec.dhist.to_text(),
    ]
    return " ".join(fields)


def _event_from_text(line: str) -> EventRecord:
    parts = line.split(" ")
    if parts[0] != "ev" or len(parts) != 11:
        raise ValueError(f"bad event line: {line!r}")
    return EventRecord(
        op=Op(parts[1]),
        stack_sig=int(parts[2], 16),
        comm_id=int(parts[3]),
        src=None if parts[4] == "." else EndpointStat.from_text(parts[4]),
        dest=None if parts[5] == "." else EndpointStat.from_text(parts[5]),
        root=_opt_parse(parts[6]),
        participants=RankSet.from_text(parts[7]),
        count=ParamStat.from_text(parts[8]),
        tag=ParamStat.from_text(parts[9]),
        dhist=DeltaHistogram.from_text(parts[10]),
    )
