"""Ranklists: ScalaTrace's compressed encoding of communication groups.

A ranklist ``<dimension, start_rank, (iteration_length, stride)+>`` (paper
§II, EBNF from ScalaExtrap) denotes the set::

    { start + sum_d k_d * stride_d : 0 <= k_d < iters_d }

e.g. ``start=0, dims=((4, 16), (4, 1))`` is the 4x4 corner block of a 16-wide
grid.  Participant sets of merged events are stored as a :class:`RankSet` —
a list of ranklists — which stays near-constant-size for the regular
SPMD groups this encoding was designed for (all ranks of a P-rank job
compress to the single ranklist ``<start=0, (P, 1)>``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Ranklist:
    """One strided multi-dimensional rank group."""

    start: int
    dims: tuple[tuple[int, int], ...] = ()  # (iters, stride), outermost first

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start rank must be >= 0")
        for iters, _stride in self.dims:
            if iters < 2:
                raise ValueError("each dimension needs >= 2 iterations")

    @property
    def dimension(self) -> int:
        return len(self.dims)

    @property
    def count(self) -> int:
        return reduce(lambda a, b: a * b[0], self.dims, 1)

    def members(self) -> Iterator[int]:
        """Enumerate members in ascending order of the nested iteration."""

        def rec(base: int, dims: tuple[tuple[int, int], ...]) -> Iterator[int]:
            if not dims:
                yield base
                return
            (iters, stride), rest = dims[0], dims[1:]
            for k in range(iters):
                yield from rec(base + k * stride, rest)

        return rec(self.start, self.dims)

    def __contains__(self, rank: int) -> bool:
        return rank in set(self.members())

    def size_bytes(self) -> int:
        """Modelled allocation: start + ndims + (iters, stride) pairs."""
        return 8 * (2 + 2 * len(self.dims))

    def __str__(self) -> str:
        dims = " ".join(f"{i}:{s}" for i, s in self.dims)
        return f"<{self.dimension} {self.start} {dims}>".replace("  ", " ")


def _factor(ranks: Sequence[int]) -> Ranklist | None:
    """Try to express a sorted, duplicate-free rank sequence as ONE ranklist.

    Greedy recursive factorization: peel the innermost dimension as the
    maximal leading arithmetic run, verify the whole sequence is that run
    repeated at fixed offsets, and recurse on the run starts.
    """
    n = len(ranks)
    if n == 0:
        return None
    if n == 1:
        return Ranklist(ranks[0], ())
    diffs = [b - a for a, b in zip(ranks, ranks[1:])]
    if all(d == diffs[0] for d in diffs):
        return Ranklist(ranks[0], ((n, diffs[0]),))
    # innermost run: maximal prefix with uniform stride
    inner_stride = diffs[0]
    run = 1
    while run < n and diffs[run - 1] == inner_stride:
        run += 1
    if run < 2 or n % run != 0:
        return None
    starts = []
    for block_at in range(0, n, run):
        block = ranks[block_at : block_at + run]
        bdiffs = [b - a for a, b in zip(block, block[1:])]
        if any(d != inner_stride for d in bdiffs):
            return None
        starts.append(block[0])
    outer = _factor(starts)
    if outer is None:
        return None
    return Ranklist(outer.start, outer.dims + ((run, inner_stride),))


def _arithmetic_runs(ranks: Sequence[int]) -> list[Ranklist]:
    """Fallback: cover the sequence with maximal 1-D arithmetic runs."""
    out: list[Ranklist] = []
    i = 0
    n = len(ranks)
    while i < n:
        if i + 1 >= n:
            out.append(Ranklist(ranks[i], ()))
            break
        stride = ranks[i + 1] - ranks[i]
        j = i + 1
        while j + 1 < n and ranks[j + 1] - ranks[j] == stride:
            j += 1
        length = j - i + 1
        if length >= 2:
            out.append(Ranklist(ranks[i], ((length, stride),)))
            i = j + 1
        else:  # pragma: no cover - length>=2 always holds here
            out.append(Ranklist(ranks[i], ()))
            i += 1
    return out


class RankSet:
    """A participant set stored as a small list of ranklists.

    Canonicalization always starts from the sorted member set, so two
    RankSets over the same ranks compare equal regardless of construction
    order — the property event merging relies on.
    """

    __slots__ = ("_lists", "_members")

    def __init__(self, ranks: Iterable[int]) -> None:
        members = sorted(set(ranks))
        if any(r < 0 for r in members):
            raise ValueError("ranks must be >= 0")
        self._members: tuple[int, ...] = tuple(members)
        single = _factor(members)
        self._lists: list[Ranklist] = (
            [single] if single is not None else _arithmetic_runs(members)
        )

    @classmethod
    def single(cls, rank: int) -> "RankSet":
        return cls([rank])

    @classmethod
    def contiguous(cls, start: int, count: int) -> "RankSet":
        return cls(range(start, start + count))

    @property
    def ranklists(self) -> list[Ranklist]:
        return list(self._lists)

    def ranks(self) -> tuple[int, ...]:
        return self._members

    @property
    def count(self) -> int:
        return len(self._members)

    def __contains__(self, rank: int) -> bool:
        return rank in set(self._members)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankSet):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return hash(self._members)

    def union(self, other: "RankSet") -> "RankSet":
        return RankSet(self._members + other._members)

    def size_bytes(self) -> int:
        return sum(rl.size_bytes() for rl in self._lists)

    def __str__(self) -> str:
        return "+".join(str(rl) for rl in self._lists)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankSet({list(self._members)!r})"

    # -- serialization ---------------------------------------------------

    def to_text(self) -> str:
        return ",".join(str(r) for r in self._members)

    @classmethod
    def from_text(cls, text: str) -> "RankSet":
        if not text:
            raise ValueError("empty RankSet text")
        return cls(int(p) for p in text.split(","))
