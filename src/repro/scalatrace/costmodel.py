"""Instrumentation cost model: converting tracer work to virtual time.

The simulator charges each rank's virtual clock for the tracing work it
performs, proportionally to the *measured* operation counts of the real
algorithms (events recorded, compression comparisons/merges/folds performed,
signatures computed, clustering distances evaluated).  The constants below
are per-operation costs in seconds, calibrated to the order of magnitude of
the C implementation on the paper's Opteron cluster; the reproduction's
claims are about *relative* shape, which is preserved for any positive
constants because the operation counts themselves follow the paper's
complexity bounds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstrumentationCostModel:
    """Per-operation virtual-time charges for tracing work."""

    #: building an event record incl. the stack walk (PMPI wrapper entry)
    per_event_record: float = 5.0e-8
    #: one intra-compression primitive (compare / merge / fold)
    per_compression_op: float = 6.0e-8
    #: one inter-compression primitive (alignment DP cell / statistics
    #: merge).  Costlier than an intra fold step: each cell touches merged
    #: histograms, ranklists and parameter stats in the real implementation.
    per_merge_cell: float = 1.2e-6
    #: computing the Call-Path contribution of one PRSD event (Algorithm 1)
    per_signature_event: float = 3.0e-8
    #: one clustering primitive (distance evaluation, medoid update)
    per_cluster_op: float = 1.2e-7
    #: fixed cost of a marker call's bookkeeping (state machine, flags)
    per_marker_call: float = 5.0e-7

    def __post_init__(self) -> None:
        for name in (
            "per_event_record",
            "per_compression_op",
            "per_merge_cell",
            "per_signature_event",
            "per_cluster_op",
            "per_marker_call",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


#: Default model used by the harness.
DEFAULT_COSTS = InstrumentationCostModel()

#: Free instrumentation — isolates communication costs in unit tests.
ZERO_COSTS = InstrumentationCostModel(
    per_event_record=0.0,
    per_compression_op=0.0,
    per_merge_cell=0.0,
    per_signature_event=0.0,
    per_cluster_op=0.0,
    per_marker_call=0.0,
)
