"""Intra-node (loop-level) trace compression.

ScalaTrace compresses each rank's event stream *online*: every time an event
is appended, the compressor greedily looks for a repetition at the tail of
the node list and folds it into an RSD/PRSD loop (paper §II).  Two rewrite
rules run to fixpoint after each append:

* **absorb** — the last *m* nodes are congruent to the body of the loop node
  immediately preceding them: increment that loop's iteration count and
  merge the statistics.  (``[Loop(k, B), B] -> Loop(k+1, B)``)
* **create** — the last *m* nodes are congruent to the *m* nodes before
  them: replace both with a 2-iteration loop.
  (``[B, B] -> Loop(2, B)``)

Applied to an iterative kernel this builds nested PRSDs bottom-up, e.g. the
paper's send/recv/barrier example compresses to
``Loop(1000, [Loop(100, [send, recv]), barrier])``.

The compressor is windowed: repetition bodies longer than ``window`` nodes
are not detected (real ScalaTrace has the same bound).  All comparison work
is counted in a :class:`~repro.scalatrace.rsd.WorkMeter` so the tracer can
charge virtual time for it.
"""

from __future__ import annotations

from .events import EventRecord
from .rsd import EventNode, LoopNode, TraceNode, WorkMeter, merge_nodes, same_shape

DEFAULT_WINDOW = 64


def _participants_equal(a: TraceNode, b: TraceNode) -> bool:
    """Whether two congruent subtrees cover the same rank populations."""
    from .rsd import EventNode

    if isinstance(a, EventNode) and isinstance(b, EventNode):
        return a.record.participants == b.record.participants
    return all(
        _participants_equal(x, y)
        for x, y in zip(a.body, b.body)  # type: ignore[union-attr]
    )


def fold_tail(
    nodes: list[TraceNode],
    window: int,
    meter: WorkMeter,
    match_participants: bool = False,
) -> None:
    """Run the absorb/create rewrite rules to fixpoint on the list's tail.

    Shared by the per-rank compressor (folding raw events) and Chameleon's
    online trace (folding whole merged phase segments that repeat across
    marker intervals).  The online trace passes ``match_participants=True``:
    its nodes cover *cluster* populations, and folding two same-call-site
    records from different clusters would union their ranklists and
    misattribute iterations (a per-rank stream never needs the check —
    every node covers exactly the owning rank).
    """

    def congruent(a: TraceNode, b: TraceNode) -> bool:
        if not same_shape(a, b, meter, match_iters=True):
            return False
        return not match_participants or _participants_equal(a, b)

    changed = True
    while changed:
        changed = False
        # Rule 1: absorb the tail into an immediately preceding loop.
        for m in range(1, min(window, len(nodes) - 1) + 1):
            prev = nodes[-m - 1]
            if not isinstance(prev, LoopNode) or len(prev.body) != m:
                continue
            tail = nodes[-m:]
            if all(congruent(b, t) for b, t in zip(prev.body, tail)):
                for b, t in zip(prev.body, tail):
                    merge_nodes(b, t, meter)
                prev.iters += 1
                del nodes[-m:]
                meter.folds += 1
                changed = True
                break
        if changed:
            continue
        # Rule 2: fold two adjacent congruent runs into a new loop.
        for m in range(1, window + 1):
            if len(nodes) < 2 * m:
                break
            first = nodes[-2 * m : -m]
            second = nodes[-m:]
            if all(congruent(a, b) for a, b in zip(first, second)):
                for a, b in zip(first, second):
                    merge_nodes(a, b, meter)
                loop = LoopNode(2, first)
                del nodes[-2 * m :]
                nodes.append(loop)
                meter.folds += 1
                changed = True
                break


class IntraCompressor:
    """Online RSD/PRSD compressor for one rank's event stream."""

    def __init__(self, window: int = DEFAULT_WINDOW, meter: WorkMeter | None = None):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.meter = meter if meter is not None else WorkMeter()
        self.nodes: list[TraceNode] = []
        self.appended_events = 0

    def append(self, record: EventRecord) -> None:
        """Add one event and re-compress the tail."""
        self.nodes.append(EventNode(record))
        self.appended_events += 1
        fold_tail(self.nodes, self.window, self.meter)

    # -- introspection ---------------------------------------------------

    def leaf_count(self) -> int:
        """`n` of the paper: events in PRSD-compressed notation."""
        return sum(n.leaf_count() for n in self.nodes)

    def expanded_count(self) -> int:
        """Number of original (uncompressed) events represented."""
        return sum(n.expanded_count() for n in self.nodes)

    def size_bytes(self) -> int:
        return sum(n.size_bytes() for n in self.nodes)

    def take_nodes(self) -> list[TraceNode]:
        """Detach and return the compressed nodes (compressor resets)."""
        nodes, self.nodes = self.nodes, []
        self.appended_events = 0
        return nodes
