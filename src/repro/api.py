"""repro.api — the stable, scripting-friendly facade.

One import gives the whole workflow::

    import repro

    result = repro.run("bt", nprocs=16, mode="chameleon")
    rows, text = repro.run_experiment("table2")
    trace = repro.load_trace("bt.st")
    replayed = repro.replay(trace)
    diff = repro.compare("a.st", "b.st")

Everything here is re-exported from the top-level :mod:`repro` package.
The deep import paths (``repro.harness.runner``, ``repro.scalatrace.trace``,
…) keep working, but new code should prefer this module: it is the surface
the project commits to keeping stable.

All execution routes through the process-wide
:class:`~repro.harness.engine.ExperimentEngine`, so api calls share the
same worker pool and content-addressed run cache as the CLI and the
benchmark suite; tune it with :func:`configure_engine`.
"""

from __future__ import annotations

from typing import Any, Callable

from .harness import figures, tables
from .harness.engine import (
    ExperimentEngine,
    configure_engine,
    get_engine,
    make_cell,
)
from .faults.plan import (
    ComputeFault,
    CrashFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    MessageFaults,
)
from .harness.runner import Mode, RunResult, overhead
from .obs import (
    Inspection,
    Instrument,
    MetricsRegistry,
    ObsData,
    Recorder,
    export_chrome_trace,
    export_metrics_jsonl,
)
from .replay.replayer import ReplayResult, replay_trace
from .resilience import QuarantineError, RetryPolicy
from .scalatrace.difftool import TraceDiff, diff_traces
from .scalatrace.trace import Trace
from .simmpi.simconfig import DEFAULT_CONFIG, SimConfig, resolve_config
from . import serve
from .simmpi.timing import NetworkModel, QDR_CLUSTER

#: Every paper artifact regenerable via :func:`run_experiment` / the CLI.
EXPERIMENTS: dict[str, Callable[[], tuple]] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig4": figures.figure4,
    "fig5": figures.figure5,
    "fig6": figures.figure6,
    "fig7": figures.figure7,
    "fig8": figures.figure8,
    "fig9": figures.figure9,
    "fig10": figures.figure10,
    "fig11": figures.figure11,
}

__all__ = [
    "EXPERIMENTS",
    "ComputeFault",
    "CrashFault",
    "DEFAULT_CONFIG",
    "ExperimentEngine",
    "FaultPlan",
    "FaultPlanError",
    "Inspection",
    "Instrument",
    "LinkFault",
    "MessageFaults",
    "MetricsRegistry",
    "Mode",
    "NetworkModel",
    "ObsData",
    "QuarantineError",
    "Recorder",
    "RetryPolicy",
    "RunResult",
    "SimConfig",
    "Trace",
    "compare",
    "configure_engine",
    "export_chrome_trace",
    "export_metrics_jsonl",
    "get_engine",
    "inspect",
    "load_trace",
    "overhead",
    "replay",
    "run",
    "run_experiment",
    "serve",
    "stream_run",
]


def run(
    workload: str,
    nprocs: int = 16,
    mode: Mode | str = Mode.CHAMELEON,
    *,
    workload_params: dict[str, Any] | None = None,
    call_frequency: int = 1,
    config_overrides: dict[str, Any] | None = None,
    sim: SimConfig | None = None,
    network: NetworkModel | None = None,
    engine: ExperimentEngine | None = None,
    instrument: Instrument | None = None,
    faults: FaultPlan | None = None,
) -> RunResult:
    """Run one ``(workload, nprocs, mode)`` cell and return its result.

    The workload is named as in ``repro.workloads.make_workload``; the
    paper's per-workload configuration (Table I's K, POP's signature
    filter) is derived automatically and adjusted via
    ``config_overrides``.  Results are cached and may be computed by the
    engine's worker pool.

    ``sim`` is a :class:`SimConfig` carrying every simulator engine option
    (network model, matching, collectives mode, p2p mode, shard count,
    step budget).  The bare ``network=`` keyword shipped one release as a
    deprecation shim and is now retired: passing it raises ``TypeError``
    naming the ``SimConfig`` spelling.

    Pass ``instrument=Recorder()`` to capture the run's virtual-time event
    timeline on ``result.obs`` (see :func:`inspect`); instrumented runs
    always execute inline and bypass the cache, and their virtual clocks
    are bit-identical to the uninstrumented run.

    Pass ``faults=FaultPlan(...)`` to inject deterministic failures (rank
    crashes, message drops/delays, slow links, compute noise); the run
    degrades gracefully instead of erroring, reporting crashed ranks on
    ``result.failed_ranks`` and the injector's event counters under
    ``result.extra["fault_summary"]``.  The same plan and seed always
    reproduce the same result; an empty plan changes nothing.
    """
    resolve_config(sim, network=network)
    engine = engine or get_engine()
    cell = make_cell(
        workload,
        nprocs,
        Mode(mode) if not isinstance(mode, Mode) else mode,
        workload_params=workload_params,
        call_frequency=call_frequency,
        config_overrides=config_overrides,
        sim=sim,
        faults=faults,
    )
    if instrument is not None:
        return engine.run_cell_instrumented(cell, instrument)
    (result,) = engine.run_cells([cell])
    return result


def inspect(result: RunResult) -> Inspection:
    """Queryable observability view of a :class:`RunResult`.

    Always provides the metrics registry (tracer/Chameleon/ACURDION
    statistics under ``tracer/…``, ``chameleon/…``, ``acurdion/…`` names);
    when the run executed with a :class:`Recorder` the event timeline
    (spans, instants, live ``p2p/…``/``coll/…``/``marker/…`` metrics) is
    included too::

        result = repro.run("bt", 16, "chameleon", instrument=repro.Recorder())
        view = repro.inspect(result)
        view.metric("chameleon/vote_time")        # summed over ranks
        view.spans(cat="coll", rank=0)            # collective spans, rank 0
        print(view.summary())
    """
    meta = {
        "workload": result.workload,
        "nprocs": result.nprocs,
        "mode": result.mode.value,
    }
    if result.obs is not None:
        meta = {**result.obs.meta, **meta}
    return Inspection(registry=result.registry(), obs=result.obs, meta=meta)


def run_experiment(
    name: str, *, engine: ExperimentEngine | None = None
) -> tuple[Any, str]:
    """Regenerate one paper artifact: ``(rows, rendered_text)``.

    ``name`` is one of :data:`EXPERIMENTS` (``table1``-``table4``,
    ``fig4``-``fig11``).  Passing ``engine`` temporarily installs it as
    the process default for the duration of the call.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
    if engine is None:
        return fn()
    import repro.harness.engine as _engine_mod

    previous = _engine_mod._DEFAULT_ENGINE
    _engine_mod._DEFAULT_ENGINE = engine
    try:
        return fn()
    finally:
        _engine_mod._DEFAULT_ENGINE = previous


def load_trace(path: str) -> Trace:
    """Load a trace file written by ``Trace.save`` / ``repro run -o``."""
    return Trace.load(path)


def _as_trace(trace: Trace | str) -> Trace:
    return trace if isinstance(trace, Trace) else Trace.load(trace)


def replay(
    trace: Trace | str,
    nprocs: int | None = None,
    *,
    network: NetworkModel = QDR_CLUSTER,
    timing: str = "mean",
    seed: int = 0x5CA1AB1E,
) -> ReplayResult:
    """Replay a trace (object or file path) on the simulated runtime."""
    return replay_trace(
        _as_trace(trace), nprocs=nprocs, network=network, timing=timing,
        seed=seed,
    )


def compare(a: Trace | str, b: Trace | str) -> TraceDiff:
    """Semantically diff two traces (objects or file paths)."""
    return diff_traces(_as_trace(a), _as_trace(b))


def stream_run(
    steps: "list[dict] | str",
    nprocs: int = 16,
    mode: Mode | str = Mode.CHAMELEON,
    *,
    call_frequency: int = 1,
    config_overrides: dict[str, Any] | None = None,
    sim: SimConfig | None = None,
    engine: ExperimentEngine | None = None,
) -> RunResult:
    """Run a declared event stream as a batch ``stream`` workload.

    ``steps`` is either a list of step-event dicts (the same objects a
    client would POST to ``repro serve`` as NDJSON lines) or an
    already-canonical steps-JSON string.  This is the batch twin of the
    serving path — and its oracle: a served job over the same events
    produces a bit-identical :class:`RunResult` (same fingerprint, same
    trace bytes) and shares the same cache entry.
    """
    from .workloads.stream import canonical_steps_json, normalize_steps

    if isinstance(steps, str):
        import json as _json

        steps = _json.loads(steps)
    steps_json = canonical_steps_json(normalize_steps(steps))
    return run(
        "stream", nprocs, mode,
        workload_params={"steps_json": steps_json},
        call_frequency=call_frequency,
        config_overrides=config_overrides,
        sim=sim,
        engine=engine,
    )
