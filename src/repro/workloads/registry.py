"""Workload registry: name → factory, with the paper's K values (Table I)."""

from __future__ import annotations

from typing import Callable

from .base import Workload
from .amg import AMG
from .emf import EMF
from .lulesh import LULESH
from .npb import BT, CG, LU, LUModified, LUWeak, SP
from .pop import POP
from .stream import StreamWorkload
from .sweep3d import Sweep3D
from .synthetic import AlternatingPhases, BehaviourGroups, UniformCollective

_REGISTRY: dict[str, Callable[..., Workload]] = {
    "bt": BT,
    "sp": SP,
    "lu": LU,
    "lu_modified": LUModified,
    "luw": LUWeak,
    "amg": AMG,
    "cg": CG,
    "lulesh": LULESH,
    "sweep3d": Sweep3D,
    "pop": POP,
    "emf": EMF,
    "uniform": UniformCollective,
    "alternating": AlternatingPhases,
    "groups": BehaviourGroups,
    # Declared event streams: the batch twin of `repro serve` ingestion.
    "stream": StreamWorkload,
    # Convenience alias: a small phase-alternating synthetic program, the
    # default target for quick observability/smoke runs.
    "synthetic": AlternatingPhases,
}

#: The paper's Table I: number of clusters per benchmark.
PAPER_K = {
    "bt": 3,
    "lu": 9,
    "sp": 3,
    "pop": 3,
    "sweep3d": 9,
    "luw": 9,
    "emf": 2,
}


def workload_names() -> list[str]:
    return sorted(_REGISTRY)


def make_workload(name: str, **params) -> Workload:
    """Instantiate a workload by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return factory(**params)
