"""NAS Parallel Benchmark communication skeletons: BT, SP, LU (+CG).

Each skeleton reproduces the benchmark's documented communication structure
on a 2-D process grid with the standard class A–D problem sizes and paper
iteration counts:

* **BT / SP** — ADI solvers: per timestep, three directional solve phases
  (``x_solve``, ``y_solve``, ``z_solve``) each exchanging faces with the
  forward/backward grid neighbour, plus a boundary ``copy_faces`` exchange.
  Three relative-encoding behaviour groups emerge (interior / first / last
  column-row), matching the paper's K=3 for BT and SP (Table I).
* **LU** — SSOR: per timestep a lower-triangular wavefront sweep (``blts``:
  receive from north/west, send to south/east), the mirrored upper sweep
  (``buts``), and an ``l2norm`` allreduce.  Nine relative-encoding groups
  (corner/edge/interior of the 2-D grid) match the paper's K=9.
* **LUW** — LU under weak scaling: per-rank subdomain fixed as P grows.
* **CG** — conjugate gradient on a CSR sparse matrix: transpose exchange +
  dot-product allreduces; included for the irregular-codes discussion.

Compute models charge virtual time proportional to per-rank grid points;
message sizes are the real face sizes in doubles.
"""

from __future__ import annotations

from ..simmpi.launcher import RankContext
from ..simmpi.topology import Grid2D, square_grid
from .base import ProblemClass, Workload, declare_pattern, run_declared

#: NPB problem classes (grid points per dimension, timesteps) — BT/SP/LU
#: use the same grids; iteration counts follow the benchmark specs
#: (BT 200→ paper runs 250 markers on class D; we keep the spec values
#: and let the harness scale iterations).
CLASSES_BT = {
    "A": ProblemClass("A", 64, 200),
    "B": ProblemClass("B", 102, 200),
    "C": ProblemClass("C", 162, 200),
    "D": ProblemClass("D", 408, 250),
}
CLASSES_SP = {
    "A": ProblemClass("A", 64, 400),
    "B": ProblemClass("B", 102, 400),
    "C": ProblemClass("C", 162, 400),
    "D": ProblemClass("D", 408, 500),
}
CLASSES_LU = {
    "A": ProblemClass("A", 64, 250),
    "B": ProblemClass("B", 102, 250),
    "C": ProblemClass("C", 162, 250),
    "D": ProblemClass("D", 408, 300),
}



class _GridWorkload(Workload):
    """Shared 2-D grid machinery for the NPB skeletons."""

    #: virtual seconds of computation per grid point per timestep
    time_per_point: float = 4.0e-8

    def __init__(
        self,
        problem_class: str = "D",
        iterations: int | None = None,
        compute_scale: float = 1.0,
        detail: int = 4,
    ) -> None:
        cls = self.classes()[problem_class]
        super().__init__(
            iterations=iterations if iterations is not None else cls.iterations,
            compute_scale=compute_scale,
        )
        self.problem_class = cls
        if detail < 1:
            raise ValueError("detail must be >= 1")
        # sub-blocks per solve phase: the real codes exchange one message
        # per cell block from distinct call contexts, which is what gives
        # their traces hundreds of PRSD events; `detail` controls that
        # richness (and therefore the paper's `n`)
        self.detail = detail

    @classmethod
    def classes(cls) -> dict[str, ProblemClass]:
        raise NotImplementedError

    def grid(self, nprocs: int) -> Grid2D:
        return square_grid(nprocs)

    def points_per_rank(self, nprocs: int) -> float:
        return self.problem_class.points / nprocs

    def face_bytes(self, nprocs: int) -> int:
        """One exchanged face: a 2-D slab of the per-rank subdomain, five
        solution components, double precision."""
        g = self.problem_class.grid
        side = max(int(round(g / max(self.grid(nprocs).rows, 1))), 1)
        return 8 * 5 * g * side

    def step_compute(self, ctx: RankContext) -> float:
        return self.points_per_rank(ctx.size) * self.time_per_point


class BT(_GridWorkload):
    """NPB BT: block-tridiagonal ADI solver skeleton."""

    name = "bt"
    paper_k = 3
    time_per_point = 6.0e-8

    @classmethod
    def classes(cls):
        return CLASSES_BT

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        grid = self.grid(ctx.size)
        fb = self.face_bytes(ctx.size)
        work = self.step_compute(ctx)
        blk_bytes = max(fb // self.detail, 8)
        with ctx.frame("copy_faces"):
            self.compute(ctx, 0.1 * work)
            east, west = grid.east(ctx.rank), grid.west(ctx.rank)
            for blk in range(self.detail):
                with ctx.frame(f"cell_{blk}"):
                    if east is not None:
                        await tracer.send(east, None, tag=1 + blk, size=blk_bytes)
                    if west is not None:
                        await tracer.recv(west, tag=1 + blk)
        for frame, fwd_of, bwd_of in (
            ("x_solve", grid.east, grid.west),
            ("y_solve", grid.south, grid.north),
            ("z_solve", grid.east, grid.west),
        ):
            with ctx.frame(frame):
                self.compute(ctx, 0.3 * work)
                fwd, bwd = fwd_of(ctx.rank), bwd_of(ctx.rank)
                for blk in range(self.detail):
                    with ctx.frame(f"cell_{blk}"):
                        if bwd is not None:
                            await tracer.recv(bwd, tag=100 + blk)
                        if fwd is not None:
                            await tracer.send(fwd, None, tag=100 + blk, size=blk_bytes)


class SP(_GridWorkload):
    """NPB SP: scalar-pentadiagonal ADI solver skeleton."""

    name = "sp"
    paper_k = 3
    time_per_point = 3.5e-8

    @classmethod
    def classes(cls):
        return CLASSES_SP

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        grid = self.grid(ctx.size)
        fb = self.face_bytes(ctx.size)
        work = self.step_compute(ctx)
        blk_bytes = max(fb // self.detail, 8)
        for frame, fwd_of, bwd_of in (
            ("txinvr_x", grid.east, grid.west),
            ("txinvr_y", grid.south, grid.north),
        ):
            with ctx.frame(frame):
                self.compute(ctx, 0.4 * work)
                fwd, bwd = fwd_of(ctx.rank), bwd_of(ctx.rank)
                for blk in range(self.detail):
                    with ctx.frame(f"cell_{blk}"):
                        if fwd is not None:
                            await tracer.send(fwd, None, tag=3 + blk, size=blk_bytes)
                        if bwd is not None:
                            await tracer.recv(bwd, tag=3 + blk)
        with ctx.frame("add"):
            self.compute(ctx, 0.2 * work)
            await tracer.allreduce(0.0, size=8)


class LU(_GridWorkload):
    """NPB LU: SSOR with wavefront pencil exchanges."""

    name = "lu"
    paper_k = 9

    @classmethod
    def classes(cls):
        return CLASSES_LU

    def pencil_bytes(self, nprocs: int) -> int:
        g = self.problem_class.grid
        side = max(int(round(g / max(self.grid(nprocs).rows, 1))), 1)
        return 8 * 5 * side

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        grid = self.grid(ctx.size)
        pb = self.pencil_bytes(ctx.size)
        work = self.step_compute(ctx)
        north, south = grid.north(ctx.rank), grid.south(ctx.rank)
        west, east = grid.west(ctx.rank), grid.east(ctx.rank)
        with ctx.frame("blts"):  # lower-triangular wavefront
            for blk in range(self.detail):
                with ctx.frame(f"pencil_{blk}"):
                    if north is not None:
                        await tracer.recv(north, tag=10 + blk)
                    if west is not None:
                        await tracer.recv(west, tag=40 + blk)
                    self.compute(ctx, 0.4 * work / self.detail)
                    if south is not None:
                        await tracer.send(south, None, tag=10 + blk, size=pb)
                    if east is not None:
                        await tracer.send(east, None, tag=40 + blk, size=pb)
        with ctx.frame("buts"):  # upper-triangular, reversed
            for blk in range(self.detail):
                with ctx.frame(f"pencil_{blk}"):
                    if south is not None:
                        await tracer.recv(south, tag=70 + blk)
                    if east is not None:
                        await tracer.recv(east, tag=130 + blk)
                    self.compute(ctx, 0.4 * work / self.detail)
                    if north is not None:
                        await tracer.send(north, None, tag=70 + blk, size=pb)
                    if west is not None:
                        await tracer.send(west, None, tag=130 + blk, size=pb)
        with ctx.frame("l2norm"):
            self.compute(ctx, 0.1 * work)
            await tracer.allreduce(0.0, size=40)


class LUModified(LU):
    """The paper's re-clustering stressor (Figure 10): LU with an *extra*
    barrier from a distinct call site injected every ``phase_period``
    timesteps, which changes the Call-Path and forces a phase change."""

    name = "lu_modified"

    def __init__(
        self,
        problem_class: str = "D",
        iterations: int | None = None,
        compute_scale: float = 1.0,
        phase_period: int = 10,
    ) -> None:
        super().__init__(problem_class, iterations, compute_scale)
        if phase_period < 1:
            raise ValueError("phase_period must be >= 1")
        self.phase_period = phase_period

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        await super().timestep(ctx, tracer, step)
        if (step + 1) % self.phase_period == 0:
            with ctx.frame("injected_phase_change"):
                await tracer.barrier()


class LUWeak(LU):
    """LU under weak scaling: the per-rank subdomain is fixed, so the
    global problem grows with P (paper's LUW rows)."""

    name = "luw"
    paper_k = 9

    def __init__(
        self,
        per_rank_grid: int = 64,
        iterations: int = 250,
        compute_scale: float = 1.0,
        detail: int = 4,
    ) -> None:
        Workload.__init__(self, iterations=iterations, compute_scale=compute_scale)
        self.per_rank_grid = per_rank_grid
        self.problem_class = ProblemClass("W", per_rank_grid, iterations)
        if detail < 1:
            raise ValueError("detail must be >= 1")
        self.detail = detail

    def points_per_rank(self, nprocs: int) -> float:
        return float(self.per_rank_grid**3)

    def pencil_bytes(self, nprocs: int) -> int:
        return 8 * 5 * self.per_rank_grid

    def face_bytes(self, nprocs: int) -> int:
        return 8 * 5 * self.per_rank_grid**2


class CG(_GridWorkload):
    """NPB CG: sparse conjugate gradient (SpMV in CSR) skeleton.

    Irregular *computation*, regular communication: a transpose exchange
    with the mirrored grid partner plus two dot-product allreduces per
    iteration — the paper's §V note that SpMV irregularity does not affect
    clustering."""

    name = "cg"
    paper_k = 3
    time_per_point = 2.0e-8

    @classmethod
    def classes(cls):
        # CG classes: n rows (approximated to a cube for the size model)
        return {
            "A": ProblemClass("A", 24, 15),
            "B": ProblemClass("B", 42, 75),
            "C": ProblemClass("C", 53, 75),
            "D": ProblemClass("D", 112, 100),
        }

    def transpose_partner(self, rank: int, nprocs: int) -> int:
        grid = self.grid(nprocs)
        row, col = grid.coords(rank)
        if grid.rows != grid.cols:
            return rank  # non-square layout: degenerate to self
        return grid.rank(col, row)

    def _transpose_ops(self, nprocs: int, row_bytes: int) -> list:
        """Per-rank scripts of the transpose exchange (``sendrecv`` is
        isend + recv + wait); diagonal ranks exchange nothing but still
        consult the gate with an empty script."""
        ops: list = []
        for rank in range(nprocs):
            partner = self.transpose_partner(rank, nprocs)
            if partner == rank:
                ops.append(())
            else:
                ops.append((
                    ("isend", partner, 20, row_bytes),
                    ("recv", partner, 20),
                    ("wait", 0),
                ))
        return ops

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        work = self.step_compute(ctx)
        partner = self.transpose_partner(ctx.rank, ctx.size)
        row_bytes = 8 * max(self.problem_class.points // ctx.size, 1)
        with ctx.frame("spmv"):
            self.compute(ctx, 0.7 * work)
            pattern = declare_pattern(
                "cg-transpose", ctx.size, (row_bytes,),
                lambda: self._transpose_ops(ctx.size, row_bytes),
            )
            if not await run_declared(ctx, tracer, pattern) \
                    and partner != ctx.rank:
                await tracer.sendrecv(
                    partner, None, source=partner, sendtag=20, recvtag=20,
                    size=row_bytes,
                )
        with ctx.frame("dot_rho"):
            self.compute(ctx, 0.15 * work)
            await tracer.allreduce(0.0, size=8)
        with ctx.frame("dot_alpha"):
            self.compute(ctx, 0.15 * work)
            await tracer.allreduce(0.0, size=8)
