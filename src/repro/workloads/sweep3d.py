"""Sweep3D: wavefront particle-transport skeleton.

Sweep3D solves the 3-D discrete-ordinates transport equation with a
multidimensional wavefront over a 2-D process grid: for each of the eight
octants (sweep directions), every rank receives the upstream angular fluxes
from its two upstream neighbours, computes its blocks, and forwards the
downstream faces.  All octants go through the same ``sweep`` routine —
one call site — so the Call-Path stays stable across timesteps even though
the neighbour *direction* changes per octant, which the relative endpoint
encodings capture as distinct (per-direction) events.

The paper notes Sweep3D's load imbalance (pipeline fill/drain means corner
ranks idle more): we model it with a position-dependent compute factor,
which lands in the delta-time histograms exactly as the paper describes.
"""

from __future__ import annotations

from ..simmpi.launcher import RankContext
from ..simmpi.topology import square_grid
from .base import Workload, declare_pattern, run_declared

#: the eight octants as (di, dj) sweep directions, each appearing twice
#: (two k-block sweeps per direction pair in the real code)
_OCTANTS = [
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
]


class Sweep3D(Workload):
    """The S3D rows of the paper's evaluation."""

    name = "sweep3d"
    paper_k = 9

    def __init__(
        self,
        nx: int = 100,
        ny: int = 100,
        nz: int = 1000,
        iterations: int = 10,
        compute_scale: float = 1.0,
        weak_scaling: bool = False,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        self.nx, self.ny, self.nz = nx, ny, nz
        self.weak_scaling = weak_scaling

    def points_per_rank(self, nprocs: int) -> float:
        total = float(self.nx * self.ny * self.nz)
        return total if self.weak_scaling else total / nprocs

    def face_bytes(self, nprocs: int) -> int:
        grid = square_grid(nprocs)
        if self.weak_scaling:
            cells = self.nx * self.nz
        else:
            cells = (self.nx // max(grid.rows, 1)) * self.nz
        return 8 * 6 * max(cells, 1)  # 6 angles per block face

    def _octant_ops(self, nprocs: int, di: int, dj: int, fb: int) -> list:
        """Per-rank scripts of one octant sweep.  The recv-before-send
        dependency chain cannot slot-align (each recv pairs with a *later*
        send slot), so the gate replays this with the scalar script tier —
        still one engine step for the whole wavefront."""
        grid = square_grid(nprocs)
        ops = []
        for rank in range(nprocs):
            row, col = grid.coords(rank)
            imbalance = 1.0 + 0.05 * ((row + col) % 4)
            work = self.points_per_rank(nprocs) * 1.5e-8 * imbalance / len(
                _OCTANTS
            )
            up_i = grid.neighbor(rank, -di, 0)
            up_j = grid.neighbor(rank, 0, -dj)
            down_i = grid.neighbor(rank, di, 0)
            down_j = grid.neighbor(rank, 0, dj)
            ops.append((
                ("recv", up_i, 30) if up_i is not None else None,
                ("recv", up_j, 31) if up_j is not None else None,
                ("compute", work * self.compute_scale),
                ("send", down_i, 30, fb) if down_i is not None else None,
                ("send", down_j, 31, fb) if down_j is not None else None,
            ))
        return ops

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        grid = square_grid(ctx.size)
        row, col = grid.coords(ctx.rank)
        fb = self.face_bytes(ctx.size)
        # position-dependent imbalance: ranks near the sweep origin start
        # earlier and wait longer at the far corner (paper: "Sweep3D
        # exhibits load imbalance")
        imbalance = 1.0 + 0.05 * ((row + col) % 4)
        work = (
            self.points_per_rank(ctx.size) * 1.5e-8 * imbalance / len(_OCTANTS)
        )
        for di, dj in _OCTANTS:
            with ctx.frame("sweep"):
                pattern = declare_pattern(
                    "sweep3d-octant", ctx.size,
                    (di, dj, fb, self.nx, self.ny, self.nz,
                     self.weak_scaling, self.compute_scale),
                    lambda di=di, dj=dj: self._octant_ops(ctx.size, di, dj, fb),
                )
                if await run_declared(ctx, tracer, pattern):
                    continue
                up_i = grid.neighbor(ctx.rank, -di, 0)
                up_j = grid.neighbor(ctx.rank, 0, -dj)
                if up_i is not None:
                    await tracer.recv(up_i, tag=30)
                if up_j is not None:
                    await tracer.recv(up_j, tag=31)
                self.compute(ctx, work)
                down_i = grid.neighbor(ctx.rank, di, 0)
                down_j = grid.neighbor(ctx.rank, 0, dj)
                if down_i is not None:
                    await tracer.send(down_i, None, tag=30, size=fb)
                if down_j is not None:
                    await tracer.send(down_j, None, tag=31, size=fb)
        with ctx.frame("flux_err"):
            await tracer.allreduce(0.0, size=8)
