"""POP: Parallel Ocean Program skeleton with irregular convergence.

POP alternates two phases per timestep (paper §IV/§V):

* **baroclinic** — regular 9-point stencil halo updates on the 2-D block
  decomposition (here: the four cardinal ``sendrecv`` exchanges);
* **barotropic** — a conjugate-gradient surface-pressure solver whose inner
  iteration count is *data dependent*: the number of halo+allreduce rounds
  varies per timestep.  The convergence count is identical on all ranks
  (it is a global residual test) but differs across timesteps, which makes
  the interval Call-Path signature fluctuate.

The paper states POP still clusters into 3 groups because Chameleon applies
the *automatic filter from [2]* to call parameters so the pattern becomes
regular; this reproduction implements that filter as the ``dedup``
signature mode (:class:`repro.core.SignatureAccumulator`), which hashes
the set of distinct call sites rather than the full event sequence.
"""

from __future__ import annotations

from ..simmpi.launcher import RankContext
from ..simmpi.topology import square_grid
from .base import Workload, declare_pattern, run_declared


def convergence_iters(step: int, base: int = 12, spread: int = 8) -> int:
    """Deterministic pseudo-data-dependent solver iteration count."""
    # a small multiplicative hash gives an irregular but reproducible walk
    return base + (step * 2654435761 >> 7) % spread


class POP(Workload):
    """One-degree-grid POP skeleton (896x896 blocks of 16x16 in the paper)."""

    name = "pop"
    paper_k = 3
    #: POP needs the parameter filter to cluster (paper §V) — the harness
    #: reads this attribute to pick the Chameleon signature mode.
    needs_signature_filter = True

    def __init__(
        self,
        grid_points: int = 896,
        block: int = 16,
        iterations: int = 20,
        compute_scale: float = 1.0,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        self.grid_points = grid_points
        self.block = block

    def halo_bytes(self, nprocs: int) -> int:
        grid = square_grid(nprocs)
        cols = max(self.grid_points // max(grid.cols, 1), self.block)
        return 8 * 2 * cols  # two ghost rows of doubles

    def points_per_rank(self, nprocs: int) -> float:
        return float(self.grid_points * self.grid_points) / nprocs

    def _halo_ops(self, nprocs: int, tag: int, size: int) -> list:
        """Per-rank op scripts of one halo update, slot-aligned (``None``
        placeholders on edge ranks) so the macro gate can vectorize it."""
        grid = square_grid(nprocs)
        ops = []
        for rank in range(nprocs):
            row: list = []
            n_isends = 0
            for fwd_of, bwd_of in (
                (grid.east, grid.west),
                (grid.south, grid.north),
            ):
                fwd, bwd = fwd_of(rank), bwd_of(rank)
                if fwd is not None:
                    row.append(("isend", fwd, tag, size))
                    k = n_isends
                    n_isends += 1
                else:
                    row.append(None)
                    k = None
                row.append(("recv", bwd, tag) if bwd is not None else None)
                row.append(("wait", k) if k is not None else None)
            ops.append(row)
        return ops

    async def _halo(self, ctx: RankContext, tracer, tag: int, size: int) -> None:
        pattern = declare_pattern(
            "pop-halo", ctx.size, (tag, size),
            lambda: self._halo_ops(ctx.size, tag, size),
        )
        if await run_declared(ctx, tracer, pattern):
            return
        grid = square_grid(ctx.size)
        for fwd_of, bwd_of in (
            (grid.east, grid.west),
            (grid.south, grid.north),
        ):
            fwd, bwd = fwd_of(ctx.rank), bwd_of(ctx.rank)
            sreq = None
            if fwd is not None:
                sreq = tracer.isend(fwd, None, tag=tag, size=size)
            if bwd is not None:
                await tracer.recv(bwd, tag=tag)
            if sreq is not None:
                await tracer.wait(sreq)

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        hb = self.halo_bytes(ctx.size)
        work = self.points_per_rank(ctx.size) * 2.5e-8
        with ctx.frame("baroclinic"):
            self.compute(ctx, 0.6 * work)
            await self._halo(ctx, tracer, tag=40, size=hb)
        with ctx.frame("barotropic"):
            inner = convergence_iters(step)
            per_iter = 0.4 * work / inner
            for _ in range(inner):
                self.compute(ctx, per_iter)
                await self._halo(ctx, tracer, tag=41, size=hb // 2)
                await tracer.allreduce(0.0, size=8)
