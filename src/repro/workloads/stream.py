"""Stream workload: a program whose timesteps arrive as data, not code.

Every other workload hard-codes its communication structure in Python;
``stream`` executes a *declared* event stream — one step per timestep,
each step a list of ops drawn from a small vocabulary (compute,
collectives, a group-wise shift exchange).  This is the substrate of the
``repro serve`` ingestion service: clients describe their application's
communication structure as NDJSON events, and the same step executor
runs them batch (here, as a registered workload) or incrementally (the
serve layer's live buffer), producing bit-identical traces either way.

The vocabulary is deadlock-free by construction: collectives are always
communicator-wide, and ``shift`` pair-matches every send with the
receive of the rank ``offset * groups`` above it (a chain, not a cycle).
Distinct *behaviour groups* — what Chameleon clusters — arise from
group-parameterized frame names on recorded MPI calls: call-path
signatures observe logical frames at traced events only, so two ranks
executing the same ops under different frames land in different
clusters, exactly like :class:`~repro.workloads.synthetic.BehaviourGroups`.

Steps are carried as a *canonical JSON string* (``steps_json``): sorted
keys, compact separators, every default materialized.  A string
parameter survives the harness's param freezing untouched, pickles
across worker boundaries, and makes the cell digest depend only on the
normalized content — two spellings of the same stream share one cache
slot, which is what lets the serve layer use the run cache as its dedup
layer.
"""

from __future__ import annotations

import json
from typing import Any

from ..simmpi.launcher import RankContext
from .base import Workload

#: Op names accepted in a step's ``ops`` list.
OP_NAMES = (
    "compute",
    "allreduce",
    "barrier",
    "bcast",
    "reduce",
    "allgather",
    "alltoall",
    "shift",
)

#: Hard ceiling on ops per step (a serve config may lower it further).
MAX_OPS_PER_STEP = 256

#: Hard ceiling on steps per stream.
MAX_STEPS = 1_000_000


class StreamSpecError(ValueError):
    """A step or op violates the stream vocabulary."""


def _norm_int(op: dict, key: str, default: int, lo: int,
              hi: int | None = None) -> int:
    value = op.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise StreamSpecError(f"op {op.get('op')!r}: {key} must be an int")
    if value < lo or (hi is not None and value > hi):
        bound = f">= {lo}" if hi is None else f"in [{lo}, {hi}]"
        raise StreamSpecError(f"op {op.get('op')!r}: {key} must be {bound}")
    return value


def _norm_ranks(op: dict) -> Any:
    """Normalize a compute op's rank selector.

    ``"all"`` (default), an explicit sorted list of ranks, or a modulo
    selector ``{"mod": M, "eq": r}`` (rank participates iff
    ``rank % M == r``).  Selectors only gate *compute* — collectives are
    always world-wide, so a selector can never split one.
    """
    sel = op.get("ranks", "all")
    if sel == "all":
        return "all"
    if isinstance(sel, list):
        if not sel or not all(
            isinstance(r, int) and not isinstance(r, bool) and r >= 0
            for r in sel
        ):
            raise StreamSpecError(
                "compute ranks list must be non-empty non-negative ints"
            )
        return sorted(set(sel))
    if isinstance(sel, dict):
        mod = sel.get("mod")
        eq = sel.get("eq")
        if (
            not isinstance(mod, int) or isinstance(mod, bool) or mod < 1
            or not isinstance(eq, int) or isinstance(eq, bool)
            or not 0 <= eq < mod
            or set(sel) != {"mod", "eq"}
        ):
            raise StreamSpecError(
                'compute ranks selector must be {"mod": M>=1, "eq": 0..M-1}'
            )
        return {"mod": mod, "eq": eq}
    raise StreamSpecError(f"bad compute ranks selector: {sel!r}")


def _selected(rank: int, sel: Any) -> bool:
    if sel == "all":
        return True
    if isinstance(sel, list):
        return rank in sel
    return rank % sel["mod"] == sel["eq"]


def normalize_op(op: Any) -> dict[str, Any]:
    """Validate one op and return its canonical form (defaults filled)."""
    if not isinstance(op, dict):
        raise StreamSpecError(f"op must be an object, got {type(op).__name__}")
    kind = op.get("op")
    if kind not in OP_NAMES:
        raise StreamSpecError(
            f"unknown op {kind!r}; choose one of {', '.join(OP_NAMES)}"
        )
    frame = op.get("frame", kind)
    if not isinstance(frame, str) or not frame:
        raise StreamSpecError(f"op {kind!r}: frame must be a non-empty string")
    known = {"op", "frame"}
    out: dict[str, Any] = {"op": kind, "frame": frame}
    if kind == "compute":
        seconds = op.get("seconds", 0.0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise StreamSpecError("compute seconds must be a number")
        if not seconds >= 0:
            raise StreamSpecError("compute seconds must be >= 0")
        out["seconds"] = float(seconds)
        out["ranks"] = _norm_ranks(op)
        known |= {"seconds", "ranks"}
    elif kind in ("allreduce", "allgather", "alltoall"):
        out["size"] = _norm_int(op, "size", 8, 1)
        known |= {"size"}
    elif kind == "barrier":
        pass
    elif kind in ("bcast", "reduce"):
        out["root"] = _norm_int(op, "root", 0, 0)
        out["size"] = _norm_int(op, "size", 8, 1)
        known |= {"root", "size"}
    elif kind == "shift":
        out["groups"] = _norm_int(op, "groups", 1, 1)
        out["offset"] = _norm_int(op, "offset", 1, 1)
        out["tag"] = _norm_int(op, "tag", 0, 0)
        out["size"] = _norm_int(op, "size", 8, 1)
        known |= {"groups", "offset", "tag", "size"}
    extra = set(op) - known
    if extra:
        raise StreamSpecError(
            f"op {kind!r}: unknown field(s) {', '.join(sorted(extra))}"
        )
    return out


def normalize_step(step: Any, *, max_ops: int = MAX_OPS_PER_STEP) -> dict:
    """Validate one step event and return its canonical form."""
    if not isinstance(step, dict):
        raise StreamSpecError(
            f"step must be an object, got {type(step).__name__}"
        )
    if step.get("type", "step") != "step":
        raise StreamSpecError(f"unknown event type {step.get('type')!r}")
    extra = set(step) - {"type", "ops"}
    if extra:
        raise StreamSpecError(
            f"step: unknown field(s) {', '.join(sorted(extra))}"
        )
    ops = step.get("ops")
    if not isinstance(ops, list):
        raise StreamSpecError("step must carry an 'ops' list")
    if len(ops) > max_ops:
        raise StreamSpecError(
            f"step has {len(ops)} ops, limit is {max_ops}"
        )
    return {"ops": [normalize_op(op) for op in ops]}


def normalize_steps(steps: Any, *, max_steps: int = MAX_STEPS,
                    max_ops: int = MAX_OPS_PER_STEP) -> list[dict]:
    if not isinstance(steps, list):
        raise StreamSpecError("steps must be a list of step objects")
    if len(steps) > max_steps:
        raise StreamSpecError(
            f"stream has {len(steps)} steps, limit is {max_steps}"
        )
    return [normalize_step(step, max_ops=max_ops) for step in steps]


def canonical_steps_json(steps: list[dict]) -> str:
    """The digest-stable JSON rendering of *normalized* steps."""
    return json.dumps(steps, sort_keys=True, separators=(",", ":"))


def decode_steps_json(steps_json: str) -> list[dict]:
    """Parse and re-normalize a ``steps_json`` parameter."""
    try:
        raw = json.loads(steps_json)
    except json.JSONDecodeError as exc:
        raise StreamSpecError(f"steps_json is not valid JSON: {exc}") from None
    steps = normalize_steps(raw)
    if not steps:
        raise StreamSpecError("a stream needs at least one step")
    return steps


async def exec_step(ctx: RankContext, tracer: Any, step: dict,
                    compute_scale: float = 1.0) -> None:
    """Execute one normalized step's ops on this rank.

    This is the single executor shared by the batch workload and the
    serve layer's live path — streamed-vs-batch bit-identity holds
    because both feed the same normalized dicts through this function.
    """
    for op in step["ops"]:
        kind = op["op"]
        if kind == "compute":
            if _selected(ctx.rank, op["ranks"]):
                ctx.compute(op["seconds"] * compute_scale)
        elif kind == "allreduce":
            with ctx.frame(op["frame"]):
                await tracer.allreduce(0.0, size=op["size"])
        elif kind == "barrier":
            with ctx.frame(op["frame"]):
                await tracer.barrier()
        elif kind == "bcast":
            _check_root(op, ctx.size)
            with ctx.frame(op["frame"]):
                await tracer.bcast(0.0, root=op["root"], size=op["size"])
        elif kind == "reduce":
            _check_root(op, ctx.size)
            with ctx.frame(op["frame"]):
                await tracer.reduce(0.0, root=op["root"], size=op["size"])
        elif kind == "allgather":
            with ctx.frame(op["frame"]):
                await tracer.allgather(0.0, size=op["size"])
        elif kind == "alltoall":
            with ctx.frame(op["frame"]):
                await tracer.alltoall([0.0] * ctx.size, size=op["size"])
        elif kind == "shift":
            groups, offset = op["groups"], op["offset"]
            group = ctx.rank % groups
            frame = op["frame"].replace("{group}", str(group))
            # Chain exchange within each modulo-group: rank -> rank +
            # offset*groups.  Top-of-chain ranks only receive, so the
            # dependency graph is acyclic (deadlock-free) while every
            # send still has exactly one matching receive.
            dst = ctx.rank + offset * groups
            src = ctx.rank - offset * groups
            with ctx.frame(frame):
                if dst < ctx.size:
                    await tracer.send(dst, float(ctx.rank), tag=op["tag"],
                                      size=op["size"])
                if src >= 0:
                    await tracer.recv(src, tag=op["tag"])
        else:  # pragma: no cover - normalize_op is exhaustive
            raise StreamSpecError(f"unknown op {kind!r}")


def _check_root(op: dict, size: int) -> None:
    """Root ranks are validated at execution, not ingestion: the stream
    vocabulary is nprocs-agnostic, so a root beyond the communicator is a
    *runtime* poisoning (rank failure / quarantine), not a 400."""
    if op["root"] >= size:
        raise ValueError(
            f"{op['op']} root {op['root']} out of range for {size} ranks"
        )


#: Default program: two collective-only steps, then four steps where two
#: modulo-groups run distinct kernels (group-parameterized shift frames)
#: around a shared reduction — small, but it exercises AT -> C -> L and
#: produces two call-path clusters at any P >= 4.
_DEFAULT_RAW = [
    {"ops": [
        {"op": "compute", "seconds": 0.0005},
        {"op": "allreduce", "size": 8, "frame": "residual"},
    ]},
    {"ops": [
        {"op": "compute", "seconds": 0.0005},
        {"op": "allreduce", "size": 8, "frame": "residual"},
    ]},
] + [
    {"ops": [
        {"op": "compute", "seconds": 0.001,
         "ranks": {"mod": 2, "eq": 0}},
        {"op": "shift", "groups": 2, "offset": 1, "size": 512,
         "frame": "group_kernel_{group}"},
        {"op": "allreduce", "size": 8, "frame": "residual"},
    ]}
    for _ in range(4)
]


def default_steps() -> list[dict]:
    """The built-in demo stream, normalized."""
    return normalize_steps([dict(s) for s in _DEFAULT_RAW])


def default_steps_json() -> str:
    return canonical_steps_json(default_steps())


class StreamWorkload(Workload):
    """Replay a declared event stream as an iterative SPMD workload.

    ``steps_json`` is the canonical JSON produced by
    :func:`canonical_steps_json`; any valid spelling is accepted and
    re-normalized, but callers that care about cache identity (the serve
    layer) must canonicalize before building cells.
    """

    name = "stream"
    paper_k = 4

    def __init__(self, steps_json: str | None = None,
                 compute_scale: float = 1.0) -> None:
        if steps_json is None:
            steps_json = default_steps_json()
        steps = decode_steps_json(steps_json)
        super().__init__(iterations=len(steps), compute_scale=compute_scale)
        self.steps_json = steps_json
        self._steps = steps

    @property
    def steps(self) -> list[dict]:
        return self._steps

    async def timestep(self, ctx: RankContext, tracer: Any,
                       step: int) -> None:
        await exec_step(ctx, tracer, self._steps[step], self.compute_scale)
