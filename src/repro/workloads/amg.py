"""AMG: algebraic-multigrid V-cycle skeleton.

An extension workload (not in the paper's evaluation) with a communication
structure that stresses the compressor differently from the stencil codes:
each timestep runs a V-cycle over ``levels`` grid levels; message sizes
shrink geometrically down the hierarchy and the *same call site* is visited
once per level with different payloads — exercising ParamStat merging —
while coarse levels engage fewer ranks (strided sub-groups), exercising
ranklist factorization and partial-group collectives.
"""

from __future__ import annotations

from ..simmpi.launcher import RankContext
from .base import Workload, declare_pattern, run_declared


class AMG(Workload):
    """V-cycle solver skeleton on a 1-D rank partition."""

    name = "amg"
    paper_k = 9

    def __init__(
        self,
        fine_points: int = 1 << 16,
        levels: int = 4,
        iterations: int = 10,
        compute_scale: float = 1.0,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.fine_points = fine_points
        self.levels = levels

    def level_bytes(self, level: int, nprocs: int) -> int:
        points = max(self.fine_points >> (2 * level), 1)
        return 8 * max(points // nprocs, 1)

    def active_stride(self, level: int) -> int:
        """Coarser levels keep every 2^level-th rank active."""
        return 1 << level

    def _smooth_ops(self, nprocs: int, level: int) -> list:
        """Per-rank scripts of one level's smoothing step; ranks inactive at
        this level get empty scripts (they still consult the gate — the
        declared path is hoisted above the early return so the exchange
        stays collective over the world)."""
        stride = self.active_stride(level)
        nbytes = self.level_bytes(level, nprocs)
        ops: list = []
        for rank in range(nprocs):
            if rank % stride != 0:
                ops.append(())
                continue
            left = rank - stride
            right = rank + stride
            seconds = max(self.fine_points >> (2 * level), 1) / nprocs * 2e-8
            ops.append((
                ("isend", right, 90 + level, nbytes)
                if right < nprocs else None,
                ("recv", left, 90 + level) if left >= 0 else None,
                ("wait", 0) if right < nprocs else None,
                ("compute", seconds * self.compute_scale),
            ))
        return ops

    async def _smooth(self, ctx: RankContext, tracer, level: int) -> None:
        """Jacobi smoothing halo exchange among the level's active ranks."""
        pattern = declare_pattern(
            "amg-smooth", ctx.size,
            (level, self.fine_points, self.compute_scale),
            lambda: self._smooth_ops(ctx.size, level),
        )
        if await run_declared(ctx, tracer, pattern):
            return
        stride = self.active_stride(level)
        if ctx.rank % stride != 0:
            return
        nbytes = self.level_bytes(level, ctx.size)
        left = ctx.rank - stride
        right = ctx.rank + stride
        sreq = None
        if right < ctx.size:
            sreq = tracer.isend(right, None, tag=90 + level, size=nbytes)
        if left >= 0:
            await tracer.recv(left, tag=90 + level)
        if sreq is not None:
            await tracer.wait(sreq)
        self.compute(
            ctx, max(self.fine_points >> (2 * level), 1) / ctx.size * 2e-8
        )

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        # down-sweep: smooth and restrict
        for level in range(self.levels):
            with ctx.frame("smooth_down"):
                await self._smooth(ctx, tracer, level)
        # coarse solve: a reduction among the coarsest active ranks only is
        # approximated with a world allreduce of the coarse residual
        with ctx.frame("coarse_solve"):
            await tracer.allreduce(0.0, size=8)
        # up-sweep: prolong and smooth
        for level in range(self.levels - 1, -1, -1):
            with ctx.frame("smooth_up"):
                await self._smooth(ctx, tracer, level)
        with ctx.frame("residual_norm"):
            await tracer.allreduce(0.0, size=8)
