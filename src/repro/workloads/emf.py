"""EMF: the ElasticMedFlow master-worker medical-pipeline skeleton.

The paper's EMF experiment runs a 9-stage DNA preprocessing pipeline over
1000 patients x 4 sequences with mpi4py: one master (rank 0) dispatches
tasks to P-1 workers and collects results.  The total task count is
``1000 * 4 * 9 = 36000``; the iteration counts in Table II are rounds of
"one task per worker": ``36000 / (P-1)`` → 288 rounds at P=126, 144 at 251,
72 at 501, 36 at 1001.

Communication structure per round:

* master: ``send(task)`` to workers ``1..P-1`` (a strided endpoint pattern
  that ScalaTrace compresses to one PRSD event), then ``recv`` of P-1
  results with ``MPI_ANY_SOURCE`` (a wildcard event);
* worker: ``recv`` from the master (absolute-constant endpoint 0), compute
  the stage, ``send`` the result back to 0.

Intra-compression therefore reduces the whole run to a handful of PRSD
events — the paper's "extremely effective, ... just 6 PRSD events".
"""

from __future__ import annotations

from ..simmpi.comm import ANY_SOURCE
from ..simmpi.launcher import RankContext
from .base import Workload

TOTAL_TASKS_PAPER = 1000 * 4 * 9


def rounds_for(nprocs: int, total_tasks: int = TOTAL_TASKS_PAPER) -> int:
    """Dispatch rounds: one task per worker per round (paper Table II)."""
    if nprocs < 2:
        raise ValueError("EMF needs a master and at least one worker")
    return max(total_tasks // (nprocs - 1), 1)


class EMF(Workload):
    """Master-worker pipeline (one master, P-1 workers)."""

    name = "emf"
    paper_k = 2

    def __init__(
        self,
        total_tasks: int | None = None,
        iterations: int | None = None,
        task_bytes: int = 4096,
        task_seconds: float = 0.02,
        compute_scale: float = 1.0,
    ) -> None:
        # iterations are resolved per-run from P unless given explicitly
        super().__init__(iterations=iterations or 1, compute_scale=compute_scale)
        self._explicit_iterations = iterations is not None
        self.total_tasks = total_tasks or TOTAL_TASKS_PAPER
        self.task_bytes = task_bytes
        self.task_seconds = task_seconds

    def validate(self, nprocs: int) -> None:
        super().validate(nprocs)
        if nprocs < 2:
            raise ValueError("EMF needs at least 2 ranks")

    async def run(self, ctx: RankContext, tracer) -> None:
        self.validate(ctx.size)
        if not self._explicit_iterations:
            self.iterations = rounds_for(ctx.size, self.total_tasks)
        await self.setup(ctx, tracer)
        for step in range(self.iterations):
            await self._pre_step(ctx, tracer, step)
            await self.timestep(ctx, tracer, step)
            await self._progress_point(ctx, tracer)
            await tracer.marker()

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        if ctx.rank == 0:
            await self._master_round(ctx, tracer)
        else:
            await self._worker_round(ctx, tracer)

    async def _master_round(self, ctx: RankContext, tracer) -> None:
        nworkers = ctx.size - 1
        with ctx.frame("dispatch"):
            for worker in range(1, ctx.size):
                await tracer.send(worker, None, tag=50, size=self.task_bytes)
        with ctx.frame("collect"):
            for _ in range(nworkers):
                await tracer.recv(ANY_SOURCE, tag=51)

    async def _worker_round(self, ctx: RankContext, tracer) -> None:
        with ctx.frame("stage"):
            await tracer.recv(0, tag=50)
            self.compute(ctx, self.task_seconds)
            await tracer.send(0, None, tag=51, size=self.task_bytes // 4)
