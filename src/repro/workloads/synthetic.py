"""Synthetic workloads: controlled phase structure for unit tests/ablations.

These are not from the paper's evaluation; they exercise specific Chameleon
code paths with knowable expected behaviour — a uniform collective kernel
(one cluster), an alternating two-phase kernel (forced re-clustering), and a
parameterized multi-group kernel (exact cluster counts).
"""

from __future__ import annotations

from ..simmpi.launcher import RankContext
from .base import Workload


class UniformCollective(Workload):
    """Every rank does the same allreduce: exactly one behaviour cluster."""

    name = "uniform"
    paper_k = 1

    def __init__(self, iterations: int = 10, work: float = 0.01,
                 compute_scale: float = 1.0) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        self.work = work

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        with ctx.frame("kernel"):
            self.compute(ctx, self.work)
            await tracer.allreduce(1.0, size=8)


class AlternatingPhases(Workload):
    """Phases alternate every ``period`` timesteps between two kernels with
    different call paths — the maximal re-clustering stressor."""

    name = "alternating"
    paper_k = 2

    def __init__(
        self,
        iterations: int = 20,
        period: int = 5,
        work: float = 0.005,
        compute_scale: float = 1.0,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.work = work

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        phase = (step // self.period) % 2
        if phase == 0:
            with ctx.frame("phase_a"):
                self.compute(ctx, self.work)
                await tracer.allreduce(1.0, size=8)
        else:
            with ctx.frame("phase_b"):
                self.compute(ctx, self.work)
                await tracer.barrier()


class BehaviourGroups(Workload):
    """Ranks are split into ``groups`` behaviour classes; each class runs a
    distinct kernel, so Chameleon must produce exactly ``groups`` Call-Path
    clusters."""

    name = "groups"

    def __init__(
        self,
        groups: int = 3,
        iterations: int = 10,
        work: float = 0.005,
        compute_scale: float = 1.0,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        if groups < 1:
            raise ValueError("groups must be >= 1")
        self.groups = groups
        self.work = work

    def validate(self, nprocs: int) -> None:
        super().validate(nprocs)
        if nprocs < self.groups:
            raise ValueError("need at least one rank per behaviour group")

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        my_group = ctx.rank % self.groups
        # common collective keeps all ranks synchronized
        with ctx.frame("common"):
            await tracer.allreduce(1.0, size=8)
        # group-specific kernel: a shift along the group's own members
        # under a group-named logical frame, so each group presents a
        # distinct Call-Path signature
        with ctx.frame(f"group_kernel_{my_group}"):
            self.compute(ctx, self.work * (my_group + 1))
            nxt = ctx.rank + self.groups
            prv = ctx.rank - self.groups
            if nxt < ctx.size:
                await tracer.send(nxt, None, tag=60 + my_group, size=64)
            if prv >= 0:
                await tracer.recv(prv, tag=60 + my_group)
