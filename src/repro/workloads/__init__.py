"""repro.workloads — communication skeletons of the paper's benchmarks.

NPB BT/SP/LU (classes A–D), LU weak scaling, CG, Sweep3D, POP and the EMF
master-worker pipeline, plus synthetic kernels with controlled phase
structure.  See :mod:`repro.workloads.base` for the timestep/marker
framework and DESIGN.md for the skeleton-vs-real-code substitution argument.
"""

from .amg import AMG
from .base import NullTracer, ProblemClass, Workload
from .emf import EMF, TOTAL_TASKS_PAPER, rounds_for
from .lulesh import LULESH
from .npb import (
    BT,
    CG,
    CLASSES_BT,
    CLASSES_LU,
    CLASSES_SP,
    LU,
    LUModified,
    LUWeak,
    SP,
)
from .pop import POP, convergence_iters
from .registry import PAPER_K, make_workload, workload_names
from .sweep3d import Sweep3D
from .synthetic import AlternatingPhases, BehaviourGroups, UniformCollective

__all__ = [
    "AMG",
    "AlternatingPhases",
    "BT",
    "BehaviourGroups",
    "CG",
    "CLASSES_BT",
    "CLASSES_LU",
    "CLASSES_SP",
    "EMF",
    "LU",
    "LULESH",
    "LUModified",
    "LUWeak",
    "NullTracer",
    "PAPER_K",
    "POP",
    "ProblemClass",
    "SP",
    "Sweep3D",
    "TOTAL_TASKS_PAPER",
    "UniformCollective",
    "Workload",
    "convergence_iters",
    "make_workload",
    "rounds_for",
    "workload_names",
]
