"""Workload framework: timestep-driven SPMD communication skeletons.

Every benchmark in the paper's evaluation is an iterative SPMD code; each
workload here reproduces its *communication structure* (who talks to whom,
which collectives, what calling contexts) plus a compute model, which is all
Chameleon observes.  The timestep loop inserts the Chameleon marker at the
progress-reporting point, exactly where the paper inserts it.

Workloads run against any object exposing the traced-communicator API:
:class:`~repro.scalatrace.ScalaTraceTracer`, the Chameleon/ACURDION
subclasses, or :class:`NullTracer` (the uninstrumented baseline).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..simmpi.launcher import RankContext
from ..simmpi.patterns import NeighborPattern


class NullTracer:
    """Pass-through 'tracer': the uninstrumented application (APP mode).

    Forwards every traced call straight to the raw communicator and makes
    the marker a no-op, so the virtual time of a run under NullTracer is the
    paper's baseline application time.
    """

    #: declared exchanges may bypass the per-call tracer surface: the
    #: NullTracer adds nothing per call, so a workload's regular phases can
    #: run through ``Communicator.exchange`` (and its macro fast path)
    #: without changing what this tracer observes.  Real tracers keep the
    #: original per-call sites — their signatures hash the call sequence.
    pattern_transparent = True

    def __init__(self, ctx: RankContext) -> None:
        self.ctx = ctx
        self.comm = ctx.comm
        self.enabled = False

    def __getattr__(self, name: str) -> Any:
        return getattr(self.comm, name)

    async def wait(self, request) -> Any:
        return await request.wait()

    async def wait_all(self, requests) -> list[Any]:
        return [await r.wait() for r in requests]

    async def marker(self) -> None:
        return None

    async def finalize(self) -> None:
        return None


# -- declared regular exchanges ---------------------------------------------

#: process-wide pattern cache: building a NeighborPattern is O(P * ops) and
#: workloads re-enter the same phase every timestep, so instances are built
#: once per (pattern name, comm size, parameter key) and reused.
_PATTERN_CACHE: dict[tuple, NeighborPattern] = {}


def declare_pattern(
    name: str,
    size: int,
    key: tuple,
    build: Callable[[], Sequence],
) -> NeighborPattern:
    """Get (or build and cache) a declared exchange pattern.

    ``key`` must cover every parameter that changes the per-rank op lists
    (tags, byte counts, pre-scaled compute durations, ...); ``build`` is
    only called on a cache miss and returns the per-rank op lists for
    :class:`~repro.simmpi.patterns.NeighborPattern`.
    """
    cache_key = (name, size, key)
    pattern = _PATTERN_CACHE.get(cache_key)
    if pattern is None:
        pattern = _PATTERN_CACHE[cache_key] = NeighborPattern(
            name, size, build()
        )
    return pattern


async def run_declared(ctx: RankContext, tracer: Any,
                       pattern: NeighborPattern) -> bool:
    """Run ``pattern`` through the declared-exchange path if the tracer
    permits it; returns whether it ran.

    Declared phases only bypass the tracer when it is *pattern
    transparent* (the :class:`NullTracer`): tracers that hash call sites
    must keep seeing the original per-message calls, so workloads fall
    through to their unchanged bodies when this returns ``False``.
    """
    if not getattr(tracer, "pattern_transparent", False):
        return False
    await ctx.comm.exchange(pattern, compute=ctx.compute)
    return True


@dataclass(frozen=True)
class ProblemClass:
    """An NPB-style problem class: global grid size and iteration count."""

    name: str
    grid: int  # points per dimension of the global cube
    iterations: int

    @property
    def points(self) -> int:
        return self.grid**3


class Workload(abc.ABC):
    """An iterative SPMD communication skeleton."""

    #: registry name, e.g. "bt"
    name: str = "workload"
    #: default cluster count K from the paper's Table I
    paper_k: int = 9

    def __init__(self, iterations: int, compute_scale: float = 1.0) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.compute_scale = compute_scale
        #: extra initialization events per early timestep (index = step):
        #: real codes run setup/norm kernels during their first iterations,
        #: which is what produces the AT (all-tracing) markers beyond the
        #: first one in the paper's Table II.  Each entry fires that many
        #: ``init_residual_<step>`` allreduces before the timestep.
        self.warmup_profile: tuple[int, ...] = ()

    @abc.abstractmethod
    async def timestep(self, ctx: RankContext, tracer: Any, step: int) -> None:
        """One iteration's communication + compute."""

    def validate(self, nprocs: int) -> None:
        """Raise ValueError if this workload cannot run on ``nprocs``."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")

    async def setup(self, ctx: RankContext, tracer: Any) -> None:
        """Optional pre-loop communication (input distribution etc.)."""

    async def _pre_step(self, ctx: RankContext, tracer: Any, step: int) -> None:
        """Fire this step's warmup events (distinct call site per step)."""
        if step < len(self.warmup_profile):
            for _ in range(self.warmup_profile[step]):
                with ctx.frame(f"init_residual_{step}"):
                    await tracer.allreduce(0.0, size=8)

    async def _progress_point(self, ctx: RankContext, tracer: Any) -> None:
        """The application's own timestep-boundary synchronization.

        The paper inserts its marker "in the progress reporting point" of
        iterative codes — a point where these applications already
        synchronize (residual prints, convergence checks).  Modelling that
        synchronization as part of the application (it runs in every mode,
        including the uninstrumented baseline) is what makes the marker's
        *additional* cost the paper's marker cost rather than a pipeline
        flush the real codes would have paid anyway.
        """
        with ctx.frame("progress"):
            await tracer.allreduce(0.0, size=8)

    def _step_stream(self, ctx: RankContext) -> Iterable[int]:
        """The step indices this rank will run, in order.

        The default is the declared iteration count.  Streaming workloads
        override this with a generator that blocks until the next step
        *arrives* — a generator is the one override point that never
        shows up in captured call paths (its frame is suspended while the
        timestep runs), which is what keeps streamed traces bit-identical
        to batch ones.
        """
        return range(self.iterations)

    def _on_marker(self, ctx: RankContext, step: int, decision: Any,
                   tracer: Any) -> None:
        """Observation hook after each marker (must not touch the sim)."""

    async def run(self, ctx: RankContext, tracer: Any) -> None:
        """The main loop: timesteps with the marker at each boundary."""
        self.validate(ctx.size)
        await self.setup(ctx, tracer)
        for step in self._step_stream(ctx):
            await self._pre_step(ctx, tracer, step)
            await self.timestep(ctx, tracer, step)
            await self._progress_point(ctx, tracer)
            decision = await tracer.marker()
            self._on_marker(ctx, step, decision, tracer)

    # -- helpers for subclasses ------------------------------------------

    def compute(self, ctx: RankContext, seconds: float) -> None:
        """Charge (scaled) computation to this rank."""
        ctx.compute(seconds * self.compute_scale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} iters={self.iterations}>"
