"""LULESH: Lagrangian shock-hydrodynamics proxy-app skeleton.

The paper lists LULESH among the iterative codes that "report progress at
the end of kernel loops or timesteps" — the natural marker point.  The
communication structure per timestep (from the LLNL proxy app, which runs
on a perfect-cube process grid):

* ``CalcForceForNodes`` — nodal force ghost exchange with the (up to six)
  face neighbours of the 3-D decomposition, send-then-receive pairs;
* ``LagrangeElements`` — element ghost exchange (smaller messages, one
  round with the same neighbours, distinct call site);
* ``CalcTimeConstraints`` — two global ``MPI_Allreduce(MIN)`` calls for the
  Courant and hydro timestep constraints.

Interior / face / edge / corner ranks give up to 27 relative-encoding
behaviour classes in principle; at the modest cube sizes the simulator
uses (2³, 3³, 4³) the classes that actually occur stay well within
Chameleon's dynamic-K reach.
"""

from __future__ import annotations

from ..simmpi.collectives import MIN
from ..simmpi.launcher import RankContext
from ..simmpi.topology import cube_grid
from .base import Workload, declare_pattern, run_declared

#: the six face directions of the 3-D decomposition
_FACES = (
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)


class LULESH(Workload):
    """Sedov-blast skeleton on a cube grid (P must be a perfect cube)."""

    name = "lulesh"
    paper_k = 9  # interior/face/edge/corner classes; dynamic-K covers more

    def __init__(
        self,
        edge_elems: int = 30,
        iterations: int = 20,
        compute_scale: float = 1.0,
    ) -> None:
        super().__init__(iterations=iterations, compute_scale=compute_scale)
        if edge_elems < 1:
            raise ValueError("edge_elems must be >= 1")
        self.edge_elems = edge_elems

    def validate(self, nprocs: int) -> None:
        super().validate(nprocs)
        cube_grid(nprocs)  # raises for non-cubes

    def face_bytes(self) -> int:
        # one face of nodal fields: (edge+1)^2 nodes x 3 components x 8 B
        return 8 * 3 * (self.edge_elems + 1) ** 2

    def elem_bytes(self) -> int:
        return 8 * self.edge_elems**2

    def step_seconds(self) -> float:
        return self.edge_elems**3 * 6.0e-8

    def _ghost_ops(self, nprocs: int, tag: int, nbytes: int) -> list:
        """Per-rank scripts of one ghost exchange: all live-face isends,
        then the matching receives, then the waits in posting order."""
        grid = cube_grid(nprocs)
        ops = []
        for rank in range(nprocs):
            row: list = []
            n_isends = 0
            for i, d in enumerate(_FACES):
                peer = grid.neighbor(rank, *d)
                if peer is not None:
                    row.append(("isend", peer, tag + i, nbytes))
                    n_isends += 1
                else:
                    row.append(None)
            for i, d in enumerate(_FACES):
                opposite = i ^ 1
                peer = grid.neighbor(rank, *d)
                row.append(
                    ("recv", peer, tag + opposite) if peer is not None else None
                )
            for j in range(len(_FACES)):
                row.append(("wait", j) if j < n_isends else None)
            ops.append(row)
        return ops

    async def _ghost_exchange(
        self, ctx: RankContext, tracer, tag: int, nbytes: int
    ) -> None:
        pattern = declare_pattern(
            "lulesh-ghost", ctx.size, (tag, nbytes),
            lambda: self._ghost_ops(ctx.size, tag, nbytes),
        )
        if await run_declared(ctx, tracer, pattern):
            return
        grid = cube_grid(ctx.size)
        requests = []
        for i, d in enumerate(_FACES):
            peer = grid.neighbor(ctx.rank, *d)
            if peer is not None:
                requests.append(
                    tracer.isend(peer, None, tag=tag + i, size=nbytes)
                )
        for i, d in enumerate(_FACES):
            # matching receive direction: the opposite face's sends
            opposite = i ^ 1
            peer = grid.neighbor(ctx.rank, *d)
            if peer is not None:
                await tracer.recv(peer, tag=tag + opposite)
        await tracer.wait_all(requests)

    async def timestep(self, ctx: RankContext, tracer, step: int) -> None:
        work = self.step_seconds()
        with ctx.frame("CalcForceForNodes"):
            self.compute(ctx, 0.55 * work)
            await self._ghost_exchange(
                ctx, tracer, tag=70, nbytes=self.face_bytes()
            )
        with ctx.frame("LagrangeElements"):
            self.compute(ctx, 0.35 * work)
            await self._ghost_exchange(
                ctx, tracer, tag=80, nbytes=self.elem_bytes()
            )
        with ctx.frame("CalcTimeConstraints"):
            self.compute(ctx, 0.1 * work)
            await tracer.allreduce(1.0, op=MIN, size=8)
            await tracer.allreduce(1.0, op=MIN, size=8)
