"""ACURDION-style baseline: signature clustering at ``MPI_Finalize`` only.

The paper's Table III compares Chameleon against ACURDION, the predecessor
framework (Bahmani & Mueller [1-3]) that also clusters by signatures but
does so *once*, inside the finalize wrapper:

* every rank traces for the whole run (no lead phase, no space savings —
  the paper's Table IV discussion: "in ACURDION, all processes need to
  allocate memory for their traces");
* no marker calls, no votes, no online trace — so its *time* overhead is
  lower than Chameleon's (Table III shows roughly half), which is exactly
  the trade-off the experiment demonstrates;
* at finalize the ranks cluster over the radix tree and only the K lead
  traces are merged.
"""

from __future__ import annotations

from typing import Any

from ..scalatrace.events import EventRecord, Op
from ..scalatrace.trace import Trace
from ..scalatrace.tracer import ScalaTraceTracer
from ..simmpi.launcher import RankContext
from .callpath import SignatureAccumulator
from .clustering import ClusterSet
from .config import ChameleonConfig
from .online import cluster_over_tree, merge_lead_traces


class AcurdionTracer(ScalaTraceTracer):
    """Cluster-at-finalize baseline tracer."""

    def __init__(
        self, ctx: RankContext, config: ChameleonConfig | None = None
    ) -> None:
        config = config or ChameleonConfig()
        super().__init__(
            ctx,
            costs=config.costs,
            window=config.window,
            tree_arity=config.tree_arity,
        )
        self.config = config
        self.sigacc = SignatureAccumulator()
        self.topk: ClusterSet | None = None
        self.clustering_time = 0.0
        self.intercompression_time = 0.0

    def _record(self, op: Op, **kw: Any) -> EventRecord | None:
        rec = super()._record(op, **kw)
        if rec is not None:
            self.sigacc.observe(rec.stack_sig, rec.src_offset, rec.dest_offset)
        return rec

    async def finalize(self) -> Trace | None:
        """Cluster once, merge the K lead traces, return trace on rank 0."""
        sigs = self.sigacc.snapshot()
        self.ctx.compute(
            self.costs.per_signature_event * max(self.sigacc.prsd_events, 1)
        )
        t0 = self.ctx.clock
        self.topk = await cluster_over_tree(self, sigs, self.config)
        self.clustering_time = self.ctx.clock - t0

        online = Trace(nprocs=self.nprocs) if self.rank == 0 else None
        t0 = self.ctx.clock
        merged = await merge_lead_traces(
            self, self.topk, online, self.config.window
        )
        self.intercompression_time = self.ctx.clock - t0
        if self.rank == 0 and merged is not None:
            merged.nprocs = self.nprocs
        return merged
