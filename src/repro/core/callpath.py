"""Per-marker-interval signatures: Call-Path, SRC, DEST.

Chameleon summarizes the MPI events a process executed between two marker
calls in three 64-bit signatures (paper §III):

* **Call-Path** — the XOR fold of the events' stack signatures, each scaled
  by ``(seq mod 10) + 1`` so permutations and recursion cannot cancel.
* **SRC/DEST** — overflow-safe averages of the hashed endpoint parameters.

The accumulator below is updated incrementally at event-record time (O(1)
per event), so the marker-time work is only the fold over PRSD-compressed
events the paper's O(n) bound describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scalatrace.signatures import EndpointSignatures

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class IntervalSignatures:
    """The (Call-Path, SRC, DEST) triple for one marker interval."""

    callpath: int
    src: int
    dest: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.callpath, self.src, self.dest)


@dataclass
class SignatureAccumulator:
    """Incremental builder of :class:`IntervalSignatures`.

    ``observe`` is called once per recorded MPI event; ``snapshot`` reads the
    current triple and ``reset`` starts the next interval.

    ``mode`` selects the Call-Path formula:

    * ``"sequence"`` — the paper's default: XOR over the full event sequence
      with the ``(seq mod 10) + 1`` multiplier.
    * ``"dedup"`` — the *automatic parameter filter* of Bahmani & Mueller
      [2] that the paper applies to POP: the Call-Path is computed over the
      ordered set of **distinct** call sites, making it invariant to
      data-dependent loop trip counts (POP's convergence iterations) while
      still detecting genuinely new phases.
    """

    mode: str = "sequence"
    _callpath: int = 0
    _seq: int = 0
    _endpoints: EndpointSignatures = field(default_factory=EndpointSignatures)
    events: int = 0
    distinct_sigs: set = field(default_factory=set)
    # Dedup-mode Call-Path, folded incrementally as each *new* distinct
    # call site arrives (its multiplier is fixed by arrival order, so the
    # fold never needs to be recomputed).  Snapshotting used to replay the
    # whole distinct-site list per marker — O(sites) work at every marker.
    _dedup_cp: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("sequence", "dedup"):
            raise ValueError(f"unknown signature mode {self.mode!r}")

    def observe(
        self,
        stack_sig: int,
        src_offset: int | None = None,
        dest_offset: int | None = None,
    ) -> None:
        self._callpath ^= ((self._seq % 10) + 1) * (stack_sig & _MASK64) & _MASK64
        self._seq += 1
        self.events += 1
        if stack_sig not in self.distinct_sigs:
            seq = len(self.distinct_sigs)
            self.distinct_sigs.add(stack_sig)
            self._dedup_cp ^= ((seq % 10) + 1) * (stack_sig & _MASK64) & _MASK64
        self._endpoints.observe(src_offset, dest_offset)

    def snapshot(self) -> IntervalSignatures:
        src, dest = self._endpoints.values()
        if self.mode == "dedup":
            return IntervalSignatures(callpath=self._dedup_cp, src=src, dest=dest)
        return IntervalSignatures(callpath=self._callpath, src=src, dest=dest)

    @property
    def prsd_events(self) -> int:
        """`n` for the marker-time cost charge: distinct call sites seen."""
        return len(self.distinct_sigs)

    def reset(self) -> None:
        self._callpath = 0
        self._seq = 0
        self.events = 0
        self.distinct_sigs.clear()
        self._dedup_cp = 0
        self._endpoints.reset()
