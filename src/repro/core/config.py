"""Chameleon configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scalatrace.costmodel import DEFAULT_COSTS, InstrumentationCostModel
from ..scalatrace.intra import DEFAULT_WINDOW

#: Clustering algorithm names accepted by :mod:`repro.core.clustering`.
CLUSTERING_ALGOS = ("kmedoids", "kfarthest", "krandom", "hierarchical")


@dataclass(frozen=True)
class ChameleonConfig:
    """Tunables of the online clustering framework.

    Attributes:
        k: target number of lead processes (paper Table I; grows dynamically
            if the number of distinct Call-Path clusters exceeds it).
        call_frequency: run the transition graph every Nth marker call
            (Algorithm 3's ``Call_Frequency`` input).
        algorithm: lead-selection method inside each Call-Path cluster.
        window: intra-compression repetition window.
        tree_arity: arity of the inter-compression radix tree.
        seed: RNG seed for the ``krandom`` selector.
        signature_filter: ``"sequence"`` (paper default) or ``"dedup"`` —
            the automatic parameter filter applied to POP (paper §V).
        costs: instrumentation cost model for virtual-time charging.
    """

    k: int = 9
    call_frequency: int = 1
    algorithm: str = "kfarthest"
    window: int = DEFAULT_WINDOW
    tree_arity: int = 2
    seed: int = 0x5EED
    signature_filter: str = "sequence"
    costs: InstrumentationCostModel = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.call_frequency < 1:
            raise ValueError("call_frequency must be >= 1")
        if self.algorithm not in CLUSTERING_ALGOS:
            raise ValueError(
                f"unknown clustering algorithm {self.algorithm!r}; "
                f"choose one of {CLUSTERING_ALGOS}"
            )
        if self.tree_arity < 2:
            raise ValueError("tree_arity must be >= 2")
        if self.signature_filter not in ("sequence", "dedup"):
            raise ValueError(
                f"unknown signature_filter {self.signature_filter!r}"
            )
