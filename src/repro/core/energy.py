"""Energy accounting for clustered tracing (the paper's future work).

The paper's conclusion proposes exploiting the idle time of the P − K
non-representative processes during marker-triggered tracing phases with
dynamic voltage/frequency scaling (DVFS): non-leads neither record events
nor participate in inter-compression, so their cores could drop to a low
power state while leads do the tracing work.

This module implements that proposal as an *accounting model* over the
simulator's virtual timelines:

* every rank's virtual time is split into **busy** (application compute +
  its own tracing work) and **slack** (waiting inside synchronizations for
  slower ranks — the time DVFS could harvest);
* a :class:`PowerModel` assigns wattages to the busy, idle and DVFS-scaled
  states;
* :func:`energy_report` compares three policies: the uninstrumented
  application, tracing without DVFS (slack burned at idle power), and
  tracing with DVFS on non-leads (slack at the scaled power).

The result is the paper's envisioned energy-saving estimate, computed from
the same runs the timing experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    """Per-core power states in watts.

    Defaults approximate the paper's AMD Opteron 6128 era hardware:
    ~115 W TDP over 8 cores ≈ 14 W busy per core, ~60% of that when
    spinning idle in an MPI wait, and ~4 W in a deep DVFS state.
    """

    busy_watts: float = 14.0
    idle_watts: float = 8.5
    dvfs_watts: float = 4.0

    def __post_init__(self) -> None:
        if not (0 <= self.dvfs_watts <= self.idle_watts <= self.busy_watts):
            raise ValueError(
                "expected 0 <= dvfs_watts <= idle_watts <= busy_watts"
            )


@dataclass(frozen=True)
class EnergyReport:
    """Joules under the three policies, for one run."""

    app_joules: float
    traced_joules: float  # tracing, slack at idle power
    traced_dvfs_joules: float  # tracing, non-lead slack at DVFS power

    @property
    def tracing_energy_overhead(self) -> float:
        """Extra energy of tracing vs the application (fraction)."""
        if self.app_joules == 0:
            return 0.0
        return (self.traced_joules - self.app_joules) / self.app_joules

    @property
    def dvfs_savings(self) -> float:
        """Energy saved by DVFS on non-leads vs plain tracing (fraction)."""
        if self.traced_joules == 0:
            return 0.0
        return (self.traced_joules - self.traced_dvfs_joules) / self.traced_joules


def rank_energy(
    busy: float, makespan: float, power: PowerModel, scaled: bool
) -> float:
    """Energy of one rank over the run: busy time at busy watts, the rest
    (waiting for the makespan) at idle or DVFS watts."""
    if busy > makespan + 1e-12:
        busy = makespan
    slack = max(makespan - busy, 0.0)
    slack_watts = power.dvfs_watts if scaled else power.idle_watts
    return busy * power.busy_watts + slack * slack_watts


def run_energy(
    busy_times: list[float],
    makespan: float,
    power: PowerModel,
    dvfs_ranks: set[int] | None = None,
) -> float:
    """Total energy of a run from per-rank busy times and the makespan.

    Every rank occupies its core for the whole makespan (job teardown is
    collective): ``busy`` seconds at busy watts, the rest waiting at idle
    watts — or DVFS watts for ranks in ``dvfs_ranks``.
    """
    if not busy_times:
        return 0.0
    dvfs_ranks = dvfs_ranks or set()
    return sum(
        rank_energy(busy, makespan, power, scaled=(rank in dvfs_ranks))
        for rank, busy in enumerate(busy_times)
    )


def energy_report(
    app_busy: list[float],
    app_makespan: float,
    traced_busy: list[float],
    traced_makespan: float,
    lead_ranks: set[int],
    power: PowerModel | None = None,
) -> EnergyReport:
    """Compare application / traced / traced+DVFS energy for one workload.

    ``lead_ranks`` are the ranks that remained tracing (cluster leads plus
    rank 0's online-trace duty); all other ranks' slack is assumed
    DVFS-scalable per the paper's proposal.
    """
    power = power or PowerModel()
    nprocs = len(traced_busy)
    non_leads = {r for r in range(nprocs) if r not in lead_ranks}
    return EnergyReport(
        app_joules=run_energy(app_busy, app_makespan, power),
        traced_joules=run_energy(traced_busy, traced_makespan, power),
        traced_dvfs_joules=run_energy(
            traced_busy, traced_makespan, power, dvfs_ranks=non_leads
        ),
    )
