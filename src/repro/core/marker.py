"""The Chameleon marker: a tagged MPI_Barrier at timestep boundaries.

The paper distinguishes marker barriers from application barriers by giving
the marker a unique communicator value.  In this reproduction the marker is
an explicit tracer hook — ``await tracer.marker()`` — inserted by workloads
at their progress-reporting points, mirroring the source-level marker
insertion the paper describes (§VII weakness (1): source modification is
required; binary instrumentation is future work).

``MARKER_COMM_ID`` is the magic communicator value a PMPI-based port would
use; it is recorded here so trace consumers can recognize marker events if a
workload chooses to trace them explicitly.
"""

from __future__ import annotations

from ..scalatrace.tracer import ScalaTraceTracer

#: magic communicator id reserved for marker barriers
MARKER_COMM_ID = 0x7FFFFFFF


async def chameleon_marker(tracer: ScalaTraceTracer) -> object | None:
    """Invoke the marker on any tracer (no-op for plain ScalaTrace)."""
    return await tracer.marker()
