"""Automatic marker insertion (paper §VII, weakness (2)).

The paper puts the burden of inserting the marker and picking its frequency
on the programmer, noting that "for iterative scientific applications ...
the main loop gets executed by all processes (and marker insertion can be
automated)".  This module implements that automation:

:class:`AutoMarkerTracer` watches the stream of *collective* operations —
which appear in the same order on every rank of an SPMD code — and looks
for a periodic **anchor**: a collective call site that recurs with a
constant number of collectives in between.  Once an anchor has repeated
``confirmations`` times at a stable period, every subsequent completion of
that call site triggers the Chameleon marker, exactly as if the programmer
had inserted it at the timestep boundary.

Detection uses only information that is identical on all ranks (collective
call sites and their positions in the collective sequence), so every rank
designates the same anchor at the same logical point and the collective
marker protocol stays aligned — no extra coordination needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simmpi.launcher import RankContext
from .chameleon import ChameleonTracer
from .config import ChameleonConfig


@dataclass
class _SiteHistory:
    """Occurrence positions of one collective call site."""

    positions: list[int] = field(default_factory=list)

    def record(self, position: int, keep: int = 8) -> None:
        self.positions.append(position)
        if len(self.positions) > keep:
            del self.positions[0]

    def stable_period(self, confirmations: int) -> int | None:
        """The constant gap between the last ``confirmations`` occurrences,
        or None if the site is not (yet) periodic."""
        if len(self.positions) < confirmations + 1:
            return None
        tail = self.positions[-(confirmations + 1):]
        gaps = [b - a for a, b in zip(tail, tail[1:])]
        if gaps and all(g == gaps[0] for g in gaps) and gaps[0] > 0:
            return gaps[0]
        return None


class AutoMarkerTracer(ChameleonTracer):
    """Chameleon without manual markers: the timestep boundary is inferred.

    ``confirmations`` controls how many stable repetitions a collective call
    site needs before being designated as the loop anchor; lower values
    react faster, higher values resist false anchors in irregular preludes.
    """

    def __init__(
        self,
        ctx: RankContext,
        config: ChameleonConfig | None = None,
        confirmations: int = 3,
    ) -> None:
        super().__init__(ctx, config)
        if confirmations < 2:
            raise ValueError("confirmations must be >= 2")
        self.confirmations = confirmations
        self._coll_position = 0
        self._histories: dict[int, _SiteHistory] = {}
        self.anchor_sig: int | None = None
        self.auto_markers = 0

    # Collectives appear in the same order on every rank; point-to-point
    # traffic is rank-local and is ignored by the detector.

    def _observe_collective(self, stack_sig: int) -> bool:
        """Track one collective completion; True if the marker should fire."""
        self._coll_position += 1
        if self.anchor_sig is not None:
            return stack_sig == self.anchor_sig
        hist = self._histories.setdefault(stack_sig, _SiteHistory())
        hist.record(self._coll_position)
        if hist.stable_period(self.confirmations) is not None:
            self.anchor_sig = stack_sig
            return True
        return False

    async def _maybe_auto_marker(self, stack_sig: int | None) -> None:
        if stack_sig is None:
            return
        if self._observe_collective(stack_sig):
            self.auto_markers += 1
            await super().marker()

    async def marker(self):  # noqa: D102 - manual markers become no-ops
        return None

    # -- traced collective wrappers: fire the detector after completion ----

    async def barrier(self) -> None:
        sig = self._peek_sig()
        await super().barrier()
        await self._maybe_auto_marker(sig)

    async def allreduce(self, value, op=None, size=None):
        sig = self._peek_sig()
        out = await super().allreduce(value, op=op, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def bcast(self, value, root=0, size=None):
        sig = self._peek_sig()
        out = await super().bcast(value, root=root, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def reduce(self, value, op=None, root=0, size=None):
        sig = self._peek_sig()
        out = await super().reduce(value, op=op, root=root, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def allgather(self, value, size=None):
        sig = self._peek_sig()
        out = await super().allgather(value, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def gather(self, value, root=0, size=None):
        sig = self._peek_sig()
        out = await super().gather(value, root=root, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def alltoall(self, values, size=None):
        sig = self._peek_sig()
        out = await super().alltoall(values, size=size)
        await self._maybe_auto_marker(sig)
        return out

    async def scatter(self, values, root=0, size=None):
        sig = self._peek_sig()
        out = await super().scatter(values, root=root, size=size)
        await self._maybe_auto_marker(sig)
        return out

    def _peek_sig(self) -> int:
        """The stack signature this collective call site will record.

        Captured with the same walker the recorder uses (the wrapper frames
        live in skipped modules, so both observe identical frames).
        """
        sig, _frames = self.walker.capture(self.ctx.task.logical_stack)
        return sig
