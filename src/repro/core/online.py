"""Online inter-compression: Algorithm 3's tree procedures.

Two collective phases run at a clustering/flush marker:

* :func:`cluster_over_tree` — every rank contributes its signature triple;
  cluster maps are merged up the radix tree (pruned to at most ``2K + 1``
  entries per node), the root selects the Top-K clusters and broadcasts
  them.
* :func:`merge_lead_traces` — each Top-K lead replaces its events'
  ranklists with its *cluster's* ranklist, the K leads reduce their traces
  over a radix tree restricted to the leads (``O(n^2 log K)``), the Top-K
  root ships the partial global trace to rank 0, and rank 0 folds it into
  the incrementally grown *online trace*.

Both functions use the raw communicator (tracer-internal traffic is never
recorded) and charge measured work to virtual time through the tracer's
meter and cost model.
"""

from __future__ import annotations

from ..faults.injector import LOST
from ..scalatrace.intra import fold_tail
from ..scalatrace.inter import merge_traces
from ..scalatrace.ranklist import RankSet
from ..scalatrace.rsd import TraceNode, iter_leaves
from ..scalatrace.trace import Trace
from ..scalatrace.tracer import ScalaTraceTracer
from ..simmpi.comm import MAX_USER_TAG
from ..simmpi.topology import RadixTree
from .callpath import IntervalSignatures
from .clustering import ClusterSet
from .config import ChameleonConfig

#: reserved tag for cluster-map reduction traffic (above MAX_USER_TAG:
#: invisible to application wildcard receives)
CLUSTER_TAG = MAX_USER_TAG + 2
#: reserved tag for shipping the partial global trace to rank 0
ONLINE_TAG = MAX_USER_TAG + 3


async def cluster_over_tree(
    tracer: ScalaTraceTracer,
    sigs: IntervalSignatures,
    config: ChameleonConfig,
    failed: frozenset[int] = frozenset(),
) -> ClusterSet:
    """Algorithm 3 lines 7–24: cluster signatures over the radix tree.

    Returns the broadcast Top-K :class:`ClusterSet` (identical on all ranks).

    ``failed`` (the tracer's per-marker failure snapshot) restricts the
    reduction tree to surviving ranks so a dead interior node cannot bury
    its whole subtree's contributions; contributions lost in transit
    (drops, mid-collective crashes) still arrive as LOST holes and are
    skipped.
    """
    comm = tracer.comm
    rank, size = comm.rank, comm.size
    meter = tracer.meter
    if failed:
        alive = [r for r in range(size) if r not in failed]
        tree = RadixTree(alive, arity=config.tree_arity)
    else:
        tree = RadixTree(size, arity=config.tree_arity)

    local = ClusterSet.local(sigs.as_tuple(), rank)
    for child in reversed(tree.children(rank)):
        child_set: ClusterSet = await comm.recv(child, tag=CLUSTER_TAG)
        if child_set is LOST:
            continue  # fault hole: that subtree's clusters are gone
        work0 = meter.total
        local.merge(child_set, meter)
        # prune only when over the per-node budget (paper: <= 2K + 1 items)
        if len(local) > 2 * config.k + 1:
            local.prune(config.k, config.algorithm, meter, config.seed)
        tracer.ctx.compute(
            (meter.total - work0) * tracer.costs.per_cluster_op
        )
    parent = tree.parent(rank)
    if parent is not None:
        await comm.send(parent, local, tag=CLUSTER_TAG, size=local.size_bytes())
        topk: ClusterSet | None = None
    else:
        work0 = meter.total
        local.prune(config.k, config.algorithm, meter, config.seed)
        tracer.ctx.compute((meter.total - work0) * tracer.costs.per_cluster_op)
        topk = local
    topk = await comm.bcast(topk, root=0)
    if topk is None or topk is LOST:
        # Cut off from the broadcast result (only reachable through fault
        # holes): fall back to a self-cluster so this rank keeps tracing
        # its own behaviour rather than trusting a lead it cannot see.
        return ClusterSet.local(sigs.as_tuple(), rank)
    return topk


def replace_participants(
    nodes: list[TraceNode],
    members: RankSet,
    src_homogeneous: bool = True,
    dest_homogeneous: bool = True,
) -> None:
    """A lead substitutes its cluster's ranklist into its collected events
    (Algorithm 3, highlighted step (4)).

    When the cluster absorbed processes with *different* endpoint signatures
    (a heterogeneous cluster, e.g. all workers of a master-worker code), the
    lead's relative offsets do not generalize to the other members; the
    absolute encoding — when one survived — is the meaningful one, so the
    relative candidate is dropped before replay can transpose it.
    """
    for leaf in iter_leaves(nodes):
        rec = leaf.record
        rec.participants = RankSet(members.ranks())
        if not src_homogeneous and rec.src is not None and rec.src.abs_ is not None:
            rec.src.rel = None
            rec.src.pattern = None
        if (
            not dest_homogeneous
            and rec.dest is not None
            and rec.dest.abs_ is not None
        ):
            rec.dest.rel = None
            rec.dest.pattern = None


async def merge_lead_traces(
    tracer: ScalaTraceTracer,
    topk: ClusterSet,
    online: Trace | None,
    window: int,
) -> Trace | None:
    """Algorithm 3 lines 25–47: merge the Top-K lead traces into the online
    trace at rank 0.

    Every rank participates in the call; non-leads simply delete their
    partial traces (done by the caller).  Returns the updated online trace
    on rank 0, ``None`` elsewhere.
    """
    comm = tracer.comm
    rank = comm.rank
    meter = tracer.meter
    leads = topk.leads()

    partial: Trace | None = None
    if rank in leads:
        my_cluster = topk.find_cluster_of(rank)
        assert my_cluster is not None
        nodes = tracer.compressor.take_nodes()
        replace_participants(
            nodes,
            my_cluster.members,
            my_cluster.src_homogeneous,
            my_cluster.dest_homogeneous,
        )
        local = Trace(
            nodes=nodes,
            origin=RankSet(my_cluster.members.ranks()),
            nprocs=comm.size,
        )
        partial = await tracer.merge_over_tree(local, members=leads)

    # The Top-K tree root ships the partial global trace to rank 0.
    topk_root = leads[0]
    if topk_root != 0:
        if rank == topk_root:
            assert partial is not None
            await comm.send(
                0, partial, tag=ONLINE_TAG, size=partial.size_bytes()
            )
            partial = None
        elif rank == 0:
            partial = await comm.recv(topk_root, tag=ONLINE_TAG)
            if partial is LOST:
                partial = None  # fault hole: this interval's merge is gone

    if rank == 0:
        assert online is not None
        if partial is not None and partial.nodes:
            work0 = meter.total
            online.nodes.extend(partial.nodes)
            fold_tail(online.nodes, window, meter, match_participants=True)
            online.origin = online.origin.union(partial.origin)
            tracer.ctx.compute(
                (meter.total - work0) * tracer.costs.per_merge_cell
            )
        return online
    return None


async def merge_full_traces(tracer: ScalaTraceTracer) -> Trace | None:
    """Plain ScalaTrace finalize (all P ranks participate) — kept here for
    symmetry so baselines share the entry point."""
    return await tracer.finalize()
