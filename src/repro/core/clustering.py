"""Signature-space clustering: grouping processes and electing leads.

Processes with identical ``(Call-Path, SRC, DEST)`` signature triples form a
*cluster* (the hashmap ``<signature, ranklist>`` of the paper's Algorithm 3).
Cluster sets are merged up the radix tree; when a node holds more clusters
than the budget allows it prunes them with *Find Top K* (Algorithm 2):

1. clusters are grouped by Call-Path signature — every Call-Path group keeps
   at least one representative (Chameleon never drops an MPI event);
2. within each group, ``K / num_callpaths`` clusters are selected by
   K-Farthest / K-Medoids / K-Random over the (SRC, DEST) distance;
3. every non-selected cluster is merged into the closest selected one, so
   the union of ranklists always covers all P ranks;
4. K grows dynamically if there are more Call-Path groups than K.

All distance evaluations are counted in a
:class:`~repro.scalatrace.rsd.WorkMeter` for virtual-time charging; per the
paper each tree node handles at most ``2K + 1`` items so the clustering work
per marker is ``O(K^3 log P)`` — constant in P for fixed K up to the tree
depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..scalatrace.ranklist import RankSet
from ..scalatrace.rsd import WorkMeter

SigTriple = tuple[int, int, int]  # (callpath, src, dest)


@dataclass
class ClusterInfo:
    """One cluster: a signature triple, its member ranks, and its lead.

    ``src_homogeneous`` / ``dest_homogeneous`` record whether every absorbed
    cluster shared the same SRC/DEST signature.  A heterogeneous cluster's
    members used *different relative endpoint offsets* (e.g. every worker
    sending to the absolute master rank), so when the lead's trace stands in
    for the whole cluster the replay must not transpose the lead's relative
    encoding — the absolute encoding is the one that generalizes.
    """

    signature: SigTriple
    members: RankSet
    lead: int
    src_homogeneous: bool = True
    dest_homogeneous: bool = True

    @property
    def callpath(self) -> int:
        return self.signature[0]

    def absorb(self, other: "ClusterInfo") -> None:
        """Merge another cluster's members (keeps this cluster's signature;
        losers inherit the winner's representative, paper Alg. 2 line 8)."""
        if other.signature[1] != self.signature[1] or not other.src_homogeneous:
            self.src_homogeneous = False
        if other.signature[2] != self.signature[2] or not other.dest_homogeneous:
            self.dest_homogeneous = False
        self.members = self.members.union(other.members)
        self.lead = min(self.lead, other.lead)

    def size_bytes(self) -> int:
        return 8 * 4 + self.members.size_bytes()  # 3 sigs + lead + ranklist

    def copy(self) -> "ClusterInfo":
        return ClusterInfo(self.signature, RankSet(self.members.ranks()), self.lead)


def distance(a: ClusterInfo, b: ClusterInfo, meter: WorkMeter | None = None) -> float:
    """Signature-space distance on the (SRC, DEST) coordinates."""
    if meter is not None:
        meter.comparisons += 1
    return float(abs(a.signature[1] - b.signature[1])) + float(
        abs(a.signature[2] - b.signature[2])
    )


def _sort_key(c: ClusterInfo):
    # Deterministic ordering: biggest clusters first, ties by lead rank.
    return (-c.members.count, c.lead)


def k_farthest(
    clusters: list[ClusterInfo], k: int, meter: WorkMeter | None = None
) -> list[ClusterInfo]:
    """Maximin selection: greedily add the cluster farthest from the set."""
    if k >= len(clusters):
        return list(clusters)
    pool = sorted(clusters, key=_sort_key)
    selected = [pool.pop(0)]
    while len(selected) < k and pool:
        best_i, best_d = 0, -1.0
        for i, cand in enumerate(pool):
            d = min(distance(cand, s, meter) for s in selected)
            if d > best_d:
                best_i, best_d = i, d
        selected.append(pool.pop(best_i))
    return selected


def k_medoids(
    clusters: list[ClusterInfo],
    k: int,
    meter: WorkMeter | None = None,
    max_rounds: int = 10,
) -> list[ClusterInfo]:
    """PAM-style medoid selection (the paper's small-input K-Medoids:
    each tree node sees at most 2K+1 items, so O(K^3) per call)."""
    if k >= len(clusters):
        return list(clusters)
    pool = sorted(clusters, key=_sort_key)
    medoids = pool[:k]
    for _round in range(max_rounds):
        # assign
        groups: dict[int, list[ClusterInfo]] = {i: [] for i in range(k)}
        for c in pool:
            best = min(range(k), key=lambda i: distance(c, medoids[i], meter))
            groups[best].append(c)
        # update: the member minimizing total intra-group distance
        new_medoids = []
        for i in range(k):
            group = groups[i] or [medoids[i]]
            best = min(
                group,
                key=lambda cand: (
                    sum(distance(cand, o, meter) for o in group),
                    cand.lead,
                ),
            )
            new_medoids.append(best)
        if [m.lead for m in new_medoids] == [m.lead for m in medoids]:
            break
        medoids = new_medoids
    return medoids


def k_random(
    clusters: list[ClusterInfo], k: int, seed: int, meter: WorkMeter | None = None
) -> list[ClusterInfo]:
    """Seeded random selection (baseline from the predecessor papers)."""
    if k >= len(clusters):
        return list(clusters)
    pool = sorted(clusters, key=_sort_key)
    rng = random.Random(seed)
    if meter is not None:
        meter.comparisons += len(pool)
    return rng.sample(pool, k)


def hierarchical(
    clusters: list[ClusterInfo], k: int, meter: WorkMeter | None = None
) -> list[ClusterInfo]:
    """Agglomerative (multi-level hierarchical) selection.

    The predecessor papers [1-3] also used multi-level hierarchical
    clustering: greedily merge the two closest groups until ``k`` remain;
    the representative of each surviving group is its largest member.

    A signature-bucketing pre-pass collapses zero-distance coordinate
    classes up front (provably the prefix of the greedy trajectory when at
    least ``k`` classes exist), and each group carries one representative
    per absorbed class, so the per-round distance work is quadratic in the
    number of *distinct* (SRC, DEST) classes rather than in the item count.
    """
    if k >= len(clusters):
        return list(clusters)
    ordered = sorted(clusters, key=_sort_key)

    # Signature-bucketing pre-pass: items sharing (SRC, DEST) coordinates
    # are at distance zero, and greedy single linkage always exhausts the
    # zero-distance merges before any positive-distance one, collapsing
    # each coordinate class into its first occurrence.  When at least k
    # classes exist that collapse is exactly the prefix of the quadratic
    # trajectory, so we skip straight past it and merge whole buckets —
    # the surviving partition (and hence the output) is identical while
    # distance work drops from O(n^2) per merge round to O(buckets^2).
    buckets: dict[tuple[int, int], list[ClusterInfo]] = {}
    for c in ordered:
        buckets.setdefault((c.signature[1], c.signature[2]), []).append(c)
    if len(buckets) >= k:
        groups: list[list[ClusterInfo]] = list(buckets.values())
    else:
        # Fewer classes than k: the old trajectory stops before finishing
        # the zero-distance merges, so collapsing buckets would over-merge.
        groups = [[c] for c in ordered]
    # One representative per absorbed coordinate class: single linkage only
    # depends on the distinct coordinates present in each group, so the
    # distance work per pair is O(classes), not O(members).
    reps: list[list[ClusterInfo]] = [[g[0]] for g in groups]

    def group_distance(a: list[ClusterInfo], b: list[ClusterInfo]) -> float:
        # single linkage over the signature-space distance
        return min(distance(x, y, meter) for x in a for y in b)

    while len(groups) > k:
        best = (0, 1)
        best_d = float("inf")
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                d = group_distance(reps[i], reps[j])
                if d < best_d:
                    best_d = d
                    best = (i, j)
        i, j = best
        groups[i].extend(groups.pop(j))
        reps[i].extend(reps.pop(j))
    out = []
    for group in groups:
        head = min(group, key=_sort_key)
        for other in group:
            if other is not head:
                head.absorb(other)
                if meter is not None:
                    meter.merges += 1
        out.append(head)
    return out


_SELECTORS = {
    "kfarthest": lambda cl, k, meter, seed: k_farthest(cl, k, meter),
    "kmedoids": lambda cl, k, meter, seed: k_medoids(cl, k, meter),
    "krandom": lambda cl, k, meter, seed: k_random(cl, k, seed, meter),
    "hierarchical": lambda cl, k, meter, seed: hierarchical(cl, k, meter),
}


def find_top_k(
    clusters: list[ClusterInfo],
    k: int,
    algorithm: str = "kfarthest",
    meter: WorkMeter | None = None,
    seed: int = 0,
) -> list[ClusterInfo]:
    """Algorithm 2: select ``k`` representatives and absorb the rest.

    Returns the selected clusters (copies are not made: the inputs' member
    sets are folded into the winners).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    try:
        selector = _SELECTORS[algorithm]
    except KeyError:
        raise ValueError(f"unknown clustering algorithm {algorithm!r}") from None
    selected = selector(clusters, k, meter, seed)
    chosen = {id(c) for c in selected}
    for c in clusters:
        if id(c) in chosen:
            continue
        closest = min(selected, key=lambda s: (distance(c, s, meter), s.lead))
        closest.absorb(c)
        if meter is not None:
            meter.merges += 1
    return selected


class ClusterSet:
    """The hashmap ``<signature triple, ranklist>`` reduced up the tree."""

    def __init__(self) -> None:
        self.clusters: dict[SigTriple, ClusterInfo] = {}

    @classmethod
    def local(cls, signature: SigTriple, rank: int) -> "ClusterSet":
        cs = cls()
        cs.clusters[signature] = ClusterInfo(signature, RankSet.single(rank), rank)
        return cs

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def num_callpaths(self) -> int:
        return len({sig[0] for sig in self.clusters})

    def merge(self, other: "ClusterSet", meter: WorkMeter | None = None) -> None:
        """Union two cluster maps: identical triples coalesce."""
        for sig, info in other.clusters.items():
            mine = self.clusters.get(sig)
            if mine is None:
                self.clusters[sig] = info
            else:
                mine.absorb(info)
            if meter is not None:
                meter.merges += 1

    def prune(
        self,
        k: int,
        algorithm: str = "kfarthest",
        meter: WorkMeter | None = None,
        seed: int = 0,
    ) -> None:
        """Reduce to at most ``max(k, num_callpaths)`` clusters, keeping at
        least one per Call-Path group (dynamic-K rule)."""
        groups: dict[int, list[ClusterInfo]] = {}
        for info in self.clusters.values():
            groups.setdefault(info.callpath, []).append(info)
        num_cp = len(groups)
        per_group = max(1, k // num_cp)
        kept: list[ClusterInfo] = []
        for cp in sorted(groups):
            kept.extend(
                find_top_k(
                    sorted(groups[cp], key=_sort_key),
                    per_group,
                    algorithm,
                    meter,
                    seed ^ cp,
                )
            )
        self.clusters = {c.signature: c for c in kept}

    def all_clusters(self) -> list[ClusterInfo]:
        """Deterministic order: by (callpath, src, dest) signature."""
        return [self.clusters[sig] for sig in sorted(self.clusters)]

    def leads(self) -> list[int]:
        return sorted(c.lead for c in self.all_clusters())

    def covered_ranks(self) -> tuple[int, ...]:
        out: set[int] = set()
        for c in self.clusters.values():
            out.update(c.members.ranks())
        return tuple(sorted(out))

    def size_bytes(self) -> int:
        return sum(c.size_bytes() for c in self.clusters.values())

    def nbytes_hint(self) -> int:
        """Lets the simulator size messages carrying cluster maps."""
        return self.size_bytes()

    def find_cluster_of(self, rank: int) -> ClusterInfo | None:
        for c in self.all_clusters():
            if rank in c.members:
                return c
        return None

    def reelect(self, failed: "set[int] | frozenset[int]") -> tuple[
        dict[int, int], list[SigTriple]
    ]:
        """Repair the cluster map after rank failures.

        Failed ranks are dropped from every member list; a cluster whose
        lead died elects the lowest surviving member — justified because
        cluster members are signature-equivalent, so any member's trace
        stands in for the group.  Returns ``(replacements, collapsed)``:
        the ``old_lead -> new_lead`` map and the signatures of clusters
        with no survivors (removed; their behaviour is unrecoverable and
        the tracer should fall back to full tracing).

        Deterministic: iteration is in signature order and elections take
        the minimum rank, so every rank computing this from the same
        failed set repairs its copy identically.
        """
        replacements: dict[int, int] = {}
        collapsed: list[SigTriple] = []
        for sig in sorted(self.clusters):
            info = self.clusters[sig]
            survivors = [r for r in info.members.ranks() if r not in failed]
            if not survivors:
                collapsed.append(sig)
                continue
            if len(survivors) != info.members.count:
                info.members = RankSet(survivors)
            if info.lead in failed:
                new_lead = min(survivors)
                replacements[info.lead] = new_lead
                info.lead = new_lead
        for sig in collapsed:
            del self.clusters[sig]
        return replacements, collapsed
