"""repro.core — Chameleon: online clustering of MPI program traces.

The paper's primary contribution: interval signatures (:mod:`callpath`),
the AT/C/L/F transition graph (:mod:`phase`), signature clustering with
lead election (:mod:`clustering`), the online inter-compression over the
lead radix tree (:mod:`online`), the orchestrating tracer
(:mod:`chameleon`) and the ACURDION cluster-at-finalize baseline
(:mod:`acurdion`).
"""

from .acurdion import AcurdionTracer
from .automarker import AutoMarkerTracer
from .callpath import IntervalSignatures, SignatureAccumulator
from .chameleon import ChameleonStats, ChameleonTracer
from .clustering import (
    ClusterInfo,
    ClusterSet,
    distance,
    find_top_k,
    hierarchical,
    k_farthest,
    k_medoids,
    k_random,
)
from .config import CLUSTERING_ALGOS, ChameleonConfig
from .energy import EnergyReport, PowerModel, energy_report, rank_energy, run_energy
from .marker import MARKER_COMM_ID, chameleon_marker
from .online import (
    CLUSTER_TAG,
    ONLINE_TAG,
    cluster_over_tree,
    merge_lead_traces,
    replace_participants,
)
from .phase import MarkerDecision, MarkerState, PhaseTracker

__all__ = [
    "AcurdionTracer",
    "AutoMarkerTracer",
    "CLUSTERING_ALGOS",
    "CLUSTER_TAG",
    "ChameleonConfig",
    "ChameleonStats",
    "ChameleonTracer",
    "ClusterInfo",
    "ClusterSet",
    "EnergyReport",
    "IntervalSignatures",
    "MARKER_COMM_ID",
    "MarkerDecision",
    "MarkerState",
    "ONLINE_TAG",
    "PhaseTracker",
    "PowerModel",
    "SignatureAccumulator",
    "chameleon_marker",
    "cluster_over_tree",
    "distance",
    "energy_report",
    "find_top_k",
    "hierarchical",
    "k_farthest",
    "k_medoids",
    "k_random",
    "merge_lead_traces",
    "rank_energy",
    "replace_participants",
    "run_energy",
]
