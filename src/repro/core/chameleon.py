"""The Chameleon tracer: online clustering + incremental global trace.

:class:`ChameleonTracer` extends the ScalaTrace interposition layer with the
paper's marker machinery:

* every recorded event also feeds a :class:`SignatureAccumulator` (O(1));
* at each *effective* marker call (every ``call_frequency``-th invocation)
  Algorithm 1 votes on Call-Path stability and the transition graph decides
  between AT / C / L;
* in state **C** the ranks cluster over the radix tree, the Top-K leads are
  broadcast, non-leads *turn tracing off* (signature tracking stays on so
  they can still vote on phase changes);
* whenever a merge is due (state C, an L flush, or finalize) the K lead
  traces are reduced over a K-member radix tree and folded into the *online
  trace* held by rank 0, after which **all** ranks delete their partial
  intra-node traces;
* ``finalize`` forces one last cluster + merge and returns the completed
  online trace on rank 0 — the incremental equivalent of ScalaTrace's
  ``MPI_Finalize`` output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..faults.injector import LOST
from ..scalatrace.events import EventRecord, Op
from ..scalatrace.intra import fold_tail
from ..scalatrace.ranklist import RankSet
from ..scalatrace.trace import Trace
from ..scalatrace.tracer import ScalaTraceTracer
from ..simmpi.launcher import RankContext
from .callpath import SignatureAccumulator
from .clustering import ClusterSet
from .config import ChameleonConfig
from .online import cluster_over_tree, merge_lead_traces
from .phase import MarkerDecision, MarkerState, PhaseTracker


@dataclass
class ChameleonStats:
    """Per-rank counters for the paper's evaluation tables/figures."""

    marker_invocations: int = 0  # raw marker() calls (timesteps)
    effective_calls: int = 0  # calls surviving the Call_Frequency gate
    state_counts: Counter = field(default_factory=Counter)  # AT/C/L per call
    reclusterings: int = 0
    signature_time: float = 0.0
    vote_time: float = 0.0
    clustering_time: float = 0.0
    intercompression_time: float = 0.0
    #: (state, bytes currently allocated) sampled at each effective call
    space_samples: list[tuple[str, int]] = field(default_factory=list)
    k_used: int = 0
    num_callpaths: int = 0


class ChameleonTracer(ScalaTraceTracer):
    """Online signature-clustering tracer (the paper's contribution)."""

    def __init__(
        self, ctx: RankContext, config: ChameleonConfig | None = None
    ) -> None:
        config = config or ChameleonConfig()
        super().__init__(
            ctx,
            costs=config.costs,
            window=config.window,
            tree_arity=config.tree_arity,
        )
        self.config = config
        self.phase = PhaseTracker()
        self.sigacc = SignatureAccumulator(mode=config.signature_filter)
        # Signatures accumulated since the last *merge* (not the last
        # marker): finalize clusters on these so the clustering reflects
        # the trace content actually being merged — clustering on a nearly
        # empty final marker interval would collapse all ranks into one
        # cluster and replay a single rank's behaviour everywhere.
        self.mergeacc = SignatureAccumulator(mode=config.signature_filter)
        #: building trace structures (False on non-leads during lead phase)
        self.tracing = True
        self.topk: ClusterSet | None = None
        self.my_cluster_members: RankSet = RankSet.single(self.rank)
        self.online: Trace | None = (
            Trace(nprocs=self.nprocs) if self.rank == 0 else None
        )
        self.cstats = ChameleonStats()
        #: fault-degraded mode: clustering collapsed (or rank 0 died), so
        #: every survivor falls back to full ScalaTrace-style tracing
        self.degraded = False
        # Last marker state seen by the observability bus, for emitting
        # state-*transition* instants (cat "state") rather than one instant
        # per marker.
        self._obs_state: str | None = None

    # -- recording override --------------------------------------------------

    def _record(self, op: Op, **kw: Any) -> EventRecord | None:
        if self.tracing:
            rec = super()._record(op, **kw)
            if rec is not None:
                self.sigacc.observe(rec.stack_sig, rec.src_offset, rec.dest_offset)
                self.mergeacc.observe(
                    rec.stack_sig, rec.src_offset, rec.dest_offset
                )
            return rec
        # Lead phase, non-lead: no trace is built (zero allocation), but the
        # signatures must keep flowing so this rank can vote on phase
        # changes (paper Fig. 2).
        self.stats.events_skipped += 1
        sig, _frames = self.walker.capture(self.ctx.task.logical_stack)
        src = kw.get("src")
        dest = kw.get("dest")
        src_off = None if src is None else src - self.rank
        dest_off = None if dest is None else dest - self.rank
        self.sigacc.observe(sig, src_off, dest_off)
        self.mergeacc.observe(sig, src_off, dest_off)
        self.ctx.compute(self.costs.per_signature_event)
        return None

    # -- fault tolerance -----------------------------------------------------

    def _fault_epoch(self, key: Any) -> frozenset[int]:
        """Epoch-consistent failure snapshot for one marker round.

        Ranks reach marker #n at different scheduler moments, so reading
        the engine's failed set directly would let two ranks see different
        failure sets for the *same* round and silently diverge (different
        alive trees, different branches).  Instead the first rank to enter
        the round freezes the set onto the shared communicator context and
        every later rank reads that frozen copy — the simulation's stand-in
        for a ULFM-style agreement protocol.  Ranks dying *after* the
        snapshot surface as missing votes / LOST holes and are absorbed by
        the vote quorum.
        """
        epochs = self.comm.context.__dict__.setdefault("fault_epochs", {})
        snap = epochs.get(key)
        if snap is None:
            snap = frozenset(self.comm.engine.failed_ranks)
            epochs[key] = snap
        return snap

    def _ft_check(self, failed: frozenset[int]) -> None:
        """React to the round's failure snapshot: repair the cluster map
        (lead re-election) and decide whether to drop into degraded mode.

        Re-election is sound because cluster members are
        signature-equivalent — any surviving member's trace stands in for
        the group.  Degraded mode (everyone back to full tracing until
        finalize) is entered when the online protocol can no longer
        represent every rank: rank 0 — the online-trace holder — died, or a
        whole cluster died with no survivor to re-elect.
        """
        if self.degraded or not failed:
            return
        obs = self.obs
        collapsed: list = []
        if self.topk is not None:
            # reelect() is idempotent and deterministic, and the broadcast
            # ClusterSet may be object-shared across ranks in-simulation —
            # so every decision below reads the *repaired map*, never this
            # call's replacements (another rank may have repaired it first).
            replacements, collapsed = self.topk.reelect(failed)
            mine = self.topk.find_cluster_of(self.rank)
            if mine is not None:
                self.my_cluster_members = mine.members
                if mine.lead == self.rank and not self.tracing:
                    # Elected as replacement lead: this rank's trace now
                    # stands in for the cluster, so start recording.
                    self.tracing = True
                    if obs.enabled:
                        obs.instant(
                            self.rank, "lead_reelection", "fault",
                            self.ctx.clock,
                            {"is_new_lead": True,
                             "cluster": list(mine.members.ranks()),
                             "failed": sorted(failed)},
                        )
                        obs.metrics.count("fault/lead_reelections", 1,
                                          rank=self.rank, t=self.ctx.clock)
            if replacements and obs.enabled:
                obs.instant(
                    self.rank, "lead_reelection", "fault", self.ctx.clock,
                    {"replacements": {str(k): v
                                      for k, v in replacements.items()},
                     "is_new_lead": False,
                     "failed": sorted(failed)},
                )
        if 0 in failed or collapsed:
            self.degraded = True
            self.tracing = True
            if obs.enabled:
                obs.instant(
                    self.rank, "degraded_mode", "fault", self.ctx.clock,
                    {"reason": ("rank0_failed" if 0 in failed
                                else "cluster_collapsed"),
                     "collapsed": [list(sig) for sig in collapsed],
                     "failed": sorted(failed)},
                )
                obs.metrics.count("fault/degraded_entries", 1,
                                  rank=self.rank, t=self.ctx.clock)

    # -- the marker (Algorithm 3) ----------------------------------------------

    async def marker(self) -> MarkerDecision | None:
        """Called at every timestep boundary; returns the decision taken at
        effective calls, None when gated off by ``call_frequency``."""
        self.cstats.marker_invocations += 1
        self.ctx.compute(self.costs.per_marker_call)
        if self.cstats.marker_invocations % self.config.call_frequency != 0:
            return None
        self.cstats.effective_calls += 1

        obs = self.obs

        # (0) fault tolerance: take this round's failure snapshot, repair
        # the cluster map, and short-circuit when already degraded.
        failed: frozenset[int] = frozenset()
        if self.comm.engine.faults.active:
            failed = self._fault_epoch(self.cstats.effective_calls)
            self._ft_check(failed)
            if self.degraded:
                # Degraded mode: no vote, no clustering, no merging — every
                # survivor keeps full-tracing (counted as AT) and finalize
                # merges the complete traces over the alive ranks.
                decision = MarkerDecision(MarkerState.AT)
                self.cstats.state_counts[decision.state.value] += 1
                self._sample_space(
                    decision.state.value,
                    self.compressor.size_bytes() if self.tracing else 0,
                )
                self.sigacc.reset()
                return decision

        # (1) interval signatures — O(n) over PRSD events
        t0 = self.ctx.clock
        sigs = self.sigacc.snapshot()
        self.ctx.compute(
            self.costs.per_signature_event * max(self.sigacc.prsd_events, 1)
        )
        self.cstats.signature_time += self.ctx.clock - t0
        if obs.enabled:
            obs.span(self.rank, "signature", "chameleon", t0, self.ctx.clock,
                     {"prsd_events": self.sigacc.prsd_events})
            obs.metrics.count("marker/signature_time",
                              self.ctx.clock - t0, rank=self.rank,
                              t=self.ctx.clock)

        # (2) Algorithm 1: collective vote + transition graph
        t0 = self.ctx.clock
        decision = await self.phase.decide(self.comm, sigs.callpath, failed)
        self.cstats.vote_time += self.ctx.clock - t0
        self.cstats.state_counts[decision.state.value] += 1
        if obs.enabled:
            state = decision.state.value
            obs.span(self.rank, "vote", "chameleon", t0, self.ctx.clock,
                     {"round": self.phase.votes, "state": state,
                      "phase_changed": decision.phase_changed})
            obs.instant(
                self.rank, "marker", "chameleon", self.ctx.clock,
                {"state": state, "call": self.cstats.effective_calls,
                 "cluster": decision.do_cluster, "merge": decision.do_merge},
            )
            obs.metrics.count("marker/effective_calls", 1, rank=self.rank,
                              phase=state, t=self.ctx.clock)
            obs.metrics.count("marker/vote_time", self.ctx.clock - t0,
                              rank=self.rank, phase=state, t=self.ctx.clock)
            if state != self._obs_state:
                obs.instant(
                    self.rank, "state_transition", "state", self.ctx.clock,
                    {"from": self._obs_state or "start", "to": state},
                )
                obs.metrics.count("marker/state_transitions", 1,
                                  rank=self.rank, phase=state,
                                  t=self.ctx.clock)
                self._obs_state = state

        # Memory accounting snapshot (Table IV): the space this marker's
        # state required is what was allocated when the marker fired —
        # before any flush deletes the partial traces.
        intra_bytes_pre = self.compressor.size_bytes() if self.tracing else 0

        # (3) clustering (state C)
        if decision.do_cluster:
            t0 = self.ctx.clock
            self.topk = await cluster_over_tree(self, sigs, self.config,
                                                failed)
            self.cstats.clustering_time += self.ctx.clock - t0
            self.cstats.reclusterings += 1
            self.cstats.k_used = max(self.cstats.k_used, len(self.topk))
            self.cstats.num_callpaths = max(
                self.cstats.num_callpaths, self.topk.num_callpaths
            )
            mine = self.topk.find_cluster_of(self.rank)
            if mine is not None:
                self.my_cluster_members = mine.members
            if obs.enabled:
                obs.span(
                    self.rank, "clustering", "chameleon", t0, self.ctx.clock,
                    {"k": len(self.topk),
                     "callpaths": self.topk.num_callpaths},
                )
                obs.metrics.count("marker/clustering_time",
                                  self.ctx.clock - t0, rank=self.rank,
                                  t=self.ctx.clock)

        # (4) inter-compression of lead traces into the online trace
        if decision.do_merge and self.topk is not None:
            t0 = self.ctx.clock
            merged = await merge_lead_traces(
                self, self.topk, self.online, self.config.window
            )
            if self.rank == 0:
                self.online = merged
            self.cstats.intercompression_time += self.ctx.clock - t0
            # (6) all ranks drop their partial intra-node trace; the last
            # event end is kept so delta times stay stitched.
            self.compressor.take_nodes()
            self.mergeacc.reset()
            if obs.enabled:
                obs.span(
                    self.rank, "intercompression", "chameleon", t0,
                    self.ctx.clock, {"k": len(self.topk)},
                )
                obs.metrics.count("marker/intercompression_time",
                                  self.ctx.clock - t0, rank=self.rank,
                                  t=self.ctx.clock)

        # (5) tracing control for the lead phase
        if decision.state is MarkerState.C:
            leads = set(self.topk.leads()) if self.topk else {self.rank}
            self.tracing = self.rank in leads
            if obs.enabled:
                obs.instant(
                    self.rank, "lead_election", "chameleon", self.ctx.clock,
                    {"leads": sorted(leads), "is_lead": self.tracing},
                )
                obs.metrics.count("marker/lead_elections", 1, rank=self.rank,
                                  t=self.ctx.clock)
                obs.metrics.gauge("marker/is_lead", float(self.tracing),
                                  rank=self.rank)
        elif decision.do_merge or decision.phase_changed:
            # flush or pattern break: everyone traces again
            self.tracing = True

        self._sample_space(decision.state.value, intra_bytes_pre)
        self.sigacc.reset()
        return decision

    def _sample_space(self, state: str, intra_bytes: int) -> None:
        allocated = intra_bytes
        if self.rank == 0 and self.online is not None:
            allocated += self.online.size_bytes()
        self.cstats.space_samples.append((state, allocated))
        self.stats.bytes_by_state[state] = (
            self.stats.bytes_by_state.get(state, 0) + allocated
        )
        ins = self.obs
        if ins.enabled:
            ins.metrics.gauge("space/bytes", float(allocated),
                              rank=self.rank, phase=state)
            ins.metrics.observe("space/bytes_per_marker", float(allocated),
                                rank=self.rank, phase=state)

    # -- finalize -----------------------------------------------------------

    async def finalize(self) -> Trace | None:
        """Add the last events to the online trace; return it on rank 0.

        Per the paper, Algorithm 1 is skipped (re-clustering is certain) and
        the inter-compression is identical to a marker's.  One correctness
        nuance the pseudocode leaves implicit: when the run ends inside a
        lead phase, the unfetched partial traces live on the *current*
        leads, so re-clustering on the (possibly empty) final interval would
        elect different leads and lose them.  We therefore re-cluster only
        when every rank is still tracing, and otherwise flush with the
        existing Top-K — "the inter-compression part remains the same".
        """
        obs = self.obs
        failed: frozenset[int] = frozenset()
        if self.comm.engine.faults.active:
            failed = self._fault_epoch("final")
            self._ft_check(failed)
            if self.degraded:
                return await self._finalize_degraded(failed)
        decision = self.phase.force_final()
        if obs.enabled and decision.state.value != self._obs_state:
            obs.instant(
                self.rank, "state_transition", "state", self.ctx.clock,
                {"from": self._obs_state or "start",
                 "to": decision.state.value},
            )
            self._obs_state = decision.state.value
        intra_bytes_pre = self.compressor.size_bytes() if self.tracing else 0
        vote = await self.comm.allreduce(1 if self.tracing else 0, size=8)
        # Under faults the vote can be a LOST hole or missing dead ranks'
        # contributions; either way not everyone is provably tracing.
        all_tracing = vote is not LOST and bool(
            vote == self.nprocs - len(failed)
        )
        if self.topk is None or all_tracing:
            sigs = self.mergeacc.snapshot()
            t0 = self.ctx.clock
            self.topk = await cluster_over_tree(self, sigs, self.config,
                                                failed)
            self.cstats.clustering_time += self.ctx.clock - t0
            self.cstats.reclusterings += 1
            self.cstats.k_used = max(self.cstats.k_used, len(self.topk))
            self.cstats.num_callpaths = max(
                self.cstats.num_callpaths, self.topk.num_callpaths
            )
            mine = self.topk.find_cluster_of(self.rank)
            if mine is not None:
                self.my_cluster_members = mine.members
            if obs.enabled:
                obs.span(
                    self.rank, "clustering", "chameleon", t0, self.ctx.clock,
                    {"k": len(self.topk), "final": True},
                )
                obs.metrics.count("marker/clustering_time",
                                  self.ctx.clock - t0, rank=self.rank,
                                  t=self.ctx.clock)
        t0 = self.ctx.clock
        merged = await merge_lead_traces(
            self, self.topk, self.online, self.config.window
        )
        self.cstats.intercompression_time += self.ctx.clock - t0
        self.compressor.take_nodes()
        if obs.enabled:
            obs.span(self.rank, "intercompression", "chameleon", t0,
                     self.ctx.clock, {"k": len(self.topk), "final": True})
            obs.metrics.count("marker/intercompression_time",
                              self.ctx.clock - t0, rank=self.rank,
                              t=self.ctx.clock)
        self._sample_space(decision.state.value, intra_bytes_pre)
        if self.rank == 0:
            self.online = merged
            assert self.online is not None
            self.online.nprocs = self.nprocs
            return self.online
        return None

    async def _finalize_degraded(self, failed: frozenset[int]) -> Trace | None:
        """Fault fall-back finalize: a full ScalaTrace-style merge over the
        surviving ranks.

        Every survivor has been full-tracing since the degraded transition,
        so the complete (not lead-sampled) traces are merged over a radix
        tree of the alive ranks.  When rank 0 survived (degradation came
        from a cluster collapse) the merged trace is folded into the online
        trace so pre-degradation intervals are kept; when rank 0 died, the
        lowest surviving rank returns the merged full trace — the best
        available output.
        """
        obs = self.obs
        decision = self.phase.force_final()
        alive = [r for r in range(self.nprocs) if r not in failed]
        if obs.enabled:
            obs.instant(self.rank, "degraded_finalize", "fault",
                        self.ctx.clock,
                        {"alive": len(alive), "failed": sorted(failed)})
        intra_bytes_pre = self.compressor.size_bytes() if self.tracing else 0
        local = Trace(
            nodes=self.compressor.take_nodes(),
            origin=RankSet.single(self.rank),
            nprocs=self.nprocs,
        )
        t0 = self.ctx.clock
        merged = await self.merge_over_tree(local, members=alive)
        self.cstats.intercompression_time += self.ctx.clock - t0
        if obs.enabled:
            obs.span(self.rank, "intercompression", "chameleon", t0,
                     self.ctx.clock, {"degraded": True, "final": True})
        self._sample_space(decision.state.value, intra_bytes_pre)
        if self.rank != alive[0]:
            return None
        assert merged is not None
        if self.online is not None and self.online.nodes:
            work0 = self.meter.total
            self.online.nodes.extend(merged.nodes)
            fold_tail(self.online.nodes, self.config.window, self.meter,
                      match_participants=True)
            self.online.origin = self.online.origin.union(merged.origin)
            self.ctx.compute(
                (self.meter.total - work0) * self.costs.per_merge_cell
            )
            self.online.nprocs = self.nprocs
            return self.online
        merged.nprocs = self.nprocs
        return merged
