"""Phase recognition: the AT / C / L / F transition graph (Algorithm 1).

Every effective marker call each process computes its interval Call-Path
signature, votes collectively on whether *any* process saw a change
(``MPI_Reduce`` of mismatch flags + ``MPI_Bcast`` of the sum — the
``O(n log P)`` step), and the shared flags ``Re-Clustering`` and ``Lead``
drive the transition graph:

==================  ======================  =============================
vote result          flags                   outcome
==================  ======================  =============================
first marker         —                       AT (baseline recorded)
all matched          Re-Clustering set       **C**: cluster now, merge
all matched          Re-Clustering clear     **L** (steady lead phase): set
                                             Lead flag, nothing else
any mismatch         Lead flag set           **L + flush**: merge lead
                                             traces, drop back to AT
any mismatch         Lead flag clear         AT; re-arm Re-Clustering
==================  ======================  =============================

(The paper's Algorithm 1 *returns* AT for the steady lead phase while the
evaluation's Table II counts those markers as state L; :class:`MarkerDecision`
carries both: ``state`` follows the paper's accounting, the ``do_*`` flags
follow Algorithm 1's actions.)

Because the vote synchronizes all ranks, every process takes the same
branch — the paper's note (7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..faults.injector import LOST
from ..simmpi.collectives import SUM, Communicator
from ..simmpi.comm import MAX_USER_TAG
from ..simmpi.topology import RadixTree

#: reserved tags for the fault-tolerant vote (reduce up / result down);
#: above MAX_USER_TAG so application wildcard receives never see them
VOTE_TAG = MAX_USER_TAG + 4
VOTE_RESULT_TAG = MAX_USER_TAG + 5


class MarkerState(enum.Enum):
    AT = "all-tracing"
    C = "clustering"
    L = "lead"
    F = "final"


@dataclass(frozen=True)
class MarkerDecision:
    """What this marker call must do (identical on every rank)."""

    state: MarkerState
    do_cluster: bool = False  # run Algorithm 3's clustering section
    do_merge: bool = False  # run Algorithm 3's inter-compression section
    phase_changed: bool = False  # the vote saw at least one mismatch
    votes_missing: int = 0  # votes that never arrived (faults only)


class PhaseTracker:
    """Per-process state of Algorithm 1 (flags are vote-synchronized)."""

    #: fraction of the world whose votes must arrive for the transition
    #: graph to act; below this the tracker re-enters AT (fault tolerance)
    vote_quorum = 0.5

    def __init__(self) -> None:
        self.old_callpath: int | None = None
        self.re_clustering = True
        self.lead_flag = False
        self.votes = 0

    async def decide(
        self,
        comm: Communicator,
        current_callpath: int,
        failed: frozenset[int] = frozenset(),
    ) -> MarkerDecision:
        """One execution of Algorithm 1 at an effective marker call.

        ``failed`` is the caller's per-marker failure snapshot (identical
        on every rank; see ``ChameleonTracer._fault_epoch``); when fault
        injection is active the vote runs over the surviving ranks only.
        """
        if self.old_callpath is None:
            # First time hitting the marker: record the baseline.
            self.old_callpath = current_callpath
            return MarkerDecision(MarkerState.AT)

        mismatch = 1 if self.old_callpath != current_callpath else 0
        if comm.engine.faults.active:
            return await self._decide_ft(comm, current_callpath, mismatch,
                                         failed)
        glob = await comm.reduce(mismatch, op=SUM, root=0, size=8)
        glob = await comm.bcast(glob, root=0, size=8)
        self.votes += 1
        self.old_callpath = current_callpath

        if glob == 0:
            if self.re_clustering:
                self.re_clustering = False
                return MarkerDecision(
                    MarkerState.C, do_cluster=True, do_merge=True
                )
            # Steady lead phase: leads keep tracing, nothing to do.
            self.lead_flag = True
            return MarkerDecision(MarkerState.L)

        if self.lead_flag:
            # Pattern broke during the lead phase: flush lead traces.  The
            # paper's Algorithm 1 listing does not re-arm Re-Clustering
            # here, but its Figure 2 sends all processes back to AT ("all
            # tracing"), from which a stable pattern transitions to C — so
            # re-arming is the behaviour the transition graph specifies and
            # what keeps clusters fresh across phases (Fig. 3 re-clusters
            # after every phase change).  We follow the figure.
            self.lead_flag = False
            self.re_clustering = True
            return MarkerDecision(
                MarkerState.L, do_merge=True, phase_changed=True
            )

        self.re_clustering = True
        return MarkerDecision(MarkerState.AT, phase_changed=True)

    # -- fault-tolerant vote ------------------------------------------------

    async def _decide_ft(
        self,
        comm: Communicator,
        current_callpath: int,
        mismatch: int,
        failed: frozenset[int],
    ) -> MarkerDecision:
        """The vote under fault injection: reduce ``(mismatch, votes)``
        pairs over a radix tree spanning only the *alive* ranks.

        ``failed`` is an epoch-consistent snapshot (the same frozenset on
        every rank of this marker round — the simulation's stand-in for a
        ULFM-style agreement), so all alive ranks build the same tree and
        take the same branch.  Votes can still go missing (messages dropped
        past the retry budget, a rank dying mid-vote): the pair's count
        says how many arrived, and when fewer than ``vote_quorum`` of the
        world — or fewer than the alive ranks we expected — voted, the
        tracker conservatively drops back to AT and re-arms re-clustering.
        """
        alive = [r for r in range(comm.size) if r not in failed]
        tree = RadixTree(alive, arity=2)
        me = comm.rank

        total, nvotes = mismatch, 1
        for child in reversed(tree.children(me)):
            got = await comm.recv(child, tag=VOTE_TAG)
            if got is LOST:
                continue
            t, n = got
            total += t
            nvotes += n
        parent = tree.parent(me)
        if parent is not None:
            await comm.send(parent, (total, nvotes), tag=VOTE_TAG, size=16)
            result = await comm.recv(parent, tag=VOTE_RESULT_TAG)
        else:
            result = (total, nvotes)
        for child in tree.children(me):
            await comm.send(child, result, tag=VOTE_RESULT_TAG, size=16)

        self.votes += 1
        self.old_callpath = current_callpath

        if result is LOST:
            # Cut off from the vote result entirely: safest is to trace.
            self.lead_flag = False
            self.re_clustering = True
            return MarkerDecision(
                MarkerState.AT, phase_changed=True, votes_missing=comm.size
            )
        glob, nvotes = result
        missing = comm.size - nvotes
        if nvotes < len(alive) or nvotes < self.vote_quorum * comm.size:
            # Too many votes missing to trust the transition graph.
            self.lead_flag = False
            self.re_clustering = True
            return MarkerDecision(
                MarkerState.AT, phase_changed=True, votes_missing=missing
            )

        if glob == 0:
            if self.re_clustering:
                self.re_clustering = False
                return MarkerDecision(
                    MarkerState.C, do_cluster=True, do_merge=True,
                    votes_missing=missing,
                )
            self.lead_flag = True
            return MarkerDecision(MarkerState.L, votes_missing=missing)
        if self.lead_flag:
            self.lead_flag = False
            self.re_clustering = True
            return MarkerDecision(
                MarkerState.L, do_merge=True, phase_changed=True,
                votes_missing=missing,
            )
        self.re_clustering = True
        return MarkerDecision(
            MarkerState.AT, phase_changed=True, votes_missing=missing
        )

    def force_final(self) -> MarkerDecision:
        """``MPI_Finalize``: re-clustering is forced (at least the finalize
        event itself is new), inter-compression identical (paper §III)."""
        self.re_clustering = False
        self.lead_flag = False
        return MarkerDecision(MarkerState.F, do_cluster=True, do_merge=True)
