"""repro — full reproduction of *Chameleon: Online Clustering of MPI Program
Traces* (Bahmani & Mueller, IPDPS 2018).

Subpackages:

* :mod:`repro.simmpi`     — deterministic simulated MPI runtime (substrate)
* :mod:`repro.scalatrace` — ScalaTrace V2: RSD/PRSD compression, ranklists,
  signatures, radix-tree inter-node compression
* :mod:`repro.core`       — Chameleon: call-path signatures, the AT/C/L/F
  transition graph, signature clustering, online inter-compression
* :mod:`repro.replay`     — ScalaReplay: trace interpretation and the
  cluster-wide replay used for the accuracy experiments
* :mod:`repro.workloads`  — communication skeletons of NPB BT/SP/LU/CG,
  Sweep3D, POP and EMF
* :mod:`repro.harness`    — experiment runner regenerating every table and
  figure of the paper's evaluation
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
