"""repro — full reproduction of *Chameleon: Online Clustering of MPI Program
Traces* (Bahmani & Mueller, IPDPS 2018).

Subpackages:

* :mod:`repro.simmpi`     — deterministic simulated MPI runtime (substrate)
* :mod:`repro.scalatrace` — ScalaTrace V2: RSD/PRSD compression, ranklists,
  signatures, radix-tree inter-node compression
* :mod:`repro.core`       — Chameleon: call-path signatures, the AT/C/L/F
  transition graph, signature clustering, online inter-compression
* :mod:`repro.replay`     — ScalaReplay: trace interpretation and the
  cluster-wide replay used for the accuracy experiments
* :mod:`repro.workloads`  — communication skeletons of NPB BT/SP/LU/CG,
  Sweep3D, POP and EMF
* :mod:`repro.harness`    — experiment engine regenerating every table and
  figure of the paper's evaluation (parallel workers + on-disk run cache)
* :mod:`repro.obs`        — observability: virtual-time event tracing,
  metrics registry, Chrome-trace/Perfetto and JSONL exporters
* :mod:`repro.faults`     — deterministic, seeded fault injection (rank
  crashes, message loss, degraded links, compute noise) with graceful
  degradation through every layer

The stable entry points live in :mod:`repro.api` and are re-exported here:
``run``, ``run_experiment``, ``load_trace``, ``replay``, ``compare``,
``inspect``, ``Recorder``, ``export_chrome_trace``.
Deep imports keep working but :mod:`repro.api` is the committed surface.
"""

__version__ = "1.3.0"

from . import api
from .api import (
    EXPERIMENTS,
    FaultPlan,
    FaultPlanError,
    Instrument,
    MetricsRegistry,
    Mode,
    NetworkModel,
    Recorder,
    RunResult,
    SimConfig,
    Trace,
    compare,
    configure_engine,
    export_chrome_trace,
    export_metrics_jsonl,
    get_engine,
    inspect,
    load_trace,
    replay,
    run,
    run_experiment,
    serve,
    stream_run,
)

__all__ = [
    "EXPERIMENTS",
    "FaultPlan",
    "FaultPlanError",
    "Instrument",
    "MetricsRegistry",
    "Mode",
    "NetworkModel",
    "Recorder",
    "RunResult",
    "SimConfig",
    "Trace",
    "__version__",
    "api",
    "compare",
    "configure_engine",
    "export_chrome_trace",
    "export_metrics_jsonl",
    "get_engine",
    "inspect",
    "load_trace",
    "replay",
    "run",
    "run_experiment",
    "serve",
    "stream_run",
]
