"""Dependency-free validation against a JSON Schema subset.

The exporter's output contract is pinned by a checked-in schema
(``schemas/chrome_trace.schema.json``); CI validates every smoke-run trace
against it.  Rather than depending on the ``jsonschema`` package, this
module interprets the subset of draft-07 the checked-in schemas actually
use:

``type`` (including lists), ``properties``, ``required``, ``items``,
``enum``, ``minimum``, ``maximum``, ``minItems``, ``additionalProperties``
(boolean form).

Unknown keywords are ignored — exactly like a full validator would ignore
annotations — so the schema file remains valid input for standard tooling.
"""

from __future__ import annotations

import json
from typing import Any


class SchemaError(ValueError):
    """Raised by :func:`check` when an instance violates the schema."""

    def __init__(self, errors: list[str]) -> None:
        super().__init__("; ".join(errors[:10]))
        self.errors = errors


_TYPES: dict[str, tuple[type, ...]] = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "number": (int, float),
    "integer": (int,),
    "boolean": (bool,),
    "null": (type(None),),
}


def _type_ok(value: Any, name: str) -> bool:
    kinds = _TYPES.get(name)
    if kinds is None:
        return True  # unknown type name: be permissive like unknown keywords
    if name in ("number", "integer") and isinstance(value, bool):
        return False  # bool is an int subclass but not a JSON number
    if name == "integer":
        return isinstance(value, int) or (
            isinstance(value, float) and value.is_integer()
        )
    return isinstance(value, kinds)


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """Collect every violation of ``schema`` by ``instance`` (empty = valid)."""
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, n) for n in names):
            errors.append(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would only cascade

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")

    if isinstance(instance, dict):
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        for name, sub in props.items():
            if name in instance:
                errors.extend(validate(instance[name], sub, f"{path}.{name}"))
        if schema.get("additionalProperties") is False:
            for name in instance:
                if name not in props:
                    errors.append(f"{path}: unexpected property {name!r}")

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} items < minItems {schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for i, element in enumerate(instance):
                errors.extend(validate(element, items, f"{path}[{i}]"))

    return errors


def check(instance: Any, schema: dict[str, Any]) -> None:
    """Raise :class:`SchemaError` if ``instance`` violates ``schema``."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError(errors)


def validate_file(instance_path: str, schema_path: str) -> list[str]:
    """Validate a JSON document on disk against a schema on disk."""
    with open(instance_path, encoding="utf-8") as fh:
        instance = json.load(fh)
    with open(schema_path, encoding="utf-8") as fh:
        schema = json.load(fh)
    return validate(instance, schema)
