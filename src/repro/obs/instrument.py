"""The Instrument event bus: spans, instants and metrics from a live run.

An :class:`Instrument` is handed to the simulated runtime and observed by
every layer of a run — the ``simmpi`` scheduler (task run/park/wake), the
point-to-point and collective machinery, the ScalaTrace/Chameleon tracers
(marker decisions, votes, clustering, state transitions) and the harness
engine (cell scheduling, cache hits).  All timestamps are **virtual
seconds** of the rank the event belongs to, so exported timelines show the
simulation's own clock, not wall time.

The base class is the **zero-cost no-op**: every hook is a ``pass`` and
``enabled`` is ``False``, so emission sites guard with one attribute check
and skip even the argument construction.  A run without a live instrument
is therefore *bit-identical* — same virtual clocks, same trace — to a run
on a build without instrumentation at all (the test-suite asserts this).

:class:`Recorder` is the collecting implementation; :meth:`Recorder.snapshot`
freezes what it saw into a serializable :class:`ObsData` that the exporters
(:mod:`repro.obs.export`) turn into Chrome traces, metrics JSONL and
terminal summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .metrics import NULL_METRICS, MetricsRegistry


@dataclass(frozen=True)
class SpanEvent:
    """A closed interval of virtual time on one rank's lane."""

    rank: int
    name: str
    cat: str
    start: float
    end: float
    args: dict[str, Any] | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rank": self.rank,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
        }
        if self.args:
            out["args"] = self.args
        return out


@dataclass(frozen=True)
class InstantEvent:
    """A point event (marker decision, state transition, wake, ...)."""

    rank: int
    name: str
    cat: str
    ts: float
    args: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rank": self.rank,
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
        }
        if self.args:
            out["args"] = self.args
        return out


class Instrument:
    """Event-bus API; this base class is the zero-cost no-op default.

    Emission sites hold a reference to the run's instrument and guard every
    hook call with ``if ins.enabled:`` — with the default instrument that
    is the *entire* cost of instrumentation, and no hook ever advances a
    virtual clock, so enabling a recorder cannot perturb the simulation.
    """

    #: emission sites skip all event construction when this is False
    enabled: bool = False
    #: metric sink; the no-op default discards every write
    metrics: MetricsRegistry = NULL_METRICS
    #: event fidelity this instrument needs from the runtime:
    #: ``"span"`` — whole-operation spans suffice, so eligible collectives
    #: may take the closed-form macro fast path (it synthesizes the same
    #: ``coll`` spans the simulated path would emit); ``"message"`` —
    #: per-message events are wanted, forcing collectives through the
    #: message-level algorithms so every constituent p2p span is real
    granularity: str = "span"

    def span(
        self,
        rank: int,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a closed virtual-time interval on ``rank``'s lane."""

    def instant(
        self,
        rank: int,
        name: str,
        cat: str,
        ts: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a point event on ``rank``'s lane."""


#: The process-wide no-op instance every run uses unless told otherwise.
NULL_INSTRUMENT = Instrument()


@dataclass
class ObsData:
    """Everything one instrumented run produced, in serializable form."""

    spans: list[SpanEvent] = field(default_factory=list)
    instants: list[InstantEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    meta: dict[str, Any] = field(default_factory=dict)

    def ranks(self) -> list[int]:
        """Sorted distinct ranks with at least one event (lanes)."""
        seen = {s.rank for s in self.spans}
        seen.update(i.rank for i in self.instants)
        return sorted(seen)

    def spans_for(
        self, rank: int | None = None, cat: str | None = None,
        name: str | None = None,
    ) -> list[SpanEvent]:
        """Spans filtered by any combination of rank / category / name."""
        return [
            s
            for s in self.spans
            if (rank is None or s.rank == rank)
            and (cat is None or s.cat == cat)
            and (name is None or s.name == name)
        ]

    def instants_for(
        self, rank: int | None = None, cat: str | None = None,
        name: str | None = None,
    ) -> list[InstantEvent]:
        """Instants filtered by any combination of rank / category / name."""
        return [
            i
            for i in self.instants
            if (rank is None or i.rank == rank)
            and (cat is None or i.cat == cat)
            and (name is None or i.name == name)
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "meta": self.meta,
            "spans": [s.to_dict() for s in self.spans],
            "instants": [i.to_dict() for i in self.instants],
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObsData":
        return cls(
            spans=[
                SpanEvent(
                    rank=s["rank"], name=s["name"], cat=s["cat"],
                    start=s["start"], end=s["end"], args=s.get("args"),
                )
                for s in data.get("spans", [])
            ],
            instants=[
                InstantEvent(
                    rank=i["rank"], name=i["name"], cat=i["cat"],
                    ts=i["ts"], args=i.get("args"),
                )
                for i in data.get("instants", [])
            ],
            metrics=MetricsRegistry.from_dict(data.get("metrics", {})),
            meta=dict(data.get("meta", {})),
        )


class Recorder(Instrument):
    """Collecting instrument: buffers spans/instants and owns a registry.

    Args:
        time_bucket: virtual-time bucket width for the registry's
            time-resolved series (0 disables them).
        max_events: safety valve — beyond this many buffered events new
            spans/instants are dropped (counted in ``dropped``) so a
            pathological run cannot exhaust memory.
        granularity: ``"message"`` (default) records every constituent
            p2p event of a collective, which routes collectives through
            the message-level algorithms; ``"span"`` accepts one ``coll``
            span per collective per rank and keeps the closed-form fast
            path eligible.  Virtual time is bit-identical either way.
    """

    enabled = True

    def __init__(
        self,
        time_bucket: float = 0.0,
        max_events: int = 2_000_000,
        granularity: str = "message",
    ):
        if granularity not in ("message", "span"):
            raise ValueError(
                f"granularity must be 'message' or 'span', got {granularity!r}"
            )
        self.granularity = granularity
        self.spans: list[SpanEvent] = []
        self.instants: list[InstantEvent] = []
        self.metrics = MetricsRegistry(time_bucket=time_bucket)
        self.max_events = max_events
        self.dropped = 0

    def _room(self) -> bool:
        if len(self.spans) + len(self.instants) >= self.max_events:
            self.dropped += 1
            return False
        return True

    def span(
        self,
        rank: int,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        if self._room():
            self.spans.append(SpanEvent(rank, name, cat, start, end, args))

    def instant(
        self,
        rank: int,
        name: str,
        cat: str,
        ts: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        if self._room():
            self.instants.append(InstantEvent(rank, name, cat, ts, args))

    def snapshot(self, meta: dict[str, Any] | None = None) -> ObsData:
        """Freeze everything recorded so far into an :class:`ObsData`."""
        data_meta = dict(meta or {})
        if self.dropped:
            data_meta["dropped_events"] = self.dropped
        return ObsData(
            spans=list(self.spans),
            instants=list(self.instants),
            metrics=MetricsRegistry(self.metrics.time_bucket).merge(self.metrics),
            meta=data_meta,
        )

    def clear(self) -> None:
        """Drop buffered events and metrics (reuse between runs)."""
        self.spans.clear()
        self.instants.clear()
        self.metrics = MetricsRegistry(time_bucket=self.metrics.time_bucket)
        self.dropped = 0
