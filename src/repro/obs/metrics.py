"""MetricsRegistry: typed counters/gauges/histograms keyed on (rank, phase, op).

One registry replaces the ad-hoc ``tracer_stats`` / ``chameleon_stats``
dict-summing the harness used to do: every metric is addressed by a *name*
(a ``subsystem/quantity`` path such as ``chameleon/vote_time``) plus three
optional labels —

* ``rank``  — the simulated MPI rank the sample belongs to,
* ``phase`` — the AT/C/L/F marker state (or any workload phase string),
* ``op``    — the operation (an MPI call name, a cell label, ...).

Aggregation is a query-time concern: :meth:`MetricsRegistry.value` sums
every sample matching the labels you *did* specify, so "total vote time",
"vote time on rank 3" and "markers in state L" are all one call.

**Virtual-time bucketing.**  When a registry is created with a positive
``time_bucket`` (virtual seconds), counter increments that carry a
timestamp also accumulate into per-bucket series, giving time-resolved
metrics (rate-over-virtual-time plots) without a second collection path.

Everything here is deterministic, pickle-friendly and JSON-serializable;
no third-party dependency is involved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

#: A fully-qualified metric key: (name, rank, phase, op).
MetricKey = tuple[str, "int | None", "str | None", "str | None"]


def _key(
    name: str, rank: int | None, phase: str | None, op: str | None
) -> MetricKey:
    return (name, rank, phase, op)


def _matches(
    key: MetricKey, name: str, rank: int | None, phase: str | None, op: str | None
) -> bool:
    if key[0] != name:
        return False
    if rank is not None and key[1] != rank:
        return False
    if phase is not None and key[2] != phase:
        return False
    if op is not None and key[3] != op:
        return False
    return True


@dataclass
class Histogram:
    """Power-of-two bucketed distribution of non-negative samples."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: bucket exponent -> sample count; bucket b holds values in
    #: (2**(b-1), 2**b] (b=None collects zeros)
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        b = 0 if value <= 0 else math.ceil(math.log2(value)) if value > 0 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "Histogram") -> "Histogram":
        out = Histogram(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            buckets=dict(self.buckets),
        )
        for b, n in other.buckets.items():
            out.buckets[b] = out.buckets.get(b, 0) + n
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Counters, gauges and histograms with (rank, phase, op) labels.

    Args:
        time_bucket: width of the virtual-time series buckets in virtual
            seconds; ``0`` (the default) disables time-resolved series.
    """

    def __init__(self, time_bucket: float = 0.0) -> None:
        if time_bucket < 0:
            raise ValueError("time_bucket must be >= 0")
        self.time_bucket = time_bucket
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._hists: dict[MetricKey, Histogram] = {}
        #: (key, bucket index) -> accumulated value, for time-resolved series
        self._series: dict[tuple[MetricKey, int], float] = {}

    # -- writing -----------------------------------------------------------

    def count(
        self,
        name: str,
        value: float = 1.0,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
        t: float | None = None,
    ) -> None:
        """Add ``value`` to a counter; ``t`` (virtual seconds) feeds the
        time-resolved series when bucketing is enabled."""
        key = _key(name, rank, phase, op)
        self._counters[key] = self._counters.get(key, 0.0) + value
        if t is not None and self.time_bucket > 0:
            bucket = int(t // self.time_bucket)
            skey = (key, bucket)
            self._series[skey] = self._series.get(skey, 0.0) + value

    def gauge(
        self,
        name: str,
        value: float,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
    ) -> None:
        """Set a gauge to its latest value."""
        self._gauges[_key(name, rank, phase, op)] = value

    def observe(
        self,
        name: str,
        value: float,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
    ) -> None:
        """Record one histogram sample."""
        key = _key(name, rank, phase, op)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.observe(value)

    # -- querying ----------------------------------------------------------

    def value(
        self,
        name: str,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
    ) -> float:
        """Sum of every counter sample matching the given labels.

        Unspecified labels are wildcards, so ``value("p2p/bytes")`` is the
        global total and ``value("p2p/bytes", rank=3)`` rank 3's share.
        """
        return sum(
            v
            for k, v in self._counters.items()
            if _matches(k, name, rank, phase, op)
        )

    def has(self, name: str) -> bool:
        """Whether any counter/gauge/histogram sample exists under ``name``."""
        return any(
            k[0] == name
            for store in (self._counters, self._gauges, self._hists)
            for k in store
        )

    def names(self) -> list[str]:
        """Sorted distinct metric names across all stores."""
        out = {k[0] for k in self._counters}
        out.update(k[0] for k in self._gauges)
        out.update(k[0] for k in self._hists)
        return sorted(out)

    def labels(self, name: str) -> list[MetricKey]:
        """Every counter key recorded under ``name`` (sorted)."""
        return sorted(
            (k for k in self._counters if k[0] == name),
            key=lambda k: (k[1] if k[1] is not None else -1, k[2] or "", k[3] or ""),
        )

    def series(
        self,
        name: str,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
    ) -> list[tuple[float, float]]:
        """Time-resolved counter: sorted ``(bucket_start, value)`` pairs."""
        acc: dict[int, float] = {}
        for (key, bucket), v in self._series.items():
            if _matches(key, name, rank, phase, op):
                acc[bucket] = acc.get(bucket, 0.0) + v
        return [(b * self.time_bucket, acc[b]) for b in sorted(acc)]

    def histogram(
        self,
        name: str,
        *,
        rank: int | None = None,
        phase: str | None = None,
        op: str | None = None,
    ) -> Histogram:
        """Merged histogram over every key matching the labels."""
        out = Histogram()
        for k, h in self._hists.items():
            if _matches(k, name, rank, phase, op):
                out = out.merged(h)
        return out

    # -- combination -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters add, gauges take the
        other's value, histograms combine).  Returns ``self``."""
        for k, v in other._counters.items():
            self._counters[k] = self._counters.get(k, 0.0) + v
        self._gauges.update(other._gauges)
        for k, h in other._hists.items():
            mine = self._hists.get(k)
            self._hists[k] = h.merged(mine) if mine is not None else h.merged(Histogram())
        if other.time_bucket == self.time_bucket and self.time_bucket > 0:
            for sk, v in other._series.items():
                self._series[sk] = self._series.get(sk, 0.0) + v
        return self

    # -- serialization -----------------------------------------------------

    def _iter_rows(self) -> Iterator[dict[str, Any]]:
        def base(kind: str, key: MetricKey) -> dict[str, Any]:
            name, rank, phase, op = key
            row: dict[str, Any] = {"kind": kind, "name": name}
            if rank is not None:
                row["rank"] = rank
            if phase is not None:
                row["phase"] = phase
            if op is not None:
                row["op"] = op
            return row

        for key in sorted(self._counters, key=repr):
            row = base("counter", key)
            row["value"] = self._counters[key]
            yield row
        for key in sorted(self._gauges, key=repr):
            row = base("gauge", key)
            row["value"] = self._gauges[key]
            yield row
        for key in sorted(self._hists, key=repr):
            row = base("histogram", key)
            row.update(self._hists[key].as_dict())
            yield row
        for key, bucket in sorted(self._series, key=repr):
            row = base("series", (key[0], key[1], key[2], key[3]))
            row["t"] = bucket * self.time_bucket
            row["value"] = self._series[(key, bucket)]
            yield row

    def rows(self) -> list[dict[str, Any]]:
        """Flat, JSONL-ready dict rows for every metric sample."""
        return list(self._iter_rows())

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_bucket": self.time_bucket,
            "counters": [
                {"key": list(k), "value": v} for k, v in sorted(
                    self._counters.items(), key=lambda kv: repr(kv[0]))
            ],
            "gauges": [
                {"key": list(k), "value": v} for k, v in sorted(
                    self._gauges.items(), key=lambda kv: repr(kv[0]))
            ],
            "histograms": [
                {"key": list(k), **h.as_dict()} for k, h in sorted(
                    self._hists.items(), key=lambda kv: repr(kv[0]))
            ],
            "series": [
                {"key": list(k), "bucket": b, "value": v}
                for (k, b), v in sorted(self._series.items(), key=repr)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsRegistry":
        reg = cls(time_bucket=data.get("time_bucket", 0.0))
        for row in data.get("counters", []):
            reg._counters[tuple(row["key"])] = row["value"]  # type: ignore[index]
        for row in data.get("gauges", []):
            reg._gauges[tuple(row["key"])] = row["value"]  # type: ignore[index]
        for row in data.get("histograms", []):
            hist = Histogram(
                count=row["count"],
                total=row["sum"],
                min=row["min"] if row["min"] is not None else math.inf,
                max=row["max"] if row["max"] is not None else -math.inf,
                buckets={int(b): n for b, n in row["buckets"].items()},
            )
            reg._hists[tuple(row["key"])] = hist  # type: ignore[index]
        for row in data.get("series", []):
            reg._series[(tuple(row["key"]), row["bucket"])] = row["value"]  # type: ignore[index]
        return reg

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._hists)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} hists={len(self._hists)}>"
        )


class NullMetrics(MetricsRegistry):
    """Write-discarding registry backing the no-op Instrument."""

    def count(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def gauge(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def observe(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass


#: Shared sink for the no-op instrument: accepts writes, stores nothing.
NULL_METRICS = NullMetrics()
