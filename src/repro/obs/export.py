"""Exporters: Chrome ``trace_event`` JSON, metrics JSONL, terminal summary.

The Chrome exporter emits the `trace_event format`_ understood by
``ui.perfetto.dev`` and ``chrome://tracing``: one lane per simulated rank
(``pid`` and ``tid`` are both the rank), complete (``"X"``) events for
spans, instant (``"i"``) events for point events, and metadata naming each
lane ``rank N``.  Timestamps are the run's **virtual time** converted to
microseconds, so opening an exported run shows the simulation's own
timeline.

.. _trace_event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, IO

from .instrument import ObsData
from .metrics import MetricsRegistry

#: virtual seconds -> trace_event microseconds
_US = 1e6


def chrome_trace_events(obs: ObsData) -> list[dict[str, Any]]:
    """The ``traceEvents`` array for ``obs``: metadata first, then spans and
    instants sorted by timestamp (ties broken longest-span-first so nested
    spans render correctly)."""
    meta_events: list[dict[str, Any]] = []
    for rank in obs.ranks():
        meta_events.append(
            {
                "ph": "M", "name": "process_name", "pid": rank, "tid": rank,
                "ts": 0, "args": {"name": f"rank {rank}"},
            }
        )
        meta_events.append(
            {
                "ph": "M", "name": "thread_name", "pid": rank, "tid": rank,
                "ts": 0, "args": {"name": f"rank {rank}"},
            }
        )

    timed: list[dict[str, Any]] = []
    for s in obs.spans:
        timed.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "pid": s.rank,
                "tid": s.rank,
                "ts": s.start * _US,
                "dur": max(s.end - s.start, 0.0) * _US,
                "args": s.args or {},
            }
        )
    for i in obs.instants:
        timed.append(
            {
                "ph": "i",
                "name": i.name,
                "cat": i.cat,
                "pid": i.rank,
                "tid": i.rank,
                "ts": i.ts * _US,
                "s": "t",  # thread-scoped instant: drawn on the rank's lane
                "args": i.args or {},
            }
        )
    timed.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0), e["pid"], e["name"]))
    return meta_events + timed


def export_chrome_trace(
    obs: ObsData, path: str | IO[str] | None = None
) -> dict[str, Any]:
    """Build (and optionally write) the Chrome ``trace_event`` document.

    ``path`` may be a filename or an open text stream; the document is
    always returned so callers can post-process it.
    """
    doc = {
        "traceEvents": chrome_trace_events(obs),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", **obs.meta},
    }
    if path is not None:
        if hasattr(path, "write"):
            json.dump(doc, path)  # type: ignore[arg-type]
        else:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
    return doc


def export_metrics_jsonl(
    metrics: MetricsRegistry | ObsData, path: str | IO[str]
) -> int:
    """Write one JSON object per metric sample; returns the row count."""
    registry = metrics.metrics if isinstance(metrics, ObsData) else metrics
    rows = registry.rows()

    def _write(fh: IO[str]) -> None:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")

    if hasattr(path, "write"):
        _write(path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _write(fh)
    return len(rows)


def format_summary(obs: ObsData, width: int = 72) -> str:
    """Human-readable terminal summary of one instrumented run."""
    lines: list[str] = []
    meta = obs.meta
    head = " / ".join(
        str(meta[k]) for k in ("workload", "mode", "nprocs") if k in meta
    )
    lines.append(f"observability summary{': ' + head if head else ''}")

    by_cat: dict[str, tuple[int, float]] = {}
    for s in obs.spans:
        n, t = by_cat.get(s.cat, (0, 0.0))
        by_cat[s.cat] = (n + 1, t + s.duration)
    if by_cat:
        lines.append("  span time by category (virtual s, summed over ranks):")
        for cat in sorted(by_cat):
            n, t = by_cat[cat]
            lines.append(f"    {cat:<12s} {n:7d} spans  {t:12.6f} s")

    states = [i for i in obs.instants if i.cat == "state"]
    if states:
        lines.append(f"  state transitions: {len(states)}")
        first_args = states[0].args or {}
        last_args = states[-1].args or {}
        lines.append(
            f"    first {first_args.get('from')}->{first_args.get('to')}"
            f" @ {states[0].ts:.6f} s,"
            f" last {last_args.get('from')}->{last_args.get('to')}"
            f" @ {states[-1].ts:.6f} s"
        )

    reg = obs.metrics
    names = reg.names()
    if names:
        lines.append("  counters (totals):")
        for name in names:
            total = reg.value(name)
            if total:
                lines.append(f"    {name:<32s} {total:14.6f}")

    ranks = obs.ranks()
    if ranks:
        lines.append(f"  lanes: {len(ranks)} ranks"
                     f" ({ranks[0]}..{ranks[-1]}),"
                     f" {len(obs.spans)} spans,"
                     f" {len(obs.instants)} instants")
    if "dropped_events" in meta:
        lines.append(f"  WARNING: {meta['dropped_events']} events dropped "
                     "(recorder buffer full)")
    return "\n".join(lines)


@dataclass
class Inspection:
    """Queryable observability view of one run (see :func:`repro.api.inspect`).

    ``registry`` always exists — for uninstrumented runs it is derived from
    the run's tracer/Chameleon statistics — while ``obs`` (the event
    timeline) is present only when the run was executed with a live
    :class:`~repro.obs.instrument.Recorder`.
    """

    registry: MetricsRegistry
    obs: ObsData | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str, **labels: Any) -> float:
        """Counter total for ``name`` filtered by rank/phase/op labels."""
        return self.registry.value(name, **labels)

    def spans(self, **filters: Any) -> list[Any]:
        """Spans from the event timeline (empty without a recorder)."""
        return self.obs.spans_for(**filters) if self.obs is not None else []

    def instants(self, **filters: Any) -> list[Any]:
        """Instants from the event timeline (empty without a recorder)."""
        return self.obs.instants_for(**filters) if self.obs is not None else []

    def summary(self) -> str:
        if self.obs is not None:
            return format_summary(self.obs)
        lines = ["observability summary (metrics only; run with a Recorder "
                 "for the event timeline)"]
        for name in self.registry.names():
            total = self.registry.value(name)
            if total:
                lines.append(f"  {name:<32s} {total:14.6f}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()
