"""repro.obs — the observability subsystem.

One collection path for everything a run can tell you about itself:

* :mod:`repro.obs.instrument` — the :class:`Instrument` event bus (spans +
  instants in virtual time) with a zero-cost no-op default and the
  collecting :class:`Recorder`;
* :mod:`repro.obs.metrics`    — the :class:`MetricsRegistry` of counters,
  gauges and histograms keyed on ``(rank, phase, op)`` with virtual-time
  bucketing;
* :mod:`repro.obs.export`     — Chrome ``trace_event`` JSON (opens directly
  in ui.perfetto.dev), flat metrics JSONL and terminal summaries;
* :mod:`repro.obs.schema`     — dependency-free validation of exporter
  output against the checked-in JSON schemas.

Entry points are re-exported from :mod:`repro.api`; prefer
``repro.run(..., instrument=Recorder())`` + ``repro.inspect(result)`` over
deep imports.
"""

from .export import (
    Inspection,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics_jsonl,
    format_summary,
)
from .instrument import (
    NULL_INSTRUMENT,
    Instrument,
    InstantEvent,
    ObsData,
    Recorder,
    SpanEvent,
)
from .metrics import Histogram, MetricsRegistry

__all__ = [
    "Histogram",
    "Inspection",
    "InstantEvent",
    "Instrument",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "ObsData",
    "Recorder",
    "SpanEvent",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_metrics_jsonl",
    "format_summary",
]
