"""`repro chaos host`: a deterministic host-fault chaos sweep.

The virtual-time chaos matrix (``repro chaos``) proves the *simulated
system* survives crashed ranks and dropped messages.  This sweep proves
the *host machinery* survives real process faults: it arms one
:class:`~repro.resilience.HostFaultPlan` per scenario, kills / SIGSTOPs /
delays actual shard and pool worker processes, damages actual cache
files, and asserts that every fault terminates in a **recorded** fallback,
retry, quarantine or invalidation — never a hang and never a wrong
answer.

Every scenario runs ``runs`` times (default twice) and the outcomes must
be equal; the report contains no wall-clock times or host paths, so two
invocations of the whole sweep produce byte-identical JSON — which is
exactly what the ``chaos-host`` CI job diffs.

Shard scenarios run under deliberately small supervision deadlines
(``REPRO_SHARD_DEADLINE=2``, ``REPRO_SHARD_HEARTBEAT=0.1``) so the sweep
finishes in seconds; the production defaults stay untouched outside the
sweep.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterator

from ..harness.cache import RunCache
from ..harness.engine import ExperimentEngine, make_cell
from ..harness.runner import Mode
from ..simmpi import SimConfig, run_spmd
from .hostfaults import HostFaultPlan, apply_cache_faults, installed
from .policy import QuarantineError, RetryPolicy
from .supervise import ENV_HEARTBEAT, ENV_WAVE_DEADLINE

#: Every host-fault scenario the sweep knows, in report order.
HOST_SCENARIOS = (
    "kill-shard-worker",
    "kill-shard-mid-replay",
    "stop-shard-worker",
    "slow-shard-worker",
    "stall-shard-final",
    "kill-pool-worker",
    "poison-cell",
    "hang-cell",
    "corrupt-cache",
    "truncate-cache",
)

#: Supervision env while shard scenarios run (small = fast sweep).
_SHARD_ENV = {ENV_WAVE_DEADLINE: "2", ENV_HEARTBEAT: "0.1"}

#: Harness policy for pool scenarios: tight deadlines and near-zero
#: backoff so a full sweep stays in the seconds range.
_POOL_POLICY = RetryPolicy(
    max_attempts=2,
    cell_deadline=1.5,
    backoff_base=0.01,
    backoff_cap=0.05,
    poll_interval=0.02,
)


@contextlib.contextmanager
def _shard_env() -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in _SHARD_ENV}
    os.environ.update(_SHARD_ENV)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


async def _ring_kernel(ctx):
    """Small p2p + collective mix: several waves across 2 shards."""
    comm, rank, size = ctx.comm, ctx.rank, ctx.size
    right, left = (rank + 1) % size, (rank - 1) % size
    acc = 0.0
    for r in range(3):
        send = comm.isend(right, rank * 10 + r, tag=r)
        acc += await comm.recv(source=left, tag=r)
        await send.wait()
        acc += await comm.allreduce(rank + r * 0.25)
    await comm.barrier()
    return acc


def _run_shard_scenario(plan: HostFaultPlan, expect: str) -> dict[str, Any]:
    with _shard_env():
        base = run_spmd(_ring_kernel, 8, config=SimConfig(shards=1))
        with installed(plan):
            hit = run_spmd(_ring_kernel, 8, config=SimConfig(shards=2))
    fallback = hit.extras.get("shard_fallback", "")
    identical = (
        hit.results == base.results
        and hit.clocks == base.clocks
        and hit.total_messages == base.total_messages
    )
    return {
        "fallback": fallback,
        "teardown": hit.extras.get("shard_teardown", "clean"),
        "identical": identical,
        "recovered": fallback == expect and identical,
    }


def _pool_cells():
    return [
        make_cell("uniform", 4, Mode.APP,
                  workload_params={"iterations": iterations})
        for iterations in (3, 4, 5, 6)
    ]


def _run_kill_pool(seed: int) -> dict[str, Any]:
    cells = _pool_cells()
    target = cells[1].digest()
    engine = ExperimentEngine(jobs=2, cache=None, policy=_POOL_POLICY)
    with tempfile.TemporaryDirectory() as tmp:
        plan = HostFaultPlan(seed=seed, kill_cell=target, attempts=1,
                             state_dir=tmp)
        with installed(plan):
            results = engine.run_cells(cells)
    completed = sum(1 for r in results if r is not None)
    return {
        "completed": completed,
        "quarantined": engine.metrics.quarantined,
        "recovered": completed == len(cells)
        and engine.metrics.quarantined == 0,
    }


def _run_poison(seed: int, *, hang: bool) -> dict[str, Any]:
    cells = _pool_cells()
    target = cells[1].digest()
    engine = ExperimentEngine(jobs=2, cache=None, policy=_POOL_POLICY)
    if hang:
        plan = HostFaultPlan(seed=seed, hang_cell=target, hang_s=30.0)
    else:
        plan = HostFaultPlan(seed=seed, kill_cell=target)
    outcome: dict[str, Any] = {
        "completed": 0, "quarantined": 0, "reasons": [], "target_hit": False,
        "recovered": False,
    }
    with installed(plan):
        try:
            engine.run_cells(cells)
        except QuarantineError as err:
            completed = sum(1 for r in err.results if r is not None)
            outcome.update(
                completed=completed,
                quarantined=len(err.quarantined),
                reasons=sorted({q.reason for q in err.quarantined}),
                target_hit=all(q.digest == target for q in err.quarantined),
                recovered=completed == len(cells) - 1
                and len(err.quarantined) == 1
                and err.quarantined[0].digest == target,
            )
    return outcome


def _run_cache_scenario(seed: int, mode: str) -> dict[str, Any]:
    cells = _pool_cells()[:2]
    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(root=Path(tmp) / "cache")
        engine = ExperimentEngine(jobs=1, cache=cache)
        before = engine.run_cells(cells)
        damaged = apply_cache_faults(
            HostFaultPlan(seed=seed, cache_mode=mode), cache
        )
        found = cache.verify()
        fixed = cache.verify(fix=True)
        # With the damaged entries swept away, a fresh engine recomputes
        # every cell and must land on the same virtual-time results.
        engine2 = ExperimentEngine(jobs=1, cache=cache)
        after = engine2.run_cells(cells)
    identical = [a.fingerprint() == b.fingerprint()
                 for a, b in zip(before, after)]
    return {
        "damaged": len(damaged),
        "corrupt_found": len(found.corrupt),
        "removed": fixed.removed,
        "recomputed_identical": all(identical),
        "recovered": len(found.corrupt) == len(damaged) == len(cells)
        and all(identical),
    }


def _scenario_runners(seed: int) -> dict[str, Callable[[], dict[str, Any]]]:
    return {
        "kill-shard-worker": lambda: _run_shard_scenario(
            HostFaultPlan(seed=seed, kill_shard=1), "worker-died"
        ),
        # Dies inside an owner-side gate replay — after its status went
        # out but before the foreign completion columns come back, the
        # window where a naive coordinator would wait forever.
        "kill-shard-mid-replay": lambda: _run_shard_scenario(
            HostFaultPlan(seed=seed, kill_replay_shard=0), "worker-died"
        ),
        "stop-shard-worker": lambda: _run_shard_scenario(
            HostFaultPlan(seed=seed, stop_shard=1), "worker-timeout"
        ),
        "slow-shard-worker": lambda: _run_shard_scenario(
            HostFaultPlan(seed=seed, delay_shard=1, delay_s=30.0),
            "worker-timeout",
        ),
        "stall-shard-final": lambda: _run_shard_scenario(
            HostFaultPlan(seed=seed, stall_final=1, delay_s=30.0),
            "worker-hung",
        ),
        "kill-pool-worker": lambda: _run_kill_pool(seed),
        "poison-cell": lambda: _run_poison(seed, hang=False),
        "hang-cell": lambda: _run_poison(seed, hang=True),
        "corrupt-cache": lambda: _run_cache_scenario(seed, "flip"),
        "truncate-cache": lambda: _run_cache_scenario(seed, "truncate"),
    }


def run_host_chaos(
    scenarios: list[str] | None = None,
    *,
    seed: int = 0x0457,
    runs: int = 2,
    report_path: str = "",
    log: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the host-fault sweep; return (and optionally write) the report.

    Each scenario executes ``runs`` times and its outcomes must be equal
    (``deterministic``); ``recovered`` asserts the fault ended in the
    expected recorded outcome with unchanged virtual-time results.  The
    report is free of wall times and paths, so identical invocations are
    byte-identical — ``ok`` is the conjunction of every scenario's
    ``recovered`` and ``deterministic``.
    """
    runners = _scenario_runners(seed)
    names = list(scenarios) if scenarios else list(HOST_SCENARIOS)
    unknown = [n for n in names if n not in runners]
    if unknown:
        raise ValueError(
            f"unknown host chaos scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(HOST_SCENARIOS)})"
        )
    report: dict[str, Any] = {
        "version": 1,
        "kind": "host",
        "seed": seed,
        "runs": runs,
        "scenarios": {},
    }
    ok = True
    for name in names:
        outcomes = [runners[name]() for _ in range(max(1, runs))]
        deterministic = all(o == outcomes[0] for o in outcomes[1:])
        entry = dict(outcomes[0])
        entry["deterministic"] = deterministic
        report["scenarios"][name] = entry
        ok = ok and deterministic and bool(entry.get("recovered"))
        if log is not None:
            status = "ok" if entry["recovered"] else "NOT-RECOVERED"
            if not deterministic:
                status = "NON-DETERMINISTIC"
            detail = ", ".join(
                f"{k}={v}" for k, v in outcomes[0].items() if k != "recovered"
            )
            log(f"  {name:<18s} {status:<17s} {detail}")
    report["ok"] = ok
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
