"""repro.resilience — host-level supervision, retry policy and chaos.

Everything in :mod:`repro.faults` happens *inside virtual time*; this
package is about the **real host**: shard worker processes that hang or
die, harness pool workers killed by the OS, cache files damaged on disk.
It provides

* :class:`RetryPolicy` — capped/seeded backoff, per-cell wall-clock
  deadlines and poisoned-cell quarantine for the experiment harness
  (:class:`QuarantineError` carries the completed partial results);
* supervision primitives (:mod:`repro.resilience.supervise`) used by the
  sharded engine: worker heartbeats, deadline-bounded receives and
  bounded teardown escalation;
* :class:`HostFaultPlan` — deterministic, seeded injection of host
  faults (kill/SIGSTOP/delay shard and pool workers, corrupt or truncate
  cache entries) behind zero-cost hooks;
* the ``repro chaos host`` sweep (:mod:`repro.resilience.chaos`) proving
  every injected host fault terminates with a recorded outcome and
  bit-identical virtual-time results.

See docs/RESILIENCE.md for the supervision model, deadline/quarantine
semantics and exit codes.
"""

from .hostfaults import (
    HostFaultPlan,
    HostFaultPlanError,
    apply_cache_faults,
    installed,
)
from .policy import QuarantinedCell, QuarantineError, RetryPolicy
from .supervise import WorkerTimeout, shutdown_workers

__all__ = [
    "HostFaultPlan",
    "HostFaultPlanError",
    "QuarantineError",
    "QuarantinedCell",
    "RetryPolicy",
    "WorkerTimeout",
    "apply_cache_faults",
    "installed",
    "shutdown_workers",
]
