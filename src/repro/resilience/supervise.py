"""Supervision primitives for shard worker processes.

The sharded engine (:mod:`repro.simmpi.sharded`) forks one worker per
shard and exchanges wave messages over pipes.  Without supervision a
single misbehaving worker — SIGSTOPped, OOM-killed mid-pickle, or spinning
in an infinite user loop that never reaches the wave barrier — parks the
coordinator in an unbounded ``conn.recv()`` forever.  This module bounds
every wait:

* **Heartbeats** (:class:`Heartbeat`): each worker runs a daemon thread
  that periodically sends ``("hb", engine.steps)`` frames on its pipe.  A
  worker that stops beating (stopped or dead process) is detected within
  a few intervals, long before the full wave deadline.
* **Supervised receives** (:func:`recv_supervised`): every coordinator
  read polls with a wall-clock deadline and a heartbeat-gap bound, and
  classifies a miss as ``worker-died`` (process gone), ``worker-timeout``
  (alive but silent during a wave) or ``worker-hung`` (alive but silent
  while finalizing) — the fallback reasons recorded in
  ``SpmdResult.extras["shard_fallback"]``.
* **Bounded teardown** (:func:`shutdown_workers`): join → SIGTERM →
  SIGKILL escalation with a grace period per stage, so even a worker that
  never reads ``("abort",)`` (or cannot, because it is stopped) is gone
  within a bounded time.

Deadlines are wall-clock host time, never virtual time: these are *host*
faults, orthogonal to the virtual-time fault plans of :mod:`repro.faults`
(see docs/RESILIENCE.md for the disambiguation).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Sequence

#: Seconds the coordinator waits for one wave (or final) message per
#: worker before declaring it timed out.
ENV_WAVE_DEADLINE = "REPRO_SHARD_DEADLINE"
DEFAULT_WAVE_DEADLINE = 30.0

#: Seconds between worker heartbeat frames (0/unset = derived).
ENV_HEARTBEAT = "REPRO_SHARD_HEARTBEAT"

#: Grace per teardown-escalation stage (join, terminate, kill).
DEFAULT_TEARDOWN_GRACE = 5.0

#: Heartbeat-gap tolerance, in intervals, before a silent worker is
#: declared timed out.
MISSED_BEATS = 4


def wave_deadline() -> float:
    """Per-message coordinator deadline (``$REPRO_SHARD_DEADLINE``)."""
    try:
        value = float(os.environ.get(ENV_WAVE_DEADLINE, DEFAULT_WAVE_DEADLINE))
    except ValueError:
        return DEFAULT_WAVE_DEADLINE
    return value if value > 0 else DEFAULT_WAVE_DEADLINE


def heartbeat_interval() -> float:
    """Worker heartbeat period (``$REPRO_SHARD_HEARTBEAT`` or derived
    from the wave deadline so the gap bound stays under the deadline)."""
    try:
        value = float(os.environ.get(ENV_HEARTBEAT, "0"))
    except ValueError:
        value = 0.0
    if value > 0:
        return value
    return max(0.05, min(1.0, wave_deadline() / (2 * MISSED_BEATS)))


class WorkerTimeout(Exception):
    """A supervised worker missed its deadline or heartbeat budget.

    ``reason`` is the shard-fallback reason string: ``worker-died``,
    ``worker-timeout`` or ``worker-hung``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Heartbeat:
    """Worker-side heartbeat pump sharing one pipe with the protocol.

    All pipe writes — beats *and* protocol messages — must serialize on
    :attr:`lock` so frames never interleave; use :meth:`send` (or take
    the lock around raw ``conn.send`` calls) for every outbound message.
    """

    def __init__(self, conn, pulse: Callable[[], int],
                 interval: float | None = None) -> None:
        self.conn = conn
        self.lock = threading.Lock()
        self._pulse = pulse
        self.interval = heartbeat_interval() if interval is None else interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="shard-heartbeat", daemon=True
        )

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                with self.lock:
                    self.conn.send(("hb", self._pulse()))
            except (OSError, ValueError, BrokenPipeError):
                return  # pipe gone: the coordinator will notice on its own

    def send(self, obj) -> None:
        """Send one protocol message, serialized against the beats."""
        with self.lock:
            self.conn.send(obj)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def recv_supervised(conn, proc, *, stage: str = "wave",
                    deadline: float | None = None,
                    grace: float | None = None):
    """Receive the next protocol message from a worker, skipping beats.

    Raises :class:`WorkerTimeout` when the worker's process has exited
    (``worker-died``), when no frame of any kind arrives within the
    heartbeat-gap budget or the stage deadline while the process lives
    (``worker-timeout``), or the same during the final-result stage
    (``worker-hung`` — a worker that computed its waves but wedged while
    finalizing, e.g. inside a huge pickle, or never read a command).
    """
    if deadline is None:
        deadline = wave_deadline()
    if grace is None:
        grace = MISSED_BEATS * heartbeat_interval()
    now = time.monotonic()
    hard_end = now + deadline
    last_frame = now
    while True:
        window = min(hard_end, last_frame + grace) - time.monotonic()
        try:
            if window > 0 and conn.poll(window):
                msg = conn.recv()
                if isinstance(msg, tuple) and msg and msg[0] == "hb":
                    last_frame = time.monotonic()
                    continue
                return msg
        except (EOFError, OSError):
            raise WorkerTimeout("worker-died") from None
        now = time.monotonic()
        if now < hard_end and now - last_frame < grace:
            continue  # spurious short window; keep polling
        if not proc.is_alive():
            raise WorkerTimeout("worker-died")
        raise WorkerTimeout(
            "worker-hung" if stage == "final" else "worker-timeout"
        )


def _join_all(procs: Sequence, timeout: float) -> list:
    """Join every process within one shared ``timeout`` budget; return
    the ones still alive."""
    end = time.monotonic() + timeout
    for proc in procs:
        proc.join(timeout=max(0.0, end - time.monotonic()))
    return [proc for proc in procs if proc.is_alive()]


def shutdown_workers(procs: Sequence,
                     grace: float = DEFAULT_TEARDOWN_GRACE) -> str:
    """Tear the workers down within a bounded time, escalating as needed.

    join(grace) → SIGTERM → join(grace) → SIGKILL → join(grace).  SIGKILL
    also collects SIGSTOPped workers (a stopped process queues SIGTERM
    but cannot be terminated by it).  Returns the strongest measure that
    was needed: ``"clean"``, ``"terminated"`` or ``"killed"``.
    """
    alive = _join_all(procs, grace)
    if not alive:
        return "clean"
    for proc in alive:
        proc.terminate()
    alive = _join_all(alive, grace)
    if not alive:
        return "terminated"
    for proc in alive:
        proc.kill()
    _join_all(alive, grace)
    return "killed"
