"""Retry, deadline and quarantine policy for the experiment harness.

The harness survives three kinds of *host* misbehaviour (distinct from the
virtual-time faults of :mod:`repro.faults`, which live inside the
simulation):

* **worker-pool crashes** — a ``ProcessPoolExecutor`` worker dies (OOM
  kill, signal, interpreter abort) and takes the whole pool with it;
* **stuck cells** — a cell exceeds its wall-clock deadline and would
  otherwise occupy a worker forever;
* **poisoned cells** — one cell deterministically kills every pool it is
  submitted to, so naive retry loses the whole batch.

:class:`RetryPolicy` bounds all three: capped, seeded, jittered backoff
between pool rebuilds, a per-cell wall-clock deadline, and a per-cell
attempt budget after which the cell is **quarantined** — removed from the
batch so its siblings can finish.  Quarantine surfaces as
:class:`QuarantineError`, which *carries the completed results* instead of
raising them away; the CLI maps it to exit code 6.

Everything here is deterministic: the backoff jitter is drawn from
``(seed, attempt)``, never from wall time, so two identical failure
sequences sleep identically.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

#: Environment variable supplying the default per-cell wall-clock deadline
#: in seconds (unset or non-positive = no deadline).
ENV_CELL_DEADLINE = "REPRO_CELL_DEADLINE"

#: Environment variable supplying the default idle timeout for streamed
#: serve jobs in seconds (unset = the built-in default; non-positive = no
#: timeout).
ENV_JOB_IDLE_TIMEOUT = "REPRO_JOB_IDLE_TIMEOUT"

#: Default idle timeout for streamed serve jobs (seconds).
DEFAULT_JOB_IDLE_TIMEOUT = 300.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the harness's host-fault recovery.

    Args:
        max_attempts: attempts (crashes or deadline kills attributed to a
            cell) before the cell is quarantined.
        max_pool_crashes: fan-out pool rebuilds before the engine gives up
            entirely and re-raises ``BrokenProcessPool``.
        isolate_after: fan-out pool crashes before the engine switches to
            *isolation mode* — one cell per single-worker pool — so the
            cell that keeps killing the pool can be identified precisely
            instead of blaming the whole batch.
        cell_deadline: wall-clock seconds one cell may *run* (measured
            from when its future starts executing, not from submission);
            ``None`` disables deadlines.
        backoff_base / backoff_cap: exponential backoff between retries,
            ``min(cap, base * 2**(attempt-1))`` seconds.
        backoff_jitter: extra seeded multiplicative jitter in
            ``[0, jitter]`` on top of the capped backoff (decorrelates a
            thrashing host without breaking determinism).
        seed: drives the jitter draws; same (seed, attempt) = same sleep.
        poll_interval: how often the engine polls outstanding futures for
            deadline enforcement and crash attribution.
        job_idle_timeout: wall-clock seconds a *streamed* serve job may
            wait for its next event chunk before it is failed as
            abandoned (``repro serve``; streamed jobs run in threads, so
            the cell deadline's kill path cannot apply to them).
            ``None`` disables the timeout.
    """

    max_attempts: int = 3
    max_pool_crashes: int = 8
    isolate_after: int = 2
    cell_deadline: float | None = None
    backoff_base: float = 0.1
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.5
    seed: int = 0xB0FF
    poll_interval: float = 0.05
    job_idle_timeout: float | None = DEFAULT_JOB_IDLE_TIMEOUT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_pool_crashes < 0:
            raise ValueError("max_pool_crashes must be >= 0")
        if self.isolate_after < 1:
            raise ValueError("isolate_after must be >= 1")
        if self.cell_deadline is not None and self.cell_deadline <= 0:
            raise ValueError("cell_deadline must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.job_idle_timeout is not None and self.job_idle_timeout <= 0:
            raise ValueError("job_idle_timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter for ``attempt``
        (1-based).  Deterministic: no wall-clock or global-RNG input."""
        base = min(
            self.backoff_cap,
            self.backoff_base * (2.0 ** max(0, attempt - 1)),
        )
        u = random.Random(f"{self.seed}:{attempt}").random()
        return base * (1.0 + self.backoff_jitter * u)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy, with ``$REPRO_CELL_DEADLINE`` and
        ``$REPRO_JOB_IDLE_TIMEOUT`` applied."""
        raw = os.environ.get(ENV_CELL_DEADLINE, "")
        try:
            deadline: float | None = float(raw)
        except ValueError:
            deadline = None
        if deadline is not None and deadline <= 0:
            deadline = None
        raw_idle = os.environ.get(ENV_JOB_IDLE_TIMEOUT, "")
        try:
            idle: float | None = float(raw_idle)
        except ValueError:
            idle = DEFAULT_JOB_IDLE_TIMEOUT
        if idle is not None and idle <= 0:
            idle = None
        return cls(cell_deadline=deadline, job_idle_timeout=idle)


@dataclass(frozen=True)
class QuarantinedCell:
    """One cell the harness gave up on, and why."""

    label: str
    digest: str
    attempts: int
    reason: str  # "pool-crash", "deadline", or "cell-error: <exception>"


class QuarantineError(RuntimeError):
    """One or more cells were quarantined; the rest of the batch finished.

    ``results`` is the positional result list of the batch with ``None``
    at every quarantined cell's indices — completed work is preserved, not
    raised away.  ``quarantined`` records each abandoned cell's label,
    digest, attempt count and reason.  The CLI maps this to exit code 6.
    """

    def __init__(self, quarantined: list[QuarantinedCell], results: list):
        self.quarantined = list(quarantined)
        self.results = results
        done = sum(1 for r in results if r is not None)
        detail = "; ".join(
            f"{q.label} ({q.reason} x{q.attempts})" for q in self.quarantined
        )
        super().__init__(
            f"{len(self.quarantined)} cell(s) quarantined after repeated "
            f"host faults ({done}/{len(results)} results completed): "
            f"{detail}"
        )
