"""Deterministic host-fault injection: kill, stop, delay real processes.

Where :mod:`repro.faults` makes things go wrong *inside virtual time*
(crashed ranks, dropped messages), this module attacks the **host-level
machinery itself**: shard worker processes, harness pool workers and
on-disk cache entries.  A :class:`HostFaultPlan` says which process dies,
stops or stalls and when — seeded and reproducible, so the chaos sweep
(``repro chaos host``) can assert that every injected fault ends in a
*recorded* fallback, retry or quarantine, never a hang and never a wrong
answer.

Delivery: :func:`install` serializes the plan into the
``REPRO_HOST_FAULTS`` environment variable, which forked **and** spawned
workers inherit; the hook functions (:func:`shard_wave_hook`,
:func:`shard_final_hook`, :func:`cell_hook`) are called from the
production code paths and are a single dict lookup when no plan is
installed — zero-cost on the happy path.  The installing process's PID is
recorded so a cell fault can never kill the coordinating process when a
cell happens to execute inline.

Cross-process attempt budgets (``attempts`` limits how many executions of
the target cell are injured — 1 models a transient kill, a large budget
models a poisoned cell) count through marker files in ``state_dir``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import random
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: Environment variable carrying the installed plan (JSON + owner PID).
ENV_HOST_FAULTS = "REPRO_HOST_FAULTS"

_UNBOUNDED = 1 << 30


class HostFaultPlanError(ValueError):
    """A host-fault plan failed validation."""


@dataclass(frozen=True)
class HostFaultPlan:
    """Everything allowed to go wrong at the *host* level in one run.

    Shard faults fire inside the targeted shard worker at the start of
    wave ``at_wave`` (1-based); ``stall_final`` fires after the worker
    receives ``("finish",)``, while it is producing its final result.
    Cell faults fire inside whichever pool worker picks the matching cell
    up — ``kill_cell`` SIGKILLs the worker (breaking the pool),
    ``hang_cell`` sleeps ``hang_s`` (tripping the cell deadline).  Cache
    faults are applied to stored entries by :func:`apply_cache_faults`.
    """

    seed: int = 0x0457
    #: shard index to SIGKILL / SIGSTOP / delay at wave ``at_wave``
    kill_shard: int | None = None
    stop_shard: int | None = None
    delay_shard: int | None = None
    delay_s: float = 0.0
    at_wave: int = 1
    #: shard index that stalls (sleeps ``delay_s``) while finalizing
    stall_final: int | None = None
    #: shard index to SIGKILL right before an owner-side gate replay
    kill_replay_shard: int | None = None
    #: digest prefix (or exact label) of the harness cell to injure
    kill_cell: str = ""
    hang_cell: str = ""
    hang_s: float = 0.0
    #: how many executions of the target cell are injured (1 = transient)
    attempts: int = _UNBOUNDED
    #: directory for cross-process attempt markers ("" = no budget)
    state_dir: str = ""
    #: cache-entry corruption mode applied by apply_cache_faults
    cache_mode: str = ""  # "", "flip" or "truncate"

    # -- introspection -----------------------------------------------------

    def is_empty(self) -> bool:
        return (
            self.kill_shard is None
            and self.stop_shard is None
            and self.delay_shard is None
            and self.stall_final is None
            and self.kill_replay_shard is None
            and not self.kill_cell
            and not self.hang_cell
            and not self.cache_mode
        )

    def validate(self) -> None:
        for name in ("kill_shard", "stop_shard", "delay_shard",
                     "stall_final", "kill_replay_shard"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise HostFaultPlanError(f"{name}={value} is negative")
        if self.at_wave < 1:
            raise HostFaultPlanError(f"at_wave={self.at_wave} must be >= 1")
        if self.delay_s < 0 or self.hang_s < 0:
            raise HostFaultPlanError("delays must be non-negative")
        if self.attempts < 1:
            raise HostFaultPlanError(f"attempts={self.attempts} must be >= 1")
        if self.cache_mode not in ("", "flip", "truncate"):
            raise HostFaultPlanError(
                f"cache_mode={self.cache_mode!r} not one of '', 'flip', "
                "'truncate'"
            )
        if self.kill_cell and self.hang_cell:
            raise HostFaultPlanError(
                "kill_cell and hang_cell are mutually exclusive"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HostFaultPlan":
        if not isinstance(data, dict):
            raise HostFaultPlanError(
                f"host-fault plan must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise HostFaultPlanError(
                f"unknown host-fault-plan keys: {', '.join(sorted(unknown))}"
            )
        try:
            plan = cls(**data)
        except (TypeError, ValueError) as exc:
            raise HostFaultPlanError(
                f"malformed host-fault plan: {exc}"
            ) from exc
        plan.validate()
        return plan


# ---------------------------------------------------------------------------
# installation + discovery
# ---------------------------------------------------------------------------


def install(plan: HostFaultPlan) -> None:
    """Arm ``plan`` for this process and every worker it creates."""
    plan.validate()
    payload = plan.to_dict()
    payload["_owner"] = os.getpid()
    os.environ[ENV_HOST_FAULTS] = json.dumps(payload)


def clear() -> None:
    os.environ.pop(ENV_HOST_FAULTS, None)


@contextlib.contextmanager
def installed(plan: HostFaultPlan) -> Iterator[HostFaultPlan]:
    """Context manager: arm ``plan``, disarm on exit."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def active_plan() -> tuple[HostFaultPlan, int] | None:
    """The installed (plan, owner-pid), or None.  Tolerates garbage in the
    environment variable (treated as no plan)."""
    raw = os.environ.get(ENV_HOST_FAULTS)
    if not raw:
        return None
    try:
        data = json.loads(raw)
        owner = int(data.pop("_owner", -1))
        return HostFaultPlan.from_dict(data), owner
    except (ValueError, HostFaultPlanError):
        return None


# ---------------------------------------------------------------------------
# injection hooks (called from production code; no-ops unless armed)
# ---------------------------------------------------------------------------


def shard_wave_hook(shard_index: int, wave: int) -> None:
    """Called by each shard worker at the start of every wave."""
    if ENV_HOST_FAULTS not in os.environ:
        return
    active = active_plan()
    if active is None:
        return
    plan, _owner = active
    if wave != plan.at_wave:
        return
    if plan.kill_shard == shard_index:
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.stop_shard == shard_index:
        os.kill(os.getpid(), signal.SIGSTOP)
    if plan.delay_shard == shard_index and plan.delay_s > 0:
        time.sleep(plan.delay_s)


def shard_replay_hook(shard_index: int) -> None:
    """Called by a shard worker right before an owner-side gate replay."""
    if ENV_HOST_FAULTS not in os.environ:
        return
    active = active_plan()
    if active is None:
        return
    plan, _owner = active
    if plan.kill_replay_shard == shard_index:
        os.kill(os.getpid(), signal.SIGKILL)


def shard_final_hook(shard_index: int) -> None:
    """Called by each shard worker after ``("finish",)``, before the
    final result is sent."""
    if ENV_HOST_FAULTS not in os.environ:
        return
    active = active_plan()
    if active is None:
        return
    plan, _owner = active
    if plan.stall_final == shard_index and plan.delay_s > 0:
        time.sleep(plan.delay_s)


def _matches(plan_target: str, digest: str, label: str) -> bool:
    return bool(plan_target) and (
        digest.startswith(plan_target) or plan_target == label
    )


def _consume_attempt(plan: HostFaultPlan, digest: str) -> bool:
    """True when this execution is within the plan's injury budget."""
    if plan.attempts >= _UNBOUNDED or not plan.state_dir:
        return True
    marker = Path(plan.state_dir) / f"attempts-{digest[:16]}"
    try:
        used = int(marker.read_text())
    except (OSError, ValueError):
        used = 0
    if used >= plan.attempts:
        return False
    try:
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text(str(used + 1))
    except OSError:
        pass
    return True


def cell_hook(digest: str, label: str) -> None:
    """Called by pool workers right before executing a harness cell."""
    if ENV_HOST_FAULTS not in os.environ:
        return
    active = active_plan()
    if active is None:
        return
    plan, owner = active
    if os.getpid() == owner:
        return  # inline execution: never injure the coordinating process
    if _matches(plan.kill_cell, digest, label):
        if _consume_attempt(plan, digest):
            os.kill(os.getpid(), signal.SIGKILL)
    elif _matches(plan.hang_cell, digest, label) and plan.hang_s > 0:
        if _consume_attempt(plan, digest):
            time.sleep(plan.hang_s)


# ---------------------------------------------------------------------------
# cache-entry corruption
# ---------------------------------------------------------------------------


def apply_cache_faults(plan: HostFaultPlan, cache,
                       digests: list[str] | None = None) -> list[str]:
    """Corrupt or truncate stored cache entries per ``plan.cache_mode``.

    Targets the entries for ``digests`` (default: every entry of the
    cache's current generation).  ``flip`` inverts one seeded byte of the
    entry file; ``truncate`` cuts it in half — both are caught by the
    cache's checksum verification and read as observable misses.  Returns
    the paths that were damaged.
    """
    if not plan.cache_mode:
        return []
    if digests is not None:
        paths = [cache.path_for(d) for d in digests]
    else:
        paths = cache.entries()
    damaged: list[str] = []
    for path in paths:
        try:
            blob = bytearray(path.read_bytes())
        except OSError:
            continue
        if not blob:
            continue
        if plan.cache_mode == "flip":
            offset = random.Random(
                f"{plan.seed}:{path.name}"
            ).randrange(len(blob))
            blob[offset] ^= 0xFF
            path.write_bytes(bytes(blob))
        else:  # truncate
            path.write_bytes(bytes(blob[: len(blob) // 2]))
        damaged.append(str(path))
    return damaged
