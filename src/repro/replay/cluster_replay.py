"""Cluster-wide replay checks.

The paper enhances ScalaReplay so that a single lead's trace is replayed by
*all other nodes of its cluster*.  In this reproduction that behaviour is
intrinsic: Chameleon's online compression replaced every lead event's
ranklist with its cluster's ranklist, and the replayer issues an event on
every rank its ranklist covers with endpoints transposed relative to that
rank.  This module provides the validation utilities used by tests and the
accuracy harness to confirm the property actually holds for a given trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scalatrace.trace import Trace
from .replayer import build_schedule


@dataclass(frozen=True)
class CoverageReport:
    """How much of the process space a trace's replay touches."""

    nprocs: int
    ranks_covered: tuple[int, ...]
    ops_per_rank: tuple[int, ...]
    out_of_range_endpoints: int

    @property
    def full_coverage(self) -> bool:
        return len(self.ranks_covered) == self.nprocs

    @property
    def balanced(self) -> float:
        """max/min ops per covered rank (1.0 = perfectly uniform)."""
        active = [c for c in self.ops_per_rank if c > 0]
        if not active:
            return 1.0
        return max(active) / min(active)


def coverage(trace: Trace, nprocs: int | None = None) -> CoverageReport:
    """Analyse which ranks a trace's replay would exercise."""
    nprocs = trace.nprocs if nprocs is None else nprocs
    schedules = build_schedule(trace, nprocs)
    out_of_range = 0
    occurrences: dict[int, int] = {}
    for rec in trace.events():
        idx = occurrences.get(id(rec), 0)
        occurrences[id(rec)] = idx + 1
        for r in rec.participants.ranks():
            if r >= nprocs:
                continue
            for ep in (rec.dest, rec.src):
                if ep is None:
                    continue
                target = ep.resolve(r, idx)
                if target is None or not (0 <= target < nprocs):
                    out_of_range += 1
    ops = tuple(len(s) for s in schedules)
    covered = tuple(r for r, n in enumerate(ops) if n > 0)
    return CoverageReport(
        nprocs=nprocs,
        ranks_covered=covered,
        ops_per_rank=ops,
        out_of_range_endpoints=out_of_range,
    )


def events_by_rank(trace: Trace, nprocs: int | None = None) -> list[int]:
    """Number of trace events each rank participates in."""
    nprocs = trace.nprocs if nprocs is None else nprocs
    counts = [0] * nprocs
    for rec in trace.events():
        for r in rec.participants.ranks():
            if r < nprocs:
                counts[r] += 1
    return counts
