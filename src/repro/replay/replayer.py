"""ScalaReplay: interpret compressed traces and re-issue their MPI calls.

The replay engine walks a (global) trace, and every replaying rank:

* expands the PRSD loops on the fly,
* replays only the events whose ranklist contains it,
* transposes endpoint parameters relative to its own task ID (the traces
  store ScalaTrace's relative encodings, so a lead's trace replays correctly
  on *every* member of its cluster — the paper's enhanced cluster replay
  falls out of this property),
* simulates computation with sleeps drawn from the delta-time histograms,
* issues the communication through the simulated MPI runtime, so the replay
  time includes real (virtual) communication costs.

Replay happens in two passes.  Pass 1 builds each rank's operation schedule
locally; a reconciliation step then drops point-to-point operations with no
counterpart (impossible for exact traces, possible when clustering merged
heterogeneous behaviour — the count is reported as a fidelity statistic and
contributes to the paper's <100% accuracy).  Pass 2 executes the schedule
under the simulator, which is deadlock-free by construction after
reconciliation.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field

from ..scalatrace.events import EventRecord, Op
from ..scalatrace.trace import Trace
from ..simmpi.collectives import Communicator
from ..simmpi.comm import ANY_SOURCE
from ..simmpi.launcher import RankContext, run_spmd
from ..simmpi.simconfig import SimConfig
from ..simmpi.timing import NetworkModel, QDR_CLUSTER

#: tag used for all replayed point-to-point traffic
REPLAY_TAG = 7

_COLLECTIVE_OPS = {
    Op.BARRIER,
    Op.BCAST,
    Op.REDUCE,
    Op.ALLREDUCE,
    Op.GATHER,
    Op.SCATTER,
    Op.ALLGATHER,
    Op.ALLTOALL,
    Op.SCAN,
}


@dataclass
class ReplayOp:
    """One scheduled operation for one replaying rank."""

    kind: str  # "send" | "recv" | "coll"
    sleep: float  # pre-op computation
    size: int
    peer: int | None = None  # send/recv: transposed endpoint (None=wildcard)
    op: Op | None = None  # collectives: which one
    group: tuple[int, ...] | None = None  # collectives: participant ranks
    root: int = 0
    key: tuple | None = None  # collectives: (op, stack_sig, comm) identity


@dataclass
class ReplayStats:
    ops_scheduled: int = 0
    ops_issued: int = 0
    p2p_dropped: int = 0
    collectives: int = 0
    sends: int = 0
    recvs: int = 0
    deadlock_repairs: int = 0  # ops removed by deadlock recovery


@dataclass
class ReplayResult:
    """Outcome of replaying one trace."""

    time: float  # makespan (the paper's replay wall-clock)
    clocks: list[float]
    stats: ReplayStats
    total_messages: int = 0
    total_bytes: int = 0


def _mean_int(stat) -> int:
    return max(int(round(stat.mean)), 0) if stat.n else 0


def build_schedule(
    trace: Trace,
    nprocs: int,
    timing: str = "mean",
    seed: int = 0x5CA1AB1E,
) -> list[list[ReplayOp]]:
    """Pass 1: expand the trace into a per-rank operation schedule.

    Loop expansion yields each compressed record once per iteration; the
    per-record occurrence counter drives strided endpoint patterns (a master
    whose sends were compressed to ``dest = rank+1+i mod (P-1)`` fans back
    out to all workers).

    ``timing`` selects the compute-gap model: ``"mean"`` (deterministic,
    preserves total time exactly) or ``"sampled"`` (per-occurrence draws
    from the delta-time histograms — the probabilistic replay of Wu et
    al. [27]; seeded, so still reproducible).
    """
    if timing not in ("mean", "sampled"):
        raise ValueError(f"unknown timing mode {timing!r}")
    rng = random.Random(seed) if timing == "sampled" else None
    schedules: list[list[ReplayOp]] = [[] for _ in range(nprocs)]
    occurrences: dict[int, int] = {}
    for rec in trace.events():
        idx = occurrences.get(id(rec), 0)
        occurrences[id(rec)] = idx + 1
        _schedule_record(rec, idx, nprocs, schedules, rng)
    return schedules


def _resolve(ep, rank: int, occurrence: int, nprocs: int) -> int | None:
    """Absolute, in-range endpoint or None (wildcard / out of range)."""
    if ep is None:
        return None
    target = ep.resolve(rank, occurrence)
    if target is None or not (0 <= target < nprocs):
        return -1  # sentinel: endpoint exists but is unreplayable
    return target


def _schedule_record(
    rec: EventRecord,
    occurrence: int,
    nprocs: int,
    schedules: list[list[ReplayOp]],
    rng=None,
) -> None:
    members = [r for r in rec.participants.ranks() if r < nprocs]
    if not members:
        return
    sleep = rec.dhist.draw(rng) if rng is not None else rec.dhist.sample()
    size = _mean_int(rec.count)

    if rec.op in _COLLECTIVE_OPS:
        group = tuple(members)
        root = rec.root if rec.root is not None else group[0]
        if root not in group:
            root = group[0]
        key = (rec.op.value, rec.stack_sig, rec.comm_id)
        for r in members:
            schedules[r].append(
                ReplayOp(
                    "coll", sleep, size, op=rec.op, group=group, root=root,
                    key=key,
                )
            )
        return

    if rec.op in (Op.SEND, Op.ISEND):
        for r in members:
            dest = _resolve(rec.dest, r, occurrence, nprocs)
            if dest is None or dest < 0:
                continue
            schedules[r].append(ReplayOp("send", sleep, size, peer=dest))
        return

    if rec.op in (Op.RECV, Op.IRECV):
        for r in members:
            src = _resolve(rec.src, r, occurrence, nprocs)
            if src is not None and src < 0:
                continue
            schedules[r].append(ReplayOp("recv", sleep, size, peer=src))
        return

    if rec.op is Op.SENDRECV:
        for r in members:
            dest = _resolve(rec.dest, r, occurrence, nprocs)
            src = _resolve(rec.src, r, occurrence, nprocs)
            if dest is not None and dest >= 0:
                schedules[r].append(ReplayOp("send", sleep, size, peer=dest))
                # the paired receive carries no extra compute gap
                sleep_recv = 0.0
            else:
                sleep_recv = sleep
            if src is None or src >= 0:
                schedules[r].append(
                    ReplayOp("recv", sleep_recv, size, peer=src)
                )
        return
    # MARKER / FINALIZE: tracing artefacts, nothing to replay.


def coalesce_collectives(schedules: list[list[ReplayOp]]) -> int:
    """Reunify collective instances that compression split across variants.

    One source-level collective (identified by ``(op, stack_sig, comm)``)
    can appear as several trace records with partial participant groups when
    different position classes fold into different loop shapes.  Replaying
    those as independent sub-group collectives loses the original global
    synchronization and can even deadlock against interleaved point-to-point
    ordering.  This pass aligns each rank's *i*-th occurrence of a collective
    key with every other rank's *i*-th occurrence and rebuilds the true
    participant group: ``group_i = { r : rank r has > i occurrences }``.

    Returns the number of operations whose group changed.
    """
    nprocs = len(schedules)
    counts: dict[tuple, list[int]] = defaultdict(lambda: [0] * nprocs)
    for r, sched in enumerate(schedules):
        for op in sched:
            if op.kind == "coll" and op.key is not None:
                counts[op.key][r] += 1
    groups_by_key: dict[tuple, list[tuple[int, ...]]] = {}
    for key, per_rank in counts.items():
        max_occ = max(per_rank)
        groups_by_key[key] = [
            tuple(r for r in range(nprocs) if per_rank[r] > i)
            for i in range(max_occ)
        ]
    changed = 0
    seen: dict[tuple, list[int]] = defaultdict(lambda: [0] * nprocs)
    for r, sched in enumerate(schedules):
        for op in sched:
            if op.kind != "coll" or op.key is None:
                continue
            i = seen[op.key][r]
            seen[op.key][r] = i + 1
            group = groups_by_key[op.key][i]
            if group != op.group:
                changed += 1
                op.group = group
                if op.root not in group:
                    op.root = group[0]
    return changed


def reconcile(schedules: list[list[ReplayOp]]) -> int:
    """Drop point-to-point ops with no counterpart; returns dropped count.

    Counts sends per (src → dst) and receives per (dst ← src); the excess on
    either side is removed from the tail.  Wildcard receives are matched
    against any leftover inbound sends.
    """
    nprocs = len(schedules)
    sends: dict[tuple[int, int], int] = defaultdict(int)
    recvs: dict[tuple[int, int], int] = defaultdict(int)
    wild: dict[int, int] = defaultdict(int)
    for r, sched in enumerate(schedules):
        for op in sched:
            if op.kind == "send":
                sends[(r, op.peer)] += 1
            elif op.kind == "recv":
                if op.peer is None:
                    wild[r] += 1
                else:
                    recvs[(op.peer, r)] += 1

    # match directed pairs, then wildcard receivers soak up leftovers
    drop_send: dict[tuple[int, int], int] = {}
    drop_recv: dict[tuple[int, int], int] = {}
    leftover_in: dict[int, int] = defaultdict(int)
    for key in set(sends) | set(recvs):
        s, q = sends.get(key, 0), recvs.get(key, 0)
        if s > q:
            leftover_in[key[1]] += s - q
        elif q > s:
            drop_recv[key] = q - s
    for dst in set(wild) | set(leftover_in):
        w, l = wild.get(dst, 0), leftover_in.get(dst, 0)
        if w > l:
            # too many wildcard receives: drop the excess
            drop_recv[(None, dst)] = w - l  # type: ignore[index]
        elif l > w:
            # unmatched inbound sends: drop them at their sources
            need = l - w
            for (src, d), cnt in sends.items():
                if d != dst or need <= 0:
                    continue
                unmatched = cnt - recvs.get((src, d), 0)
                take = min(max(unmatched, 0), need)
                if take:
                    drop_send[(src, d)] = drop_send.get((src, d), 0) + take
                    need -= take

    dropped = 0
    for r, sched in enumerate(schedules):
        kept: list[ReplayOp] = []
        for op in reversed(sched):  # drop from the tail
            if op.kind == "send" and drop_send.get((r, op.peer), 0) > 0:
                drop_send[(r, op.peer)] -= 1
                dropped += 1
                continue
            if op.kind == "recv":
                key = (op.peer, r) if op.peer is not None else (None, r)
                if drop_recv.get(key, 0) > 0:
                    drop_recv[key] -= 1  # type: ignore[index]
                    dropped += 1
                    continue
            kept.append(op)
        kept.reverse()
        schedules[r] = kept
    return dropped


def _collective_groups(schedules: list[list[ReplayOp]]) -> list[tuple[int, ...]]:
    """Distinct non-world participant groups, in deterministic order."""
    groups = {
        op.group
        for sched in schedules
        for op in sched
        if op.kind == "coll" and op.group is not None
    }
    return sorted(groups)


async def _issue_collective(
    comm: Communicator, op: ReplayOp, world_size: int
) -> None:
    group = op.group or tuple(range(comm.size))
    root_local = group.index(op.root) if op.root in group else 0
    size = op.size
    kind = op.op
    if kind is Op.BARRIER:
        await comm.barrier()
    elif kind is Op.BCAST:
        await comm.bcast(None, root=root_local, size=size)
    elif kind is Op.REDUCE:
        await comm.reduce(0.0, root=root_local, size=size)
    elif kind is Op.ALLREDUCE:
        await comm.allreduce(0.0, size=size)
    elif kind is Op.GATHER:
        await comm.gather(0.0, root=root_local, size=size)
    elif kind is Op.SCATTER:
        values = [None] * comm.size if comm.rank == root_local else None
        await comm.scatter(values, root=root_local, size=size)
    elif kind is Op.ALLGATHER:
        await comm.allgather(0.0, size=size)
    elif kind is Op.ALLTOALL:
        await comm.alltoall([None] * comm.size, size=size)
    elif kind is Op.SCAN:
        await comm.scan(0.0, size=size)
    else:  # pragma: no cover - schedule builder filters ops
        raise ValueError(f"unsupported collective {kind}")


def replay_trace(
    trace: Trace,
    nprocs: int | None = None,
    network: NetworkModel = QDR_CLUSTER,
    timing: str = "mean",
    seed: int = 0x5CA1AB1E,
) -> ReplayResult:
    """Replay a trace on the simulated runtime and time it."""
    nprocs = trace.nprocs if nprocs is None else nprocs
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    schedules = build_schedule(trace, nprocs, timing=timing, seed=seed)
    stats = ReplayStats(ops_scheduled=sum(len(s) for s in schedules))
    coalesce_collectives(schedules)
    stats.p2p_dropped = reconcile(schedules)
    world = tuple(range(nprocs))

    def attempt(run_schedules: list[list[ReplayOp]], progress: list[int]):
        groups = _collective_groups(run_schedules)

        async def main(ctx: RankContext):
            subcomms: dict[tuple[int, ...], Communicator] = {}
            for group in groups:
                if group == world:
                    subcomms[group] = ctx.comm
                    continue
                color = 0 if ctx.rank in group else -1
                sub = await ctx.comm.split(color, key=ctx.rank)
                if sub is not None:
                    subcomms[group] = sub
            my_stats = ReplayStats()
            pending = []  # outstanding sends: waited at the end so exchange
            # patterns recorded as send+recv cannot rendezvous-deadlock
            for i, op in enumerate(run_schedules[ctx.rank]):
                progress[ctx.rank] = i
                if op.sleep > 0:
                    ctx.compute(op.sleep)
                if op.kind == "send":
                    pending.append(
                        ctx.comm.isend(
                            op.peer, None, tag=REPLAY_TAG, size=op.size
                        )
                    )
                    my_stats.sends += 1
                elif op.kind == "recv":
                    src = ANY_SOURCE if op.peer is None else op.peer
                    await ctx.comm.recv(src, tag=REPLAY_TAG)
                    my_stats.recvs += 1
                else:
                    comm = subcomms.get(op.group or world, ctx.comm)
                    await _issue_collective(comm, op, nprocs)
                    my_stats.collectives += 1
                my_stats.ops_issued += 1
            progress[ctx.rank] = len(run_schedules[ctx.rank])
            for req in pending:
                await req.wait()
            return (
                my_stats.ops_issued,
                my_stats.sends,
                my_stats.recvs,
                my_stats.collectives,
            )

        return run_spmd(main, nprocs, config=SimConfig(network=network))

    # Deadlock repair: clustered traces can carry endpoint substitutions
    # that mis-target a few messages (the paper's <100% accuracy); if the
    # resulting schedule wedges, remove the blocked operations and retry.
    # Lossy clustering can likewise leave ranks disagreeing on a
    # collective's identity (e.g. different recorded roots); the gate
    # surfaces that as CollectiveMismatchError, repaired the same way but
    # touching only the disagreeing collective instances.  Each round
    # removes >= 1 op, so this terminates.
    from ..simmpi.errors import (
        CollectiveMismatchError,
        DeadlockError,
        TaskFailedError,
    )

    result = None
    for _round in range(stats.ops_scheduled + 1):
        progress = [0] * nprocs
        try:
            result = attempt(schedules, progress)
            break
        except DeadlockError:
            removed = _repair_deadlock(schedules, progress)
            if removed == 0:
                raise
            stats.deadlock_repairs += removed
            stats.p2p_dropped += removed
        except TaskFailedError as exc:
            if not isinstance(exc.original, CollectiveMismatchError):
                raise
            removed = _repair_deadlock(schedules, progress,
                                       colls_only=True)
            if removed == 0:
                raise
            # Collective instances are not p2p ops: count them as repairs
            # only, so the p2p_dropped accounting keeps its meaning.
            stats.deadlock_repairs += removed
    assert result is not None
    for issued, sends, recvs, colls in result.results:
        stats.ops_issued += issued
        stats.sends += sends
        stats.recvs += recvs
        stats.collectives += colls
    return ReplayResult(
        time=result.max_time,
        clocks=result.clocks,
        stats=stats,
        total_messages=result.total_messages,
        total_bytes=result.total_bytes,
    )


def _repair_deadlock(
    schedules: list[list[ReplayOp]], progress: list[int],
    colls_only: bool = False,
) -> int:
    """Remove the operations the deadlocked ranks were blocked on.

    A blocked receive is simply dropped.  A blocked collective instance is
    dropped from *every* rank that has not executed it yet (identified by
    its key and per-rank instance index), keeping the collective sequence
    aligned.  Returns the number of removed operations.

    With ``colls_only`` (the collective-mismatch abort, where ranks not
    parked in the disputed gate were interrupted mid-flight, not blocked)
    only collective instances are removed — a receive at a rank's progress
    cursor may have been about to complete normally.
    """
    removed = 0
    colls_to_drop: list[tuple[tuple, int]] = []  # (key, instance index)
    for rank, sched in enumerate(schedules):
        i = progress[rank]
        if i >= len(sched):
            continue
        op = sched[i]
        if op.kind == "recv":
            if colls_only:
                continue
            del sched[i]
            removed += 1
        elif op.kind == "coll" and op.key is not None:
            instance = sum(
                1 for prior in sched[:i] if prior.kind == "coll"
                and prior.key == op.key
            )
            colls_to_drop.append((op.key, instance))
        # blocked sends resolve at the end; they cannot wedge mid-schedule
    for key, instance in set(colls_to_drop):
        for rank, sched in enumerate(schedules):
            for idx in range(progress[rank], len(sched)):
                op = sched[idx]
                if op.kind == "coll" and op.key == key:
                    prior = sum(
                        1 for p in sched[:idx]
                        if p.kind == "coll" and p.key == key
                    )
                    if prior == instance:
                        del sched[idx]
                        removed += 1
                        break
    return removed
