"""repro.replay — ScalaReplay: trace interpretation and timed replay.

Replays compressed traces on the simulated MPI runtime, including the
paper's cluster-wide replay (a lead's trace re-interpreted by every member
of its cluster with endpoint transposition), and computes the replay
accuracy metric used in Figures 5 and 7.
"""

from .accuracy import AccuracyReport, accuracy
from .cluster_replay import CoverageReport, coverage, events_by_rank
from .extrapolate import ExtrapolationReport, extrapolate_trace
from .timeline import Interval, Timeline, reconstruct_timeline
from .replayer import (
    REPLAY_TAG,
    ReplayOp,
    ReplayResult,
    ReplayStats,
    build_schedule,
    coalesce_collectives,
    reconcile,
    replay_trace,
)

__all__ = [
    "AccuracyReport",
    "CoverageReport",
    "ExtrapolationReport",
    "Interval",
    "REPLAY_TAG",
    "Timeline",
    "ReplayOp",
    "ReplayResult",
    "ReplayStats",
    "accuracy",
    "build_schedule",
    "coalesce_collectives",
    "coverage",
    "events_by_rank",
    "extrapolate_trace",
    "reconcile",
    "reconstruct_timeline",
    "replay_trace",
]
