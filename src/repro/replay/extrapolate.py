"""Trace extrapolation to larger process counts (ScalaExtrap-lite).

ScalaTrace's location-independent encodings were designed so that traces
generalize across scales (Wu & Mueller, ScalaExtrap [28]: "trace-based
communication extrapolation for SPMD programs").  This module implements
the 1-D core of that idea: given a global trace collected at ``P`` ranks,
produce a trace for ``P' > P`` by rescaling the *rank-population* artefacts
while leaving the location-independent parts untouched:

* **participants**: ranklists are classified as world / prefix / suffix /
  interior-band / strided-to-end patterns and re-extended to the new size
  (a suffix ``{P-2, P-1}`` becomes ``{P'-2, P'-1}``, the world ranklist
  ``<0,(P,1)>`` becomes ``<0,(P',1)>``, ...);
* **endpoints**: relative offsets transfer verbatim (that is the point of
  the encoding); absolute endpoints anchored near rank 0 stay, ones
  anchored at the tail shift with the size; strided fan-out patterns of
  length ``P−1`` (master-worker) stretch to ``P'−1``;
* everything else (call sites, loop structure, histograms, byte counts)
  is scale-invariant for SPMD codes and is copied.

Full ScalaExtrap fits geometric models over *several* input scales and can
extrapolate multi-dimensional decompositions; this lite version covers 1-D
and hub topologies exactly and leaves 2-D grids to the caller (the report
flags ranklists it could only copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scalatrace.endpoint import EndpointStat
from ..scalatrace.ranklist import Ranklist, RankSet
from ..scalatrace.rsd import LoopNode, TraceNode
from ..scalatrace.trace import Trace


@dataclass
class ExtrapolationReport:
    """What the extrapolation did (and could not do)."""

    old_nprocs: int
    new_nprocs: int
    scaled_ranklists: int = 0
    copied_ranklists: int = 0
    scaled_endpoints: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = self.scaled_ranklists + self.copied_ranklists
        return self.scaled_ranklists / total if total else 1.0


def _scale_ranklist(
    rl: Ranklist, old_p: int, new_p: int, report: ExtrapolationReport
) -> list[int]:
    """New member ranks for one ranklist (may return the old members)."""
    dp = new_p - old_p
    if rl.dimension == 0:
        # singleton: anchored at the front stays, anchored at the back moves
        rank = rl.start
        if rank >= old_p / 2:
            report.scaled_ranklists += 1
            return [rank + dp]
        report.scaled_ranklists += 1
        return [rank]
    if rl.dimension == 1:
        (n, stride) = rl.dims[0]
        start = rl.start
        end = start + (n - 1) * stride
        if stride > 0:
            front, back = start, old_p - 1 - end
            if front >= 0 and back >= 0 and front + back < new_p:
                # a band [front .. P-1-back]: stretch the population
                new_n = (new_p - front - back - 1) // stride + 1
                if new_n >= 1:
                    report.scaled_ranklists += 1
                    return [front + i * stride for i in range(new_n)]
    report.copied_ranklists += 1
    report.notes.append(f"copied ranklist {rl} (unsupported shape)")
    return list(rl.members())


def _scale_rankset(
    rs: RankSet, old_p: int, new_p: int, report: ExtrapolationReport
) -> RankSet:
    members: list[int] = []
    for rl in rs.ranklists:
        members.extend(_scale_ranklist(rl, old_p, new_p, report))
    return RankSet(m for m in members if 0 <= m < new_p)


def _scale_endpoint(
    ep: EndpointStat | None, old_p: int, new_p: int, report: ExtrapolationReport
) -> EndpointStat | None:
    if ep is None:
        return None
    out = ep.copy()
    dp = new_p - old_p
    if out.abs_ is not None and out.abs_ >= old_p / 2:
        # tail-anchored absolute endpoint (e.g. "last rank") moves
        out.abs_ = out.abs_ + dp
        report.scaled_endpoints += 1
    if out.pattern is not None and out.pattern.stride not in (None, 0):
        p = out.pattern
        span = p.length  # e.g. a master fanning out to P-1 workers
        if span in (old_p - 1, old_p):
            p.length = span + dp
            p.n = p.length  # one fresh cycle at the new scale
            report.scaled_endpoints += 1
    return out


def _scale_loops(
    nodes: list[TraceNode], old_p: int, new_p: int, report: ExtrapolationReport
) -> None:
    """Rescale loop trip counts that are functions of the process count.

    Hub codes iterate communication loops ``P-1`` (or ``P``) times per
    round (a master dispatching one message per worker); those trip counts
    must follow the new size or the stretched endpoint patterns would be
    driven for too few occurrences.  Full ScalaExtrap fits these models
    from several scales; the lite heuristic rescales exact ``P``/``P-1``
    matches (guarded to ``P >= 4`` to avoid colliding with small constant
    loops).
    """
    if old_p < 4:
        return
    for node in nodes:
        if isinstance(node, LoopNode):
            if node.iters == old_p - 1:
                node.iters = new_p - 1
                report.notes.append("scaled P-1 loop")
            elif node.iters == old_p:
                node.iters = new_p
                report.notes.append("scaled P loop")
            _scale_loops(node.body, old_p, new_p, report)


def extrapolate_trace(
    trace: Trace, new_nprocs: int
) -> tuple[Trace, ExtrapolationReport]:
    """Extrapolate a global trace to a larger process count.

    Returns the new trace plus a report of what was rescaled.  Raises
    ValueError when shrinking is requested (unsupported: information about
    removed ranks cannot be invented away consistently).
    """
    old_p = trace.nprocs
    if new_nprocs < old_p:
        raise ValueError("extrapolation only grows the process count")
    report = ExtrapolationReport(old_nprocs=old_p, new_nprocs=new_nprocs)
    out = trace.copy()
    out.nprocs = new_nprocs
    if new_nprocs == old_p:
        return out, report
    _scale_loops(out.nodes, old_p, new_nprocs, report)
    for leaf in out.leaves():
        rec = leaf.record
        rec.participants = _scale_rankset(
            rec.participants, old_p, new_nprocs, report
        )
        rec.src = _scale_endpoint(rec.src, old_p, new_nprocs, report)
        rec.dest = _scale_endpoint(rec.dest, old_p, new_nprocs, report)
        if rec.root is not None and rec.root >= old_p / 2:
            rec.root += new_nprocs - old_p
    out.origin = RankSet(range(new_nprocs))
    return out, report
