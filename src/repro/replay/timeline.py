"""Per-rank timeline reconstruction from a timed replay (mini-Vampir).

Classic trace visualizers (Vampir, Tau's traces — the tools the paper's
introduction contrasts with) show per-rank Gantt charts of compute and
communication intervals.  This module reconstructs those intervals from a
replayed trace on the simulator and renders an ASCII Gantt view —
"lossless" detail recovered from the compressed representation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scalatrace.trace import Trace
from ..simmpi.comm import ANY_SOURCE
from ..simmpi.launcher import run_spmd
from ..simmpi.simconfig import SimConfig
from ..simmpi.timing import NetworkModel, QDR_CLUSTER
from .replayer import REPLAY_TAG, _issue_collective, build_schedule, \
    coalesce_collectives, reconcile


@dataclass(frozen=True)
class Interval:
    """One activity span on a rank's timeline."""

    kind: str  # "compute" | "send" | "recv" | "coll"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Per-rank interval lists plus the makespan."""

    intervals: list[list[Interval]]
    makespan: float

    @property
    def nprocs(self) -> int:
        return len(self.intervals)

    def busy_fraction(self, rank: int) -> float:
        if self.makespan == 0:
            return 0.0
        busy = sum(
            iv.duration for iv in self.intervals[rank] if iv.kind == "compute"
        )
        return busy / self.makespan

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart: '=' compute, '>' send, '<' recv, '#'
        collective, '.' idle."""
        if self.makespan <= 0:
            return "(empty timeline)"
        rows = []
        for rank, ivs in enumerate(self.intervals):
            cells = ["."] * width
            for iv in ivs:
                lo = int(iv.start / self.makespan * (width - 1))
                hi = max(int(iv.end / self.makespan * (width - 1)), lo)
                ch = {"compute": "=", "send": ">", "recv": "<", "coll": "#"}[
                    iv.kind
                ]
                for i in range(lo, hi + 1):
                    cells[i] = ch
            rows.append(f"rank {rank:4d} |{''.join(cells)}|")
        rows.append(
            f"{'':10s} 0{'':{width - 10}s}{self.makespan:.3e}s"
        )
        return "\n".join(rows)


def reconstruct_timeline(
    trace: Trace,
    nprocs: int | None = None,
    network: NetworkModel = QDR_CLUSTER,
) -> Timeline:
    """Replay a trace and capture per-rank activity intervals."""
    nprocs = trace.nprocs if nprocs is None else nprocs
    schedules = build_schedule(trace, nprocs)
    coalesce_collectives(schedules)
    reconcile(schedules)
    groups = {
        op.group
        for sched in schedules
        for op in sched
        if op.kind == "coll" and op.group is not None
    }
    world = tuple(range(nprocs))
    recorded: list[list[Interval]] = [[] for _ in range(nprocs)]

    async def main(ctx):
        subcomms = {}
        for group in sorted(groups):
            if group == world:
                subcomms[group] = ctx.comm
                continue
            color = 0 if ctx.rank in group else -1
            sub = await ctx.comm.split(color, key=ctx.rank)
            if sub is not None:
                subcomms[group] = sub
        pending = []
        mine = recorded[ctx.rank]
        for op in schedules[ctx.rank]:
            if op.sleep > 0:
                t0 = ctx.clock
                ctx.compute(op.sleep)
                mine.append(Interval("compute", t0, ctx.clock))
            t0 = ctx.clock
            if op.kind == "send":
                pending.append(
                    ctx.comm.isend(op.peer, None, tag=REPLAY_TAG, size=op.size)
                )
                mine.append(Interval("send", t0, ctx.clock))
            elif op.kind == "recv":
                src = ANY_SOURCE if op.peer is None else op.peer
                await ctx.comm.recv(src, tag=REPLAY_TAG)
                mine.append(Interval("recv", t0, ctx.clock))
            else:
                comm = subcomms.get(op.group or world, ctx.comm)
                await _issue_collective(comm, op, nprocs)
                mine.append(Interval("coll", t0, ctx.clock))
        for req in pending:
            await req.wait()
        return None

    result = run_spmd(main, nprocs, config=SimConfig(network=network))
    return Timeline(intervals=recorded, makespan=result.max_time)
