"""Replay accuracy metric (paper §V):  ``ACC = 1 - |t - t'| / t``.

``t`` is the replay time of the unclustered (ScalaTrace) trace and ``t'``
the replay time of the clustered (Chameleon) trace; the paper also reports
both against the uninstrumented application time.
"""

from __future__ import annotations

from dataclasses import dataclass


def accuracy(reference_time: float, measured_time: float) -> float:
    """``1 - |t - t'| / t`` (1.0 when the reference time is zero and the
    measurement matches; 0 floor is NOT applied — large errors can go
    negative, which the caller should treat as 0% accuracy)."""
    if reference_time == 0.0:
        return 1.0 if measured_time == 0.0 else 0.0
    return 1.0 - abs(reference_time - measured_time) / reference_time


@dataclass(frozen=True)
class AccuracyReport:
    """Replay-accuracy comparison for one workload/P configuration."""

    app_time: float
    scalatrace_replay_time: float
    chameleon_replay_time: float

    @property
    def chameleon_vs_scalatrace(self) -> float:
        """The paper's ACC: clustered vs unclustered replay."""
        return accuracy(self.scalatrace_replay_time, self.chameleon_replay_time)

    @property
    def chameleon_vs_app(self) -> float:
        return accuracy(self.app_time, self.chameleon_replay_time)

    @property
    def scalatrace_vs_app(self) -> float:
        return accuracy(self.app_time, self.scalatrace_replay_time)

    def row(self) -> dict:
        return {
            "app": self.app_time,
            "replay_scalatrace": self.scalatrace_replay_time,
            "replay_chameleon": self.chameleon_replay_time,
            "acc_vs_scalatrace": self.chameleon_vs_scalatrace,
            "acc_vs_app": self.chameleon_vs_app,
        }
