"""Declarative fault plans for the simulated runtime.

A :class:`FaultPlan` says *what goes wrong and when*, separately from the
mechanics of making it happen (:mod:`repro.faults.injector`):

* :class:`CrashFault` — a rank stops executing at virtual time ``t`` (the
  engine parks it as FAILED at its next scheduling point; siblings keep
  running).
* :class:`MessageFaults` — per-message drop / duplicate / delay with seeded
  probabilities.  Drops model a lossy transport with bounded retransmission:
  each dropped attempt adds ``retry_delay`` to the arrival time, and a
  message dropped more than ``max_retries`` times is lost for good (the
  receiver is released with :data:`~repro.faults.injector.LOST` after the
  plan's ``op_timeout``).
* :class:`LinkFault` — a directed link's latency/bandwidth degraded by a
  constant factor.
* :class:`ComputeFault` — a rank's ``compute()`` calls scaled by a constant
  ``slowdown`` plus seeded multiplicative ``jitter`` (the spontaneous-noise
  model of Döhmen et al.).

Plans are plain frozen dataclasses: picklable (they travel to worker
processes inside harness cells), JSON round-trippable (the CLI's
``--faults PLAN.json``), and hashable into the run-cache digest.  An empty
plan is guaranteed to be a no-op: the injector stays inactive and every
virtual timestamp is bit-identical to a run without fault support.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any


class FaultPlanError(ValueError):
    """A fault plan failed validation (bad rank, probability, or schema)."""


@dataclass(frozen=True)
class CrashFault:
    """Rank ``rank`` crashes at the first scheduling point at or after
    virtual time ``time`` (seconds)."""

    rank: int
    time: float


@dataclass(frozen=True)
class MessageFaults:
    """Seeded per-message perturbations applied to eager messages."""

    drop_prob: float = 0.0  # per-attempt probability of losing the payload
    dup_prob: float = 0.0  # duplicate on the wire (deduplicated, counted)
    delay_prob: float = 0.0  # probability of an extra in-flight delay
    delay: float = 1e-4  # seconds added when a delay fires
    max_retries: int = 3  # retransmissions before the message is lost
    retry_delay: float = 1e-4  # seconds added per retransmission


@dataclass(frozen=True)
class LinkFault:
    """Directed link ``src -> dest`` degraded by constant factors."""

    src: int
    dest: int
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0  # >1 means slower transfers


@dataclass(frozen=True)
class ComputeFault:
    """Rank ``rank``'s computation scaled by ``slowdown`` and jittered."""

    rank: int
    slowdown: float = 1.0  # constant multiplier on compute() durations
    jitter: float = 0.0  # extra seeded multiplicative noise in [0, jitter]


@dataclass(frozen=True)
class FaultPlan:
    """Everything that is allowed to go wrong in one run.

    ``seed`` drives every probabilistic draw; the same (seed, plan) pair
    produces byte-identical runs.  ``op_timeout`` is the virtual-time bound
    after which an operation orphaned by a fault (receive from a crashed
    rank, permanently lost message) is released with ``LOST`` instead of
    hanging the run.
    """

    seed: int = 0xFA017
    crashes: tuple[CrashFault, ...] = ()
    messages: MessageFaults = field(default_factory=MessageFaults)
    links: tuple[LinkFault, ...] = ()
    compute: tuple[ComputeFault, ...] = ()
    op_timeout: float = 0.05

    # -- introspection -----------------------------------------------------

    def is_empty(self) -> bool:
        """True when installing this plan cannot perturb anything."""
        m = self.messages
        return (
            not self.crashes
            and not self.links
            and not self.compute
            and m.drop_prob == 0.0
            and m.dup_prob == 0.0
            and m.delay_prob == 0.0
        )

    def validate(self, nprocs: int | None = None) -> None:
        """Raise :class:`FaultPlanError` on an unusable plan."""
        m = self.messages
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            p = getattr(m, name)
            if not 0.0 <= p <= 1.0:
                raise FaultPlanError(f"messages.{name}={p!r} not in [0, 1]")
        if m.max_retries < 0:
            raise FaultPlanError(f"messages.max_retries={m.max_retries} < 0")
        if m.retry_delay < 0 or m.delay < 0:
            raise FaultPlanError("message delays must be non-negative")
        if self.op_timeout <= 0:
            raise FaultPlanError(f"op_timeout={self.op_timeout!r} must be > 0")
        for c in self.crashes:
            if c.time < 0:
                raise FaultPlanError(f"crash time {c.time!r} is negative")
            self._check_rank(c.rank, nprocs, "crash")
        for ln in self.links:
            if ln.latency_factor < 0 or ln.bandwidth_factor < 0:
                raise FaultPlanError("link factors must be non-negative")
            self._check_rank(ln.src, nprocs, "link src")
            self._check_rank(ln.dest, nprocs, "link dest")
        for cf in self.compute:
            if cf.slowdown < 0 or cf.jitter < 0:
                raise FaultPlanError("compute slowdown/jitter must be >= 0")
            self._check_rank(cf.rank, nprocs, "compute")
        if nprocs is not None and len({c.rank for c in self.crashes}) == (
            nprocs
        ):
            raise FaultPlanError("plan crashes every rank; nothing would run")

    @staticmethod
    def _check_rank(rank: int, nprocs: int | None, what: str) -> None:
        if rank < 0:
            raise FaultPlanError(f"{what} rank {rank} is negative")
        if nprocs is not None and rank >= nprocs:
            raise FaultPlanError(
                f"{what} rank {rank} outside world of size {nprocs}"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                seed=int(data.get("seed", cls.seed)),
                crashes=tuple(
                    CrashFault(**c) for c in data.get("crashes", ())
                ),
                messages=MessageFaults(**data.get("messages", {})),
                links=tuple(LinkFault(**ln) for ln in data.get("links", ())),
                compute=tuple(
                    ComputeFault(**cf) for cf in data.get("compute", ())
                ),
                op_timeout=float(data.get("op_timeout", cls.op_timeout)),
            )
        except FaultPlanError:
            raise
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
        plan = cls.from_json(text)
        plan.validate()
        return plan
