"""Seeded fault injection for the deterministic runtime.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete decisions the engine and
communication layers consult at well-defined points.  Two properties are
non-negotiable:

* **No-op guarantee** — the null injector (and any injector built from an
  empty plan) reports ``active = False``; every fault hook in the runtime is
  gated behind that flag (the same pattern as the obs Instrument's
  ``enabled``), so fault support costs one attribute check and leaves
  virtual time bit-identical.

* **Determinism** — probabilistic draws never touch global RNG state.  Each
  draw hashes a stable string key (seed, fault kind, endpoints, message
  ordinal) with BLAKE2b and maps the digest to a uniform float.  Draws are
  therefore order-independent and platform-stable: the same (seed, plan)
  yields byte-identical runs, which the tests and the CI chaos job assert.

Faulted operations never raise inside victim ranks.  A payload that cannot
be produced (message permanently lost, sender crashed) is replaced by the
:data:`LOST` sentinel, which flows through collectives as a *hole*:
reductions skip it, broadcasts propagate it, and the tracer treats it as a
missing vote.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.instrument import Instrument


class _Lost:
    """Singleton sentinel for a payload destroyed by a fault.

    Collectives treat it as a hole (reduce/gather skip it, bcast forwards
    it); application code that only moves payloads around simply carries it.
    Pickles to the module-level singleton so identity checks survive
    process boundaries.
    """

    _instance: "_Lost | None" = None

    def __new__(cls) -> "_Lost":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "LOST"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_Lost, ())


#: The hole left behind by a fault (lost message, dead sender).
LOST = _Lost()


def is_lost(value: object) -> bool:
    """True when ``value`` is the :data:`LOST` hole sentinel."""
    return value is LOST


_U64 = float(1 << 64)


class FaultInjector:
    """Runtime oracle answering "does a fault hit here?" deterministically.

    One injector is shared by the engine and every communicator of a run.
    It also tracks the set of crashed ranks (``failed``) — the simulation's
    perfect failure detector, standing in for the agreement protocol a real
    fault-tolerant MPI (ULFM shrink) would run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        #: fault hooks are dead code while this is False
        self.active = not plan.is_empty()
        #: world ranks parked as FAILED by the engine
        self.failed: set[int] = set()
        self._crash_times = {c.rank: c.time for c in plan.crashes}
        self._links = {
            (ln.src, ln.dest): (ln.latency_factor, ln.bandwidth_factor)
            for ln in plan.links
        }
        self._compute = {c.rank: c for c in plan.compute}
        # Counters surfaced in chaos reports / obs metrics.
        self.injected = {
            "crash": 0, "drop": 0, "lost": 0, "dup": 0, "delay": 0,
            "timeout": 0, "compute": 0,
        }

    # -- seeded draws ------------------------------------------------------

    def _draw(self, key: str) -> float:
        """Uniform float in [0, 1) from a stable string key."""
        h = hashlib.blake2b(
            f"{self.plan.seed}:{key}".encode("ascii"), digest_size=8
        )
        return int.from_bytes(h.digest(), "big") / _U64

    # -- crashes -----------------------------------------------------------

    def crash_due(self, rank: int, clock: float) -> bool:
        """Should ``rank`` crash now?  Checked at scheduling points."""
        t = self._crash_times.get(rank)
        return t is not None and rank not in self.failed and clock >= t

    def crash_time(self, rank: int) -> float | None:
        return self._crash_times.get(rank)

    def mark_failed(self, rank: int) -> None:
        self.failed.add(rank)
        self.injected["crash"] += 1

    # -- messages ----------------------------------------------------------

    def message_delay(self, src: int, dest: int, ordinal: int) -> float | None:
        """Extra in-flight delay for one eager message, or ``None`` when the
        message is permanently lost.

        Drops model retransmission: each dropped attempt (seeded per
        attempt) adds ``retry_delay``; more than ``max_retries`` drops lose
        the message for good.  Duplicates are absorbed by the transport and
        only counted.  All draws key on (src, dest, ordinal) so reordering
        of unrelated traffic cannot change a message's fate.
        """
        m = self.plan.messages
        extra = 0.0
        if m.delay_prob > 0.0 and (
            self._draw(f"delay:{src}:{dest}:{ordinal}") < m.delay_prob
        ):
            extra += m.delay
            self.injected["delay"] += 1
        if m.dup_prob > 0.0 and (
            self._draw(f"dup:{src}:{dest}:{ordinal}") < m.dup_prob
        ):
            self.injected["dup"] += 1
        if m.drop_prob > 0.0:
            attempts = 0
            while attempts <= m.max_retries and (
                self._draw(f"drop:{src}:{dest}:{ordinal}:{attempts}")
                < m.drop_prob
            ):
                attempts += 1
            if attempts:
                self.injected["drop"] += attempts
            if attempts > m.max_retries:
                self.injected["lost"] += 1
                return None
            extra += attempts * m.retry_delay
        return extra

    # -- links -------------------------------------------------------------

    def link_factors(self, src: int, dest: int) -> tuple[float, float]:
        """(latency_factor, bandwidth_factor) for the directed link."""
        return self._links.get((src, dest), (1.0, 1.0))

    @property
    def has_link_faults(self) -> bool:
        return bool(self._links)

    # -- collective eligibility --------------------------------------------

    def collective_fallback_reason(self, world_ranks) -> str | None:
        """Why a collective over ``world_ranks`` must take the simulated
        (message-level) path, or ``None`` when the closed-form fast path is
        safe.

        The probe is *static with respect to the plan*: armed crashes,
        message-fault probabilities and degraded links never change during
        a run, so every participant — whenever it reaches the collective —
        computes the same verdict and no rank can strand its peers by
        branching differently.  Compute faults only scale ``compute()``
        durations, which collectives never call, so they stay eligible.
        The one dynamic input, already-``failed`` participants, can only
        have grown before the *first* arrival evaluates it (the verdict is
        cached on the gate for the rest).
        """
        if not self.active:
            return None
        m = self.plan.messages
        if m.drop_prob > 0.0 or m.delay_prob > 0.0 or m.dup_prob > 0.0:
            return "message-faults"
        members = set(world_ranks)
        if members & self._crash_times.keys():
            return "crash-armed"
        if members & self.failed:
            return "failed-participant"
        if self._links and any(
            s in members and d in members for s, d in self._links
        ):
            return "link-fault"
        return None

    # -- compute noise -----------------------------------------------------

    def compute_factor(self, rank: int, ordinal: int) -> float:
        """Multiplier applied to one ``compute()`` call's duration."""
        cf = self._compute.get(rank)
        if cf is None:
            return 1.0
        factor = cf.slowdown
        if cf.jitter > 0.0:
            factor += cf.jitter * self._draw(f"noise:{rank}:{ordinal}")
        if factor != 1.0:
            self.injected["compute"] += 1
        return factor

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Counters of every fault actually injected, plus crashed ranks."""
        out = dict(self.injected)
        out["failed_ranks"] = len(self.failed)
        return out


class _NullInjector(FaultInjector):
    """Shared inactive injector: the default for every run."""

    def __init__(self) -> None:
        super().__init__(FaultPlan())


#: Process-wide inactive injector (mirrors obs.NULL_INSTRUMENT).
NULL_INJECTOR = _NullInjector()


def injector_for(
    faults: "FaultPlan | FaultInjector | None",
) -> FaultInjector:
    """Coerce a plan / injector / None into an injector."""
    if faults is None:
        return NULL_INJECTOR
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)
