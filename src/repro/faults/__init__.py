"""repro.faults — deterministic, seeded fault injection.

Declare what goes wrong in a :class:`FaultPlan`, install it into a run
(``repro.run(..., faults=plan)``, ``run_spmd(..., faults=plan)`` or the CLI
``--faults PLAN.json``), and the runtime degrades gracefully instead of
fail-fasting: crashed ranks park as FAILED, lost payloads flow as
:data:`LOST` holes, and the Chameleon tracer re-elects leads or falls back
to full tracing.  See ``docs/FAULTS.md`` for the schema and semantics.
"""

from .injector import (
    LOST,
    NULL_INJECTOR,
    FaultInjector,
    injector_for,
    is_lost,
)
from .plan import (
    ComputeFault,
    CrashFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    MessageFaults,
)

__all__ = [
    "LOST",
    "NULL_INJECTOR",
    "ComputeFault",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "LinkFault",
    "MessageFaults",
    "injector_for",
    "is_lost",
]
