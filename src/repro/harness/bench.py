"""Scaling benchmark: wall-clock cost of the simulated runtime at large P.

The paper's claim is a finalize cost that stays flat as P grows; this
module measures whether the *simulator itself* keeps up — it drives two
microkernels through ``run_spmd`` at P ∈ {256, 1024, 4096, 16384} and
records, per point, the wall time, peak RSS, scheduler steps, the
point-to-point match throughput and how many collective instances took the
macro fast path.  ``repro bench`` emits the result as ``BENCH_scaling.json``
and CI gates every change against the committed baseline with a ±20%
wall-time tolerance (see :func:`compare`), so a quadratic regression in the
mailbox or scheduler shows up as a red build rather than a slow paper run.

Collectives run in ``"fast"`` mode by default (closed-form macro
collectives, bit-identical virtual times); pass ``collectives="simulated"``
(CLI: ``repro bench --collectives simulated``) to benchmark the
message-level reference path instead.

Kernels:

* ``allreduce_barrier`` — collective-dominated: one allreduce plus one
  barrier over the world communicator; stresses the tree collectives and
  exact-tag matching.
* ``halo_exchange`` — point-to-point dominated: a periodic 1-D halo swap
  (both neighbours, several rounds, per-round tags) with a wildcard
  drain round; stresses mailbox lane churn and wildcard matching.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from typing import Any, Callable, Iterable, Sequence

from ..simmpi import ANY_SOURCE, ANY_TAG, run_spmd

SCHEMA_ID = "repro/bench-scaling/v2"

#: Default process counts — the scaling ladder.  The 16384 tier is only
#: tractable because eligible collectives take the macro fast path.
DEFAULT_PS = (256, 1024, 4096, 16384)

#: Wall times below this (seconds) are noise-dominated; the regression gate
#: measures against at least this much baseline budget.
WALL_FLOOR_S = 0.05


async def _allreduce_barrier(ctx) -> int:
    total = await ctx.comm.allreduce(ctx.rank)
    await ctx.comm.barrier()
    return total


async def _halo_exchange(ctx, rounds: int = 4) -> int:
    comm, rank, size = ctx.comm, ctx.rank, ctx.size
    left, right = (rank - 1) % size, (rank + 1) % size
    acc = 0
    for r in range(rounds):
        sends = [
            comm.isend(left, rank, tag=r),
            comm.isend(right, rank, tag=r),
        ]
        acc += await comm.recv(source=right, tag=r)
        acc += await comm.recv(source=left, tag=r)
        for s in sends:
            await s.wait()
    # Wildcard drain round: one message each way, matched by ANY/ANY.
    await comm.send(right, rank, tag=rounds)
    acc += await comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
    await comm.barrier()
    return acc


KERNELS: dict[str, Callable[..., Any]] = {
    "allreduce_barrier": _allreduce_barrier,
    "halo_exchange": _halo_exchange,
}


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalize to KiB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def bench_point(
    kernel: str, nprocs: int, collectives: str = "fast"
) -> dict[str, Any]:
    """Run one (kernel, P) cell and return its measurement record."""
    fn = KERNELS[kernel]
    t0 = time.perf_counter()
    result = run_spmd(fn, nprocs, collectives=collectives)
    wall = time.perf_counter() - t0
    return {
        "kernel": kernel,
        "nprocs": nprocs,
        "wall_s": round(wall, 4),
        "peak_rss_kb": _peak_rss_kb(),
        "engine_steps": result.engine_steps,
        "messages_matched": result.messages_matched,
        "matched_per_s": (
            round(result.messages_matched / wall) if wall > 0 else 0
        ),
        "collectives_fast": result.collectives_fast,
        "virtual_makespan_s": result.max_time,
    }


def run_scaling_bench(
    ps: Sequence[int] = DEFAULT_PS,
    kernels: Sequence[str] = tuple(KERNELS),
    progress: Callable[[dict[str, Any]], None] | None = None,
    collectives: str = "fast",
) -> dict[str, Any]:
    """Run the benchmark matrix and return the ``BENCH_scaling`` document.

    Note that ``peak_rss_kb`` is a high-water mark for the whole process:
    it only ever grows across cells, so per-cell values are upper bounds
    and the large-P cells carry the meaningful numbers.
    """
    for k in kernels:
        if k not in KERNELS:
            raise ValueError(
                f"unknown bench kernel {k!r}; choose from {sorted(KERNELS)}"
            )
    results = []
    for kernel in kernels:
        for p in ps:
            record = bench_point(kernel, p, collectives=collectives)
            results.append(record)
            if progress is not None:
                progress(record)
    return {
        "schema": SCHEMA_ID,
        "ps": list(ps),
        "kernels": list(kernels),
        "collectives": collectives,
        "results": results,
    }


def save_bench(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"{path}: expected schema {SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    return doc


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Wall-time regression gate: current vs baseline, ±``tolerance``.

    Returns one message per violation (empty list = pass).  Every
    ``(kernel, nprocs)`` cell of the *baseline* must exist in ``current``
    and run within ``(1 + tolerance) *`` the baseline wall time; baselines
    under :data:`WALL_FLOOR_S` are measured against the floor instead, so
    micro-cells whose runtime is timer noise cannot flake the gate.
    Speed-ups and extra cells in ``current`` never fail.
    """
    by_cell = {
        (r["kernel"], r["nprocs"]): r for r in current.get("results", [])
    }
    problems = []
    for base in baseline.get("results", []):
        key = (base["kernel"], base["nprocs"])
        cur = by_cell.get(key)
        if cur is None:
            problems.append(
                f"{key[0]} @ P={key[1]}: missing from current results"
            )
            continue
        budget = max(base["wall_s"], WALL_FLOOR_S) * (1.0 + tolerance)
        if cur["wall_s"] > budget:
            problems.append(
                f"{key[0]} @ P={key[1]}: wall {cur['wall_s']:.3f}s exceeds "
                f"{budget:.3f}s (baseline {base['wall_s']:.3f}s "
                f"+{tolerance:.0%})"
            )
    return problems


def format_bench(doc: dict[str, Any]) -> str:
    lines = [
        f"{'kernel':<18s} {'P':>6s} {'wall[s]':>8s} {'RSS[MB]':>8s} "
        f"{'steps':>9s} {'matched':>9s} {'match/s':>10s} {'coll.fast':>9s}"
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['kernel']:<18s} {r['nprocs']:>6d} {r['wall_s']:>8.3f} "
            f"{r['peak_rss_kb'] / 1024:>8.1f} {r['engine_steps']:>9d} "
            f"{r['messages_matched']:>9d} {r['matched_per_s']:>10d} "
            f"{r.get('collectives_fast', 0):>9d}"
        )
    return "\n".join(lines)
