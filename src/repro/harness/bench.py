"""Scaling benchmark: wall-clock cost of the simulated runtime at large P.

The paper's claim is a finalize cost that stays flat as P grows; this
module measures whether the *simulator itself* keeps up — it drives two
microkernels through ``run_spmd`` at P ∈ {256, 1024, 4096, 16384} and
records, per point, the wall time, peak RSS, scheduler steps, the
point-to-point match throughput and how many collective instances took the
macro fast path.  ``repro bench`` emits the result as ``BENCH_scaling.json``
and CI gates every change against the committed baseline with a ±20%
wall-time tolerance (see :func:`compare`), so a quadratic regression in the
mailbox or scheduler shows up as a red build rather than a slow paper run.

Engine options come in as a :class:`~repro.simmpi.SimConfig` (CLI:
``repro bench --config KEY=VAL``, e.g. ``--config collectives=simulated``
or ``--config shards=4``); the default ladder additionally appends the
sharded-engine tiers in :data:`SHARD_TIERS` — ``allreduce_barrier`` at
P=16384 and P=65536 under ``shards=4``, plus the P=65536 single-process
reference cell — so CI tracks the conservative-PDES path next to the
single-process engine it must beat at scale.  (The legacy
``collectives=`` keyword shipped one release as a deprecation shim and now
raises ``TypeError``.)

Kernels:

* ``allreduce_barrier`` — collective-dominated: one allreduce plus one
  barrier over the world communicator; stresses the tree collectives and
  exact-tag matching.
* ``halo_exchange`` — point-to-point dominated: a periodic 1-D halo swap
  (both neighbours, several rounds, per-round tags) declared as a
  :class:`~repro.simmpi.NeighborPattern` so the macro p2p gate can
  resolve it, plus a message-level wildcard drain round that stresses
  mailbox lane churn and wildcard matching (and keeps the kernel
  exercising the real matching engine at every tier).
"""

from __future__ import annotations

import functools
import json
import resource
import sys
import time
from typing import Any, Callable, Iterable, Sequence

from ..simmpi import ANY_SOURCE, ANY_TAG, NeighborPattern, run_spmd
from ..simmpi.simconfig import SimConfig, resolve_auto_shards, resolve_config

SCHEMA_ID = "repro/bench-scaling/v4"

#: Default process counts — the scaling ladder.  The 16384 tier is only
#: tractable because eligible collectives take the macro fast path.
DEFAULT_PS = (256, 1024, 4096, 16384)

#: Extra ``(kernel, nprocs, shards)`` points appended when the *default*
#: ladder runs: the sharded-engine leg.  The collective kernel at both
#: big tiers (plus the P=65536 single-process reference cell the sharded
#: run must beat) — the regime the parallel owner-shard gate replay
#: exists for.  The sharded cells run *before* the P=65536 reference so
#: their workers fork from the post-ladder heap rather than from the
#: reference cell's freed-but-retained arenas (which copy-on-write
#: fault into every worker and would charge the sharded cell for the
#: single-process run's leavings).
SHARD_TIERS = (
    ("allreduce_barrier", 16384, 4),
    ("allreduce_barrier", 65536, 4),
    ("allreduce_barrier", 65536, 1),
)

#: Wall times below this (seconds) are noise-dominated; the regression gate
#: measures against at least this much baseline budget.
WALL_FLOOR_S = 0.05


async def _allreduce_barrier(ctx) -> int:
    total = await ctx.comm.allreduce(ctx.rank)
    await ctx.comm.barrier()
    return total


@functools.lru_cache(maxsize=None)
def _halo_pattern(size: int, rounds: int) -> NeighborPattern:
    """The halo kernel's declared rounds: the exact op sequence of the
    pre-declaration kernel (8-byte scalar payloads), slot-aligned so the
    gate replay vectorizes over ranks."""
    ops = []
    for rank in range(size):
        left, right = (rank - 1) % size, (rank + 1) % size
        row = []
        for r in range(rounds):
            row += [
                ("isend", left, r, 8),
                ("isend", right, r, 8),
                ("recv", right, r),
                ("recv", left, r),
                ("wait", 2 * r),
                ("wait", 2 * r + 1),
            ]
        ops.append(row)
    return NeighborPattern("bench-halo", size, ops)


async def _halo_exchange(ctx, rounds: int = 4) -> int:
    comm, rank, size = ctx.comm, ctx.rank, ctx.size
    left, right = (rank - 1) % size, (rank + 1) % size
    await comm.exchange(_halo_pattern(size, rounds))
    # Wildcard drain round: one message each way, matched by ANY/ANY.
    await comm.send(right, rank, tag=rounds)
    acc = await comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
    await comm.barrier()
    return acc


KERNELS: dict[str, Callable[..., Any]] = {
    "allreduce_barrier": _allreduce_barrier,
    "halo_exchange": _halo_exchange,
}


def matched_per_s(messages_matched: int, wall: float) -> int:
    """Match throughput with the wall time clamped to :data:`WALL_FLOOR_S`.

    A run finishing under the timer floor — including a measured wall of
    exactly ``0.0`` on a coarse clock — used to report a throughput of
    ``0``, which reads as a catastrophic regression instead of a
    sub-resolution run.  Clamping yields a conservative lower bound
    instead; walls above the floor are unaffected.
    """
    return round(messages_matched / max(wall, WALL_FLOOR_S))


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalize to KiB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def bench_point(
    kernel: str,
    nprocs: int,
    sim: SimConfig | None = None,
    *,
    collectives: str | None = None,
) -> dict[str, Any]:
    """Run one (kernel, P) cell under ``sim`` and return its record.

    The ``shards`` field records the requested shard count with ``"auto"``
    resolved for this cell's P (what actually ran); when the run was not
    shard-eligible the record additionally carries the ``shard_fallback``
    reason (and measured the single-process rerun).
    """
    sim = resolve_config(sim, collectives=collectives)
    fn = KERNELS[kernel]
    t0 = time.perf_counter()
    result = run_spmd(fn, nprocs, config=sim)
    wall = time.perf_counter() - t0
    shards = (sim.shards if isinstance(sim.shards, int)
              else resolve_auto_shards(nprocs))
    record = {
        "kernel": kernel,
        "nprocs": nprocs,
        "shards": shards,
        "wall_s": round(wall, 4),
        "peak_rss_kb": _peak_rss_kb(),
        "engine_steps": result.engine_steps,
        "messages_matched": result.messages_matched,
        "matched_per_s": matched_per_s(result.messages_matched, wall),
        "collectives_fast": result.collectives_fast,
        "p2p_fast": result.p2p_fast,
        "virtual_makespan_s": result.max_time,
    }
    if "shard_fallback" in result.extras:
        record["shard_fallback"] = result.extras["shard_fallback"]
    return record


def run_scaling_bench(
    ps: Sequence[int] | None = None,
    kernels: Sequence[str] = tuple(KERNELS),
    progress: Callable[[dict[str, Any]], None] | None = None,
    sim: SimConfig | None = None,
    *,
    collectives: str | None = None,
) -> dict[str, Any]:
    """Run the benchmark matrix and return the ``BENCH_scaling`` document.

    ``ps=None`` selects the default ladder — :data:`DEFAULT_PS` for every
    kernel, plus the :data:`SHARD_TIERS` sharded-engine points (skipped
    when ``sim`` itself already shards, so an explicit ``--config
    shards=N`` sweep is not double-run).  An explicit ``ps`` runs exactly
    that matrix.

    Note that ``peak_rss_kb`` is a high-water mark for the whole process:
    it only ever grows across cells, so per-cell values are upper bounds
    and the large-P cells carry the meaningful numbers.
    """
    sim = resolve_config(sim, collectives=collectives)
    for k in kernels:
        if k not in KERNELS:
            raise ValueError(
                f"unknown bench kernel {k!r}; choose from {sorted(KERNELS)}"
            )
    base_ps = DEFAULT_PS if ps is None else tuple(ps)
    points: list[tuple[str, int, SimConfig]] = [
        (kernel, p, sim) for kernel in kernels for p in base_ps
    ]
    if ps is None and sim.shards == 1:
        points.extend(
            (kernel, p, sim.replace(shards=s))
            for kernel, p, s in SHARD_TIERS
            if kernel in kernels
        )
    results = []
    for kernel, p, cell_sim in points:
        record = bench_point(kernel, p, cell_sim)
        results.append(record)
        if progress is not None:
            progress(record)
    return {
        "schema": SCHEMA_ID,
        "ps": sorted({p for _, p, _ in points}),
        "kernels": list(kernels),
        "config": {
            "matching": sim.matching,
            "collectives": sim.collectives,
            "p2p": sim.p2p,
            "shards": sim.shards,
            "max_steps": sim.max_steps,
        },
        "results": results,
    }


def save_bench(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"{path}: expected schema {SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    return doc


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Wall-time regression gate: current vs baseline, ±``tolerance``.

    Returns one message per violation (empty list = pass).  Every
    ``(kernel, nprocs, shards)`` cell of the *baseline* must exist in
    ``current`` and run within ``(1 + tolerance) *`` the baseline wall
    time; walls under :data:`WALL_FLOOR_S` are clamped to the floor on
    *both* sides of the ratio, so micro-cells whose runtime is timer
    noise — in the baseline or the current run — cannot flake the gate.
    Speed-ups and extra cells in ``current`` never fail.
    """
    by_cell = {
        (r["kernel"], r["nprocs"], r.get("shards", 1)): r
        for r in current.get("results", [])
    }
    problems = []
    for base in baseline.get("results", []):
        key = (base["kernel"], base["nprocs"], base.get("shards", 1))
        cur = by_cell.get(key)
        label = f"{key[0]} @ P={key[1]}" + (
            f" shards={key[2]}" if key[2] != 1 else ""
        )
        if cur is None:
            problems.append(f"{label}: missing from current results")
            continue
        budget = max(base["wall_s"], WALL_FLOOR_S) * (1.0 + tolerance)
        if max(cur["wall_s"], WALL_FLOOR_S) > budget:
            problems.append(
                f"{label}: wall {cur['wall_s']:.3f}s exceeds "
                f"{budget:.3f}s (baseline {base['wall_s']:.3f}s "
                f"+{tolerance:.0%})"
            )
    return problems


def format_bench(doc: dict[str, Any]) -> str:
    lines = [
        f"{'kernel':<18s} {'P':>6s} {'sh':>4s} {'wall[s]':>8s} "
        f"{'RSS[MB]':>8s} {'steps':>9s} {'matched':>9s} {'match/s':>10s} "
        f"{'coll.fast':>9s} {'p2p.fast':>9s}"
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['kernel']:<18s} {r['nprocs']:>6d} "
            f"{str(r.get('shards', 1)):>4s} {r['wall_s']:>8.3f} "
            f"{r['peak_rss_kb'] / 1024:>8.1f} {r['engine_steps']:>9d} "
            f"{r['messages_matched']:>9d} {r['matched_per_s']:>10d} "
            f"{r.get('collectives_fast', 0):>9d} {r.get('p2p_fast', 0):>9d}"
        )
    return "\n".join(lines)
