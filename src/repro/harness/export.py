"""Exporting experiment results to JSON/CSV for downstream plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Sequence


def _plain(value: Any) -> Any:
    """Coerce experiment values into JSON-serializable primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    return str(value)


def rows_to_json(rows: Sequence[dict], indent: int = 2) -> str:
    """Serialize experiment rows as a JSON array."""
    return json.dumps([_plain(r) for r in rows], indent=indent, sort_keys=True)


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Serialize experiment rows as CSV (union of keys, sorted header)."""
    if not rows:
        return ""
    fields = sorted({k for r in rows for k in r})
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, extrasaction="ignore")
    writer.writeheader()
    for r in rows:
        writer.writerow({k: _plain(v) for k, v in r.items()})
    return buf.getvalue()


def save_rows(rows: Sequence[dict], path: str | Path) -> Path:
    """Write rows to ``path``; the suffix picks the format (.json/.csv)."""
    path = Path(path)
    if path.suffix == ".json":
        text = rows_to_json(rows)
    elif path.suffix == ".csv":
        text = rows_to_csv(rows)
    else:
        raise ValueError(f"unsupported export format {path.suffix!r}")
    path.write_text(text, encoding="utf-8")
    return path
