"""Generators for the paper's Figures 4-11 (series + rendered tables).

Each function reruns the underlying experiment at the configured scale and
returns ``(series, text)`` where ``series`` is the figure's data (the bars /
lines the paper plots) and ``text`` an ASCII rendering.  Scale defaults are
small (see ``runner.default_p_list``); ``REPRO_FULL_SCALE=1`` lifts them.
"""

from __future__ import annotations

from typing import Any

from ..replay.accuracy import AccuracyReport
from ..replay.replayer import replay_trace
from ..simmpi.timing import QDR_CLUSTER
from .engine import get_engine, make_cell, make_suite_cells
from .metrics import breakdown
from .reporting import percent, render_table
from .runner import Mode, default_p_list, full_scale, overhead

#: strong-scaling benchmarks of Figure 4/5 with quick-mode parameters
STRONG_BENCHMARKS: dict[str, dict[str, Any]] = {
    "bt": {"problem_class": "A", "iterations": 15},
    "lu": {"problem_class": "A", "iterations": 16},
    "sp": {"problem_class": "A", "iterations": 20},
    "pop": {"grid_points": 64, "block": 8, "iterations": 10},
    "emf": {"total_tasks": 360, "task_seconds": 0.002},
}

#: per-benchmark marker frequency (scaled Table II values)
STRONG_FREQ = {"bt": 3, "lu": 4, "sp": 4, "pop": 1, "emf": 4}


def _params_for(name: str) -> dict[str, Any]:
    params = dict(STRONG_BENCHMARKS[name])
    if full_scale():
        scale_up = {
            "bt": {"problem_class": "D", "iterations": 250},
            "lu": {"problem_class": "D", "iterations": 300},
            "sp": {"problem_class": "D", "iterations": 500},
            "pop": {"grid_points": 896, "block": 16, "iterations": 20},
            "emf": {"total_tasks": 36000},
        }
        params.update(scale_up[name])
        params.pop("task_seconds", None)
    return params


def _freq_for(name: str) -> int:
    if full_scale():
        return {"bt": 25, "lu": 20, "sp": 20, "pop": 1, "emf": 32}[name]
    return STRONG_FREQ[name]


# ---------------------------------------------------------------------------
# Figure 4 — strong scaling: overhead of APP vs Chameleon vs ScalaTrace
# ---------------------------------------------------------------------------


def _strong_suites(
    benchmarks: list[str], p_list: list[int]
) -> list[tuple[str, int, dict]]:
    """All (benchmark, P) suites of Figures 4/5 as one engine batch."""
    combos = [
        (name, p)
        for name in benchmarks
        for p in p_list
        if not (name == "emf" and p < 2)
    ]
    groups = [
        make_suite_cells(
            name,
            p,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=_params_for(name),
            call_frequency=_freq_for(name),
        )
        for name, p in combos
    ]
    suites = get_engine().run_suite_groups(groups)
    return [(name, p, suite) for (name, p), suite in zip(combos, suites)]


def figure4(
    benchmarks: list[str] | None = None, p_list: list[int] | None = None
) -> tuple[list[dict], str]:
    benchmarks = benchmarks or list(STRONG_BENCHMARKS)
    p_list = p_list or default_p_list()
    rows = []
    for name, p, suite in _strong_suites(benchmarks, p_list):
        app = suite[Mode.APP]
        rows.append(
            {
                "benchmark": name,
                "P": p,
                "app_time": app.total_time,
                "chameleon_overhead": overhead(suite[Mode.CHAMELEON], app),
                "scalatrace_overhead": overhead(suite[Mode.SCALATRACE], app),
            }
        )
    text = render_table(
        ["bench", "P", "APP total [s]", "Chameleon ovh [s]",
         "ScalaTrace ovh [s]", "ST/CH"],
        [
            [r["benchmark"], r["P"], r["app_time"], r["chameleon_overhead"],
             r["scalatrace_overhead"],
             r["scalatrace_overhead"] / r["chameleon_overhead"]
             if r["chameleon_overhead"] else float("inf")]
            for r in rows
        ],
        title="Figure 4: strong-scaling execution overhead",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Figure 5 — strong scaling: replay time and accuracy
# ---------------------------------------------------------------------------


def figure5(
    benchmarks: list[str] | None = None, p_list: list[int] | None = None
) -> tuple[list[dict], str]:
    benchmarks = benchmarks or list(STRONG_BENCHMARKS)
    p_list = p_list or default_p_list()
    rows = []
    for name, p, suite in _strong_suites(benchmarks, p_list):
        st_trace = suite[Mode.SCALATRACE].trace
        ch_trace = suite[Mode.CHAMELEON].trace
        assert st_trace is not None and ch_trace is not None
        st_replay = replay_trace(st_trace, nprocs=p, network=QDR_CLUSTER)
        ch_replay = replay_trace(ch_trace, nprocs=p, network=QDR_CLUSTER)
        report = AccuracyReport(
            app_time=suite[Mode.APP].max_time,
            scalatrace_replay_time=st_replay.time,
            chameleon_replay_time=ch_replay.time,
        )
        rows.append(
            {
                "benchmark": name,
                "P": p,
                "app": report.app_time,
                "replay_scalatrace": report.scalatrace_replay_time,
                "replay_chameleon": report.chameleon_replay_time,
                "acc_vs_app": report.chameleon_vs_app,
                "acc_vs_scalatrace": report.chameleon_vs_scalatrace,
                "dropped_p2p": ch_replay.stats.p2p_dropped,
            }
        )
    text = render_table(
        ["bench", "P", "APP [s]", "ST replay [s]", "CH replay [s]",
         "ACC vs APP", "ACC vs ST"],
        [
            [r["benchmark"], r["P"], r["app"], r["replay_scalatrace"],
             r["replay_chameleon"], percent(r["acc_vs_app"]),
             percent(r["acc_vs_scalatrace"])]
            for r in rows
        ],
        title="Figure 5: strong-scaling replay time / accuracy",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Figures 6/7 — weak scaling: overhead and replay
# ---------------------------------------------------------------------------


def _weak_workloads() -> dict[str, dict[str, Any]]:
    if full_scale():
        return {
            "luw": {"per_rank_grid": 64, "iterations": 250},
            "sweep3d": {"nx": 100, "ny": 100, "nz": 1000, "iterations": 10,
                        "weak_scaling": True},
        }
    return {
        "luw": {"per_rank_grid": 8, "iterations": 15},
        "sweep3d": {"nx": 8, "ny": 8, "nz": 32, "iterations": 5,
                    "weak_scaling": True},
    }


def _weak_suites(p_list: list[int]) -> list[tuple[str, int, dict]]:
    """All weak-scaling suites of Figures 6/7 as one engine batch."""
    combos = [
        (name, params, p)
        for name, params in _weak_workloads().items()
        for p in p_list
    ]
    groups = [
        make_suite_cells(
            name,
            p,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=params,
            call_frequency=3 if name == "luw" else 1,
        )
        for name, params, p in combos
    ]
    suites = get_engine().run_suite_groups(groups)
    return [(name, p, suite)
            for (name, _params, p), suite in zip(combos, suites)]


def figure6(p_list: list[int] | None = None) -> tuple[list[dict], str]:
    p_list = p_list or default_p_list()
    rows = []
    for name, p, suite in _weak_suites(p_list):
        app = suite[Mode.APP]
        rows.append(
            {
                "benchmark": name,
                "P": p,
                "app_time": app.total_time,
                "chameleon_overhead": overhead(suite[Mode.CHAMELEON], app),
                "scalatrace_overhead": overhead(suite[Mode.SCALATRACE], app),
            }
        )
    text = render_table(
        ["bench", "P", "APP total [s]", "Chameleon ovh [s]",
         "ScalaTrace ovh [s]", "ST/CH"],
        [
            [r["benchmark"], r["P"], r["app_time"], r["chameleon_overhead"],
             r["scalatrace_overhead"],
             r["scalatrace_overhead"] / r["chameleon_overhead"]
             if r["chameleon_overhead"] else float("inf")]
            for r in rows
        ],
        title="Figure 6: weak-scaling execution overhead (LU-W, Sweep3D)",
    )
    return rows, text


def figure7(p_list: list[int] | None = None) -> tuple[list[dict], str]:
    p_list = p_list or default_p_list()
    rows = []
    for name, p, suite in _weak_suites(p_list):
        st_replay = replay_trace(suite[Mode.SCALATRACE].trace, nprocs=p)
        ch_replay = replay_trace(suite[Mode.CHAMELEON].trace, nprocs=p)
        report = AccuracyReport(
            app_time=suite[Mode.APP].max_time,
            scalatrace_replay_time=st_replay.time,
            chameleon_replay_time=ch_replay.time,
        )
        rows.append(
            {
                "benchmark": name,
                "P": p,
                "app": report.app_time,
                "replay_scalatrace": report.scalatrace_replay_time,
                "replay_chameleon": report.chameleon_replay_time,
                "acc_vs_app": report.chameleon_vs_app,
            }
        )
    text = render_table(
        ["bench", "P", "APP [s]", "ST replay [s]", "CH replay [s]",
         "ACC vs APP"],
        [
            [r["benchmark"], r["P"], r["app"], r["replay_scalatrace"],
             r["replay_chameleon"], percent(r["acc_vs_app"])]
            for r in rows
        ],
        title="Figure 7: weak-scaling replay time / accuracy",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Figure 8 — per-state time breakdown at maximum marker calls
# ---------------------------------------------------------------------------


def figure8(
    benchmarks: list[str] | None = None, nprocs: int | None = None
) -> tuple[list[dict], str]:
    benchmarks = benchmarks or ["bt", "lu", "sp", "pop", "emf"]
    nprocs = nprocs or (1024 if full_scale() else 16)
    groups = [
        make_suite_cells(
            name,
            nprocs,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=_params_for(name),
            call_frequency=1,  # max marker calls: one per timestep
        )
        for name in benchmarks
    ]
    rows = []
    for name, suite in zip(benchmarks, get_engine().run_suite_groups(groups)):
        ch = breakdown(suite[Mode.CHAMELEON])
        st = breakdown(suite[Mode.SCALATRACE])
        rows.append(
            {
                "benchmark": name,
                "ch_clustering": ch.clustering + ch.vote + ch.signature,
                "ch_intercompression": ch.intercompression,
                "st_clustering": 0.0,
                "st_intercompression": st.intercompression,
            }
        )
    text = render_table(
        ["bench", "CH clustering [s]", "CH inter-comp [s]",
         "ST clustering [s]", "ST inter-comp [s]"],
        [
            [r["benchmark"], r["ch_clustering"], r["ch_intercompression"],
             r["st_clustering"], r["st_intercompression"]]
            for r in rows
        ],
        title=f"Figure 8: per-state time, max markers, P={nprocs}",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Figure 9 — overhead vs number of marker (clustering) calls
# ---------------------------------------------------------------------------


def figure9(
    nprocs: int | None = None, call_counts: list[int] | None = None
) -> tuple[list[dict], str]:
    nprocs = nprocs or (1024 if full_scale() else 16)
    params = _params_for("lu")
    iters = params["iterations"]
    call_counts = call_counts or sorted(
        {1, max(iters // 8, 1), max(iters // 4, 1), max(iters // 2, 1), iters}
    )
    freqs = [max(iters // calls, 1) for calls in call_counts]
    cells = [make_cell("lu", nprocs, Mode.APP, workload_params=params)] + [
        make_cell(
            "lu",
            nprocs,
            Mode.CHAMELEON,
            workload_params=params,
            call_frequency=freq,
        )
        for freq in freqs
    ]
    app, *traced = get_engine().run_cells(cells)
    rows = []
    for freq, result in zip(freqs, traced):
        rows.append(
            {
                "marker_calls": result.cstats0.effective_calls,
                "freq": freq,
                "overhead": overhead(result, app),
            }
        )
    text = render_table(
        ["#effective calls", "freq", "Chameleon overhead [s]"],
        [[r["marker_calls"], r["freq"], r["overhead"]] for r in rows],
        title=f"Figure 9: overhead vs # clustering calls (LU, P={nprocs})",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Figure 10 — re-clustering cost (modified LU)
# ---------------------------------------------------------------------------


def figure10(
    nprocs: int | None = None, recluster_counts: list[int] | None = None
) -> tuple[list[dict], str]:
    nprocs = nprocs or (1024 if full_scale() else 16)
    params = _params_for("lu")
    iters = params["iterations"]
    # a phase needs >= 4 stable markers to flush, re-cluster and re-enter
    # the lead state, so the number of *achievable* re-clusterings is
    # bounded by iterations / 4
    recluster_counts = recluster_counts or [1, 2, max(iters // 4, 1)]
    periods = [max(iters // n, 4) for n in recluster_counts]
    cells = [
        make_cell("lu", nprocs, Mode.APP, workload_params=params),
        make_cell("lu", nprocs, Mode.SCALATRACE, workload_params=params),
    ] + [
        make_cell(
            "lu_modified",
            nprocs,
            Mode.CHAMELEON,
            workload_params={"phase_period": period, **params},
            call_frequency=1,
        )
        for period in periods
    ]
    app, st, *traced = get_engine().run_cells(cells)
    rows = []
    for n, period, result in zip(recluster_counts, periods, traced):
        rows.append(
            {
                "requested_reclusterings": n,
                "phase_period": period,
                "measured_reclusterings": result.cstats0.reclusterings,
                "overhead": overhead(result, app),
            }
        )
    st_overhead = overhead(st, app)
    text = render_table(
        ["#reclusterings (req)", "period", "#reclusterings (measured)",
         "Chameleon overhead [s]", "ScalaTrace overhead [s]"],
        [
            [r["requested_reclusterings"], r["phase_period"],
             r["measured_reclusterings"], r["overhead"], st_overhead]
            for r in rows
        ],
        title=f"Figure 10: re-clustering cost (modified LU, P={nprocs})",
    )
    for r in rows:
        r["scalatrace_overhead"] = st_overhead
    return rows, text


# ---------------------------------------------------------------------------
# Figure 11 — overhead per method vs input problem size (LU classes)
# ---------------------------------------------------------------------------


def figure11(
    nprocs: int | None = None, classes: list[str] | None = None
) -> tuple[list[dict], str]:
    nprocs = nprocs or (256 if full_scale() else 16)
    classes = classes or ["A", "B", "C", "D"]
    class_params: list[dict[str, Any]] = []
    for cls in classes:
        iterations = (
            None if full_scale() else {"A": 8, "B": 10, "C": 12, "D": 15}[cls]
        )
        params: dict[str, Any] = {"problem_class": cls}
        if iterations is not None:
            params["iterations"] = iterations
        class_params.append(params)
    groups = [
        make_suite_cells(
            "lu",
            nprocs,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=params,
            call_frequency=1,
        )
        for params in class_params
    ]
    rows = []
    for cls, params, suite in zip(
        classes, class_params, get_engine().run_suite_groups(groups)
    ):
        iterations = params.get("iterations")
        app = suite[Mode.APP]
        ch = breakdown(suite[Mode.CHAMELEON])
        rows.append(
            {
                "class": cls,
                "iterations": suite[Mode.APP].extra.get("iters", iterations),
                "app_time": app.total_time,
                "ch_clustering": ch.clustering + ch.vote + ch.signature,
                "ch_intercompression": ch.intercompression,
                "chameleon_overhead": overhead(suite[Mode.CHAMELEON], app),
                "scalatrace_overhead": overhead(suite[Mode.SCALATRACE], app),
            }
        )
    text = render_table(
        ["class", "APP [s]", "CH clustering [s]", "CH inter-comp [s]",
         "CH total ovh [s]", "ST ovh [s]"],
        [
            [r["class"], r["app_time"], r["ch_clustering"],
             r["ch_intercompression"], r["chameleon_overhead"],
             r["scalatrace_overhead"]]
            for r in rows
        ],
        title=f"Figure 11: overhead per method vs input class (LU, P={nprocs})",
    )
    return rows, text
