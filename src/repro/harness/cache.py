"""Content-addressed on-disk cache for experiment runs.

Every experiment cell — one ``(workload, params, warmup, nprocs, mode,
config, network)`` combination — is deterministic, so its
:class:`~repro.harness.runner.RunResult` can be stored once and replayed
from disk forever.  The cache key is a SHA-256 digest over

* a canonical rendering of the cell (workload name + params, warmup
  profile, process count, mode, every ``ChameleonConfig`` field including
  the cost model, every ``NetworkModel`` field), and
* the cache **schema version** plus a **code fingerprint** (a digest of
  every ``repro`` source file), so editing the simulator or bumping
  :data:`CACHE_SCHEMA_VERSION` cold-starts the cache instead of serving
  stale results.

Layout on disk (everything under one root, default ``.repro-cache`` or
``$REPRO_CACHE_DIR``)::

    <root>/v<schema>-<fingerprint12>/<digest[:2]>/<digest>.pkl

Entries are pickles of ``{"schema", "digest", "checksum", "blob"}`` where
``blob`` is the pickled result and ``checksum`` its SHA-256 — so a bit
flip anywhere in the payload (partial write, disk corruption) is caught
on read, not just gross truncation.  A corrupt, truncated, or mismatching
entry is deleted on read and counted as an invalidation, never returned;
give the cache an :class:`~repro.obs.instrument.Instrument` to surface
those invalidations as ``fault``-category events.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs.instrument import NULL_INSTRUMENT, Instrument

#: Bump whenever the semantics of a run change in a way the digest inputs
#: cannot see (e.g. a new RunResult field with behavioural meaning).
#: v2: checksummed entry payloads.
CACHE_SCHEMA_VERSION = 2

#: Environment variable naming the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache entirely when set to "1".
ENV_NO_CACHE = "REPRO_NO_CACHE"


# ---------------------------------------------------------------------------
# canonical rendering + digests
# ---------------------------------------------------------------------------


def canonical(obj: Any) -> str:
    """A stable, order-independent textual form of ``obj`` for hashing.

    Dataclasses render as ``Name(field=..., ...)`` in field order, dicts
    and sets sort their members, enums render by name — so two logically
    equal cells always hash identically regardless of construction order.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({body})"
    if isinstance(obj, dict):
        body = ",".join(
            f"{canonical(k)}:{canonical(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + body + "}"
    if isinstance(obj, (list, tuple)):
        return "(" + ",".join(canonical(v) for v in obj) + ")"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(v) for v in obj)) + "}"
    if isinstance(obj, float):
        return repr(obj)
    return repr(obj)


def digest_of(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``obj``."""
    return hashlib.sha256(canonical(obj).encode("utf-8")).hexdigest()


_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Folding the package sources into the cache namespace means a code
    change — new cost constants, a fixed clustering bug — silently starts
    a fresh cache generation rather than replaying stale results.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working dir."""
    return Path(os.environ.get(ENV_CACHE_DIR) or ".repro-cache")


def cache_disabled_by_env() -> bool:
    return os.environ.get(ENV_NO_CACHE, "0") == "1"


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

#: Per-process counter feeding spill names.  Combined with the pid, two
#: writers — same process or different processes racing on one digest —
#: can never share a spill path, so neither can truncate the other's
#: in-flight file before its atomic ``os.replace``.
_SPILL_COUNTER = itertools.count()

#: Spill name suffix: ``<entry>.<pid>-<counter>.tmp``.  ``verify`` parses
#: the pid back out to tell a live writer's spill from a dead one's.
_SPILL_RE = re.compile(r"\.(\d+)-(\d+)\.tmp$")


def _spill_path(path: Path) -> Path:
    """A unique spill path next to ``path`` for this process."""
    return path.parent / (
        f"{path.name}.{os.getpid()}-{next(_SPILL_COUNTER)}.tmp"
    )


def _spill_writer_alive(path: Path) -> bool:
    """Whether ``path`` is a pid-tagged spill whose writer still runs.

    Legacy or unparsable ``.tmp`` names report ``False`` (treated as
    orphans, as before); a parsed pid is probed with ``kill(pid, 0)``.
    """
    match = _SPILL_RE.search(path.name)
    if match is None:
        return False
    pid = int(match.group(1))
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    except OSError:  # pragma: no cover - platform oddity: assume dead
        return False
    return True


@dataclass
class CacheStats:
    """Counters one :class:`RunCache` accumulates over its lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0  # corrupt / schema-mismatched entries deleted

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class CacheVerifyReport:
    """What one :meth:`RunCache.verify` sweep found (and removed).

    ``corrupt`` entries live in the current generation but fail schema,
    key or checksum validation; ``orphaned`` files are leftover ``.tmp``
    spills from interrupted writes and entries stranded in stale
    generation directories that no current code can ever read.
    ``in_flight`` spills carry the pid of a still-running writer — a
    racer mid-``put`` — and are neither damage nor removable.
    """

    generation: str = ""
    scanned: int = 0
    ok: int = 0
    corrupt: list[str] = dataclasses.field(default_factory=list)
    orphaned: list[str] = dataclasses.field(default_factory=list)
    in_flight: list[str] = dataclasses.field(default_factory=list)
    removed: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.orphaned

    def as_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "orphaned": list(self.orphaned),
            "in_flight": list(self.in_flight),
            "removed": self.removed,
        }

    def summary(self) -> str:
        state = "clean" if self.clean else "damaged"
        return (
            f"cache {state}: {self.scanned} scanned | {self.ok} ok | "
            f"{len(self.corrupt)} corrupt | {len(self.orphaned)} orphaned"
            + (f" | {len(self.in_flight)} in flight" if self.in_flight
               else "")
            + (f" | {self.removed} removed" if self.removed else "")
        )


class RunCache:
    """Content-addressed pickle store for :class:`RunResult` objects."""

    def __init__(
        self,
        root: str | Path | None = None,
        schema: int = CACHE_SCHEMA_VERSION,
        fingerprint: str | None = None,
        instrument: Instrument = NULL_INSTRUMENT,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.schema = schema
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()
        self.instrument = instrument

    @property
    def generation(self) -> str:
        """Directory name of the current (schema, code) generation."""
        return f"v{self.schema}-{self.fingerprint[:12]}"

    def path_for(self, digest: str) -> Path:
        return self.root / self.generation / digest[:2] / f"{digest}.pkl"

    # -- read/write --------------------------------------------------------

    def _load_checked(self, path: Path, digest: str) -> bytes:
        """The verified result blob stored at ``path``, or raise.

        One validation path for :meth:`get` and :meth:`verify`: the
        stored schema and digest must match the key and the payload's
        SHA-256 checksum must verify.
        """
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.schema
            or payload.get("digest") != digest
        ):
            raise ValueError("cache entry does not match its key")
        blob = payload["blob"]
        if hashlib.sha256(blob).hexdigest() != payload.get("checksum"):
            raise ValueError("cache entry failed checksum verification")
        return blob

    def get(self, digest: str) -> Any | None:
        """The cached result for ``digest``, or None on miss/invalid.

        A hit requires the stored schema and digest to match the key *and*
        the payload's SHA-256 checksum to verify — anything else (corrupt,
        truncated, bit-flipped, stale-schema) deletes the entry, counts an
        invalidation, and reads as a plain miss.
        """
        path = self.path_for(digest)
        try:
            blob = self._load_checked(path, digest)
            self.stats.hits += 1
            return pickle.loads(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            # corrupt / truncated / stale-schema entry: remove and miss
            self.stats.invalidated += 1
            self.stats.misses += 1
            ins = self.instrument
            if ins.enabled:
                ins.instant(-1, "cache_corrupt", "fault", 0.0,
                            {"digest": digest, "error": str(exc)})
                ins.metrics.count("fault/cache_invalidated", 1)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, digest: str, result: Any) -> Path:
        """Atomically store ``result`` under ``digest``.

        The spill file is named ``<entry>.<pid>-<counter>.tmp`` — unique
        per writer, so two processes racing on the same digest each
        complete their own write-then-rename and the loser's replace
        simply overwrites the winner's identical entry.  A live racer's
        spill is recognized by :meth:`verify` (pid probe) instead of
        being miscounted as an orphan.
        """
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "schema": self.schema,
            "digest": digest,
            "checksum": hashlib.sha256(blob).hexdigest(),
            "blob": blob,
        }
        tmp = _spill_path(path)
        try:
            with open(tmp, "xb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every entry of the current generation."""
        gen = self.root / self.generation
        return sorted(gen.rglob("*.pkl")) if gen.is_dir() else []

    def clear(self) -> int:
        """Delete the current generation's entries; returns the count."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def verify(self, fix: bool = False) -> CacheVerifyReport:
        """Sweep the store for damaged and orphaned files.

        Every entry of the current generation is re-validated through the
        same schema/digest/checksum path :meth:`get` uses; ``.tmp``
        leftovers from interrupted writes and entries stranded in stale
        generation directories are reported as orphans.  A spill whose
        pid-tagged writer is still alive is an in-flight write, not an
        orphan — it is reported separately and never removed.  With
        ``fix``,
        corrupt and orphaned files are deleted (reads would delete the
        corrupt ones lazily anyway — this just front-loads the cost) and
        counted in ``removed``.  Damage found is surfaced through the same
        ``fault``-category instrument hooks as lazy invalidation.
        """
        report = CacheVerifyReport(generation=self.generation)
        for path in self.entries():
            report.scanned += 1
            try:
                self._load_checked(path, path.stem)
                report.ok += 1
            except Exception as exc:
                report.corrupt.append(str(path))
                self.stats.invalidated += 1
                if self.instrument.enabled:
                    self.instrument.instant(
                        -1, "cache_corrupt", "fault", 0.0,
                        {"digest": path.stem, "error": str(exc)},
                    )
                    self.instrument.metrics.count("fault/cache_invalidated", 1)
        if self.root.is_dir():
            for path in sorted(self.root.rglob("*.tmp")):
                if _spill_writer_alive(path):
                    report.in_flight.append(str(path))
                else:
                    report.orphaned.append(str(path))
            for gen_dir in sorted(self.root.iterdir()):
                if not gen_dir.is_dir() or gen_dir.name == self.generation:
                    continue
                if not gen_dir.name.startswith("v"):
                    continue
                report.orphaned.extend(
                    str(p) for p in sorted(gen_dir.rglob("*.pkl"))
                )
        if fix:
            for name in report.corrupt + report.orphaned:
                try:
                    Path(name).unlink()
                    report.removed += 1
                except OSError:
                    pass
        return report
