"""ASCII rendering of experiment tables (what the bench targets print)."""

from __future__ import annotations

from typing import Any, Sequence


def fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Plain monospace table with aligned columns."""
    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def line(parts: Sequence[str]) -> str:
        return " | ".join(p.ljust(w) for p, w in zip(parts, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def percent(x: float) -> str:
    return f"{100.0 * x:.2f}%"


def ascii_bars(
    series: Sequence[tuple[str, float]],
    width: int = 48,
    log_scale: bool = False,
    title: str = "",
) -> str:
    """Horizontal bar chart in plain text (the paper's figures are bar
    plots; this renders the same series in a terminal).

    ``log_scale`` mirrors the paper's logarithmic overhead axes: bars span
    the decades between the smallest and largest positive value.
    """
    import math

    out = []
    if title:
        out.append(title)
    if not series:
        return "\n".join(out + ["(no data)"])
    label_w = max(len(label) for label, _v in series)
    positives = [v for _l, v in series if v > 0]
    vmax = max(positives, default=0.0)
    vmin = min(positives, default=0.0)
    for label, value in series:
        if value <= 0 or vmax <= 0:
            bar = ""
        elif log_scale and vmax > vmin:
            span = math.log10(vmax) - math.log10(vmin) or 1.0
            frac = (math.log10(value) - math.log10(vmin)) / span
            bar = "#" * max(int(frac * (width - 1)) + 1, 1)
        else:
            bar = "#" * max(int(value / vmax * width), 1)
        out.append(f"{label.ljust(label_w)} |{bar} {fmt(value)}")
    return "\n".join(out)
