"""Generators for the paper's Tables I-IV.

Each function runs the (scaled) experiment, returns structured rows, and can
render the same table the paper prints.  Scaling: iteration counts and call
frequencies are reduced proportionally so that the **number of effective
marker calls matches the paper exactly** — the transition-graph state counts
depend only on that number and on the interval structure, so Table II
reproduces the paper's counts at a fraction of the simulation cost.
``REPRO_FULL_SCALE=1`` lifts everything to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..workloads.registry import PAPER_K
from .engine import Cell, get_engine, make_cell, make_suite_cells
from .metrics import state_space_summary
from .reporting import render_table
from .runner import Mode, RunResult, full_scale, overhead

# ---------------------------------------------------------------------------
# Table II experiment configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Config:
    """One benchmark row: scaled parameters preserving the paper's #Calls
    and warmup-interval structure (which fixes #AT)."""

    pgm: str
    workload: str
    nprocs: int
    iters: int
    freq: int
    warmup: tuple[int, ...]
    params: dict[str, Any]
    paper: dict[str, int]  # the paper's row for comparison


def _scaled_p(paper_p: int) -> int:
    return paper_p if full_scale() else min(paper_p, 16)


def table2_configs() -> list[Table2Config]:
    """Scaled rows for every paper benchmark (paper values in ``paper``)."""
    def cfg(pgm, workload, p, iters, freq, warmup, params, paper):
        return Table2Config(pgm, workload, _scaled_p(p), iters, freq, warmup,
                            params, paper)

    ones = lambda n: tuple([1] * n)
    small = {"problem_class": "A"}
    rows = [
        # pgm, workload, P, scaled iters, scaled freq, warmup profile
        cfg("BT", "bt", 1024, 30, 3, (), small,
            dict(iters=250, freq=25, calls=10, C=1, L=8, AT=1)),
        cfg("LU", "lu", 1024, 60, 4, ones(6), small,
            dict(iters=300, freq=20, calls=15, C=1, L=11, AT=3)),
        cfg("SP", "sp", 1024, 100, 4, ones(6), small,
            dict(iters=500, freq=20, calls=25, C=1, L=21, AT=3)),
        cfg("POP", "pop", 1024, 20, 1, (2, 1),
            {"grid_points": 64, "block": 8},
            dict(iters=20, freq=1, calls=20, C=1, L=16, AT=3)),
        cfg("S3D", "sweep3d", 1024, 10, 1, (1,),
            {"nx": 16, "ny": 16, "nz": 16},
            dict(iters=10, freq=1, calls=10, C=1, L=7, AT=2)),
        cfg("LUW", "luw", 1024, 30, 3, (), {"per_rank_grid": 8},
            dict(iters=250, freq=25, calls=10, C=1, L=8, AT=1)),
        cfg("EMF", "emf", 126, 36, 4, ones(4),
            {"iterations": 36, "task_seconds": 0.002},
            dict(iters=288, freq=32, calls=9, C=1, L=6, AT=2)),
    ]
    if full_scale():
        # lift to the paper's actual iteration counts / frequencies
        lifted = []
        for c in rows:
            warm = c.warmup
            if warm and len(warm) > 2:
                warm = tuple([1] * int(1.5 * c.paper["freq"]))
            lifted.append(
                Table2Config(
                    c.pgm, c.workload, c.nprocs, c.paper["iters"],
                    c.paper["freq"], warm, c.params, c.paper,
                )
            )
        rows = lifted
    return rows


def _chameleon_cell(cfg: Table2Config) -> Cell:
    params = dict(cfg.params)
    if cfg.workload != "emf":
        params.setdefault("iterations", cfg.iters)
    return make_cell(
        cfg.workload,
        cfg.nprocs,
        Mode.CHAMELEON,
        workload_params=params,
        call_frequency=cfg.freq,
        warmup=cfg.warmup,
    )


def _run_chameleon_rows(configs: list[Table2Config]) -> list[RunResult]:
    """All Chameleon runs for Tables I/II as one engine batch."""
    return get_engine().run_cells([_chameleon_cell(c) for c in configs])


# ---------------------------------------------------------------------------
# Table I — number of clusters per benchmark
# ---------------------------------------------------------------------------


def table1() -> tuple[list[dict], str]:
    """Paper Table I: configured K per benchmark (determined a priori),
    plus this reproduction's measured Call-Path cluster count."""
    rows = []
    configs = table2_configs()
    for cfg, result in zip(configs, _run_chameleon_rows(configs)):
        cs = result.cstats0
        rows.append(
            {
                "pgm": cfg.pgm,
                "paper_k": PAPER_K[cfg.workload],
                "configured_k": PAPER_K[cfg.workload],
                "measured_callpaths": cs.num_callpaths,
                "k_used": cs.k_used,
            }
        )
    text = render_table(
        ["Pgm", "K (paper)", "K (configured)", "#Call-Paths (measured)", "K used"],
        [
            [r["pgm"], r["paper_k"], r["configured_k"], r["measured_callpaths"],
             r["k_used"]]
            for r in rows
        ],
        title="Table I: # of Clusters for the Tested Benchmarks",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Table II — marker calls and state counts
# ---------------------------------------------------------------------------


def table2() -> tuple[list[dict], str]:
    rows = []
    configs = table2_configs()
    for cfg, result in zip(configs, _run_chameleon_rows(configs)):
        cs = result.cstats0
        rows.append(
            {
                "pgm": f"{cfg.pgm}({cfg.nprocs})",
                "iters": cfg.iters,
                "freq": cfg.freq,
                "calls": cs.effective_calls,
                "C": cs.state_counts.get("clustering", 0),
                "L": cs.state_counts.get("lead", 0),
                "AT": cs.state_counts.get("all-tracing", 0),
                "paper": cfg.paper,
            }
        )
    text = render_table(
        ["Pgm (P)", "#Iters", "#Freq", "#Calls", "#C", "#L", "#AT",
         "paper C/L/AT"],
        [
            [r["pgm"], r["iters"], r["freq"], r["calls"], r["C"], r["L"],
             r["AT"],
             f"{r['paper']['C']}/{r['paper']['L']}/{r['paper']['AT']}"]
            for r in rows
        ],
        title="Table II: # Marker Calls and states C/L/AT",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Table III — ACURDION vs Chameleon overhead (BT, max marker calls)
# ---------------------------------------------------------------------------


def table3(p_list: list[int] | None = None) -> tuple[list[dict], str]:
    if p_list is None:
        p_list = [16, 64, 256, 1024] if full_scale() else [4, 9, 16]
    iters = 25 if not full_scale() else 250
    groups = [
        make_suite_cells(
            "bt",
            p,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.ACURDION),
            workload_params={"problem_class": "A", "iterations": iters},
            call_frequency=1,  # maximum number of calls (paper's constraint)
        )
        for p in p_list
    ]
    rows = []
    for p, suite in zip(p_list, get_engine().run_suite_groups(groups)):
        app = suite[Mode.APP]
        rows.append(
            {
                "P": p,
                "acurdion": overhead(suite[Mode.ACURDION], app),
                "chameleon": overhead(suite[Mode.CHAMELEON], app),
            }
        )
    text = render_table(
        ["P", "ACURDION [s]", "Chameleon [s]", "ratio"],
        [
            [r["P"], r["acurdion"], r["chameleon"],
             r["chameleon"] / r["acurdion"] if r["acurdion"] else float("inf")]
            for r in rows
        ],
        title="Table III: Overhead BT (max marker calls) — ACURDION vs Chameleon",
    )
    return rows, text


# ---------------------------------------------------------------------------
# Table IV — memory allocation per state (BT)
# ---------------------------------------------------------------------------


def table4(nprocs: int | None = None) -> tuple[dict, str]:
    nprocs = nprocs or (256 if full_scale() else 16)
    iters = 30
    cell = make_cell(
        "bt",
        nprocs,
        Mode.CHAMELEON,
        workload_params={"problem_class": "A", "iterations": iters},
        call_frequency=3,
    )
    (result,) = get_engine().run_cells([cell])
    summary = state_space_summary(result)
    # lead ranks: still allocating trace space during the lead phase
    leads = sorted(
        rank
        for rank, cs in enumerate(result.chameleon_stats)
        if any(s == "lead" and b > 0 for s, b in cs.space_samples)
    )
    non_leads = [r for r in range(nprocs) if r not in leads]
    states = ["all-tracing", "clustering", "lead", "final"]

    def row_for(rank: int) -> list:
        data = summary[rank]
        return [data.get(s, 0.0) for s in states] + [data["avg"]]

    headers = ["rank"] + ["AT", "C", "L", "F"] + ["avg/call"]
    rows = []
    for rank in leads:
        rows.append([f"lead {rank}"] + row_for(rank))
    if non_leads:
        # non-leads are indistinguishable: report the first as representative
        rep = non_leads[0]
        rows.append([f"non-lead ({len(non_leads)}x)"] + row_for(rep))
    data = {
        "leads": leads,
        "summary": summary,
        "nprocs": nprocs,
        "non_lead_zero_in_lead_state": all(
            summary[r].get("lead", 0.0) == 0.0 for r in non_leads
        ),
    }
    text = render_table(
        headers, rows,
        title=f"Table IV: Memory for traces [bytes], BT P={nprocs}",
    )
    return data, text
