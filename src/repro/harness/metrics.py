"""Derived metrics shared by the table/figure generators."""

from __future__ import annotations

from dataclasses import dataclass

from .runner import Mode, RunResult, overhead


@dataclass(frozen=True)
class OverheadBreakdown:
    """Where a traced run's extra virtual time went (summed over ranks)."""

    record: float  # event recording + intra compression
    signature: float  # interval signature computation (Chameleon)
    vote: float  # Algorithm 1 reduce+bcast (Chameleon)
    clustering: float  # tree clustering (Chameleon/ACURDION)
    intercompression: float  # inter-node trace merging + shipping

    @property
    def total(self) -> float:
        return (
            self.record
            + self.signature
            + self.vote
            + self.clustering
            + self.intercompression
        )


def breakdown(result: RunResult) -> OverheadBreakdown:
    record = result.sum_stat("record_time") if result.tracer_stats else 0.0
    if result.chameleon_stats:
        return OverheadBreakdown(
            record=record,
            signature=result.sum_cstat("signature_time"),
            vote=result.sum_cstat("vote_time"),
            clustering=result.sum_cstat("clustering_time"),
            intercompression=result.sum_cstat("intercompression_time"),
        )
    if result.mode is Mode.ACURDION and "acurdion" in result.extra:
        entries = result.extra["acurdion"]
        return OverheadBreakdown(
            record=record,
            signature=0.0,
            vote=0.0,
            clustering=sum(e["clustering_time"] for e in entries),
            intercompression=sum(e["intercompression_time"] for e in entries),
        )
    merge = result.sum_stat("merge_time") if result.tracer_stats else 0.0
    return OverheadBreakdown(
        record=record,
        signature=0.0,
        vote=0.0,
        clustering=0.0,
        intercompression=merge,
    )


def overhead_fraction(traced: RunResult, app: RunResult) -> float:
    """Overhead relative to the application's aggregated runtime."""
    if app.total_time == 0:
        return 0.0
    return overhead(traced, app) / app.total_time


def state_space_summary(result: RunResult) -> dict[int, dict[str, float]]:
    """Per-rank average bytes per state from the space samples (Table IV)."""
    out: dict[int, dict[str, float]] = {}
    for rank, cs in enumerate(result.chameleon_stats):
        per_state: dict[str, list[int]] = {}
        for state, nbytes in cs.space_samples:
            per_state.setdefault(state, []).append(nbytes)
        out[rank] = {
            state: sum(v) / len(v) for state, v in per_state.items()
        }
        out[rank]["calls"] = float(len(cs.space_samples))
        out[rank]["avg"] = (
            sum(b for _s, b in cs.space_samples) / len(cs.space_samples)
            if cs.space_samples
            else 0.0
        )
    return out
