"""Derived metrics shared by the table/figure generators."""

from __future__ import annotations

from dataclasses import dataclass

from .runner import Mode, RunResult, overhead


@dataclass(frozen=True)
class OverheadBreakdown:
    """Where a traced run's extra virtual time went (summed over ranks)."""

    record: float  # event recording + intra compression
    signature: float  # interval signature computation (Chameleon)
    vote: float  # Algorithm 1 reduce+bcast (Chameleon)
    clustering: float  # tree clustering (Chameleon/ACURDION)
    intercompression: float  # inter-node trace merging + shipping

    @property
    def total(self) -> float:
        return (
            self.record
            + self.signature
            + self.vote
            + self.clustering
            + self.intercompression
        )


def breakdown(result: RunResult) -> OverheadBreakdown:
    # Registry-backed: record time no longer depends on the truthiness of
    # the tracer_stats list, so Chameleon results whose per-rank tracer
    # stats were dropped (e.g. rebuilt from serialized form) still report
    # their recording cost; a live ``record/time`` metric fills in when the
    # tracer counter is absent entirely.
    record = result.stat("record_time", source="tracer")
    if record == 0.0:
        record = result.stat("record/time")
    if result.chameleon_stats:
        return OverheadBreakdown(
            record=record,
            signature=result.stat("signature_time", source="chameleon"),
            vote=result.stat("vote_time", source="chameleon"),
            clustering=result.stat("clustering_time", source="chameleon"),
            intercompression=result.stat(
                "intercompression_time", source="chameleon"
            ),
        )
    if result.mode is Mode.ACURDION and "acurdion" in result.extra:
        return OverheadBreakdown(
            record=record,
            signature=0.0,
            vote=0.0,
            clustering=result.stat("clustering_time", source="acurdion"),
            intercompression=result.stat(
                "intercompression_time", source="acurdion"
            ),
        )
    return OverheadBreakdown(
        record=record,
        signature=0.0,
        vote=0.0,
        clustering=0.0,
        intercompression=result.stat("merge_time", source="tracer"),
    )


def overhead_fraction(traced: RunResult, app: RunResult) -> float:
    """Overhead relative to the application's aggregated runtime."""
    if app.total_time == 0:
        return 0.0
    return overhead(traced, app) / app.total_time


def state_space_summary(result: RunResult) -> dict[int, dict[str, float]]:
    """Per-rank average bytes per state from the space samples (Table IV)."""
    out: dict[int, dict[str, float]] = {}
    for rank, cs in enumerate(result.chameleon_stats):
        per_state: dict[str, list[int]] = {}
        for state, nbytes in cs.space_samples:
            per_state.setdefault(state, []).append(nbytes)
        out[rank] = {
            state: sum(v) / len(v) for state, v in per_state.items()
        }
        out[rank]["calls"] = float(len(cs.space_samples))
        out[rank]["avg"] = (
            sum(b for _s, b in cs.space_samples) / len(cs.space_samples)
            if cs.space_samples
            else 0.0
        )
    return out
