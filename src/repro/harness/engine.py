"""ExperimentEngine: one scheduler and one cache for every experiment cell.

The paper's artifacts (Tables I-IV, Figures 4-11) decompose into *cells*,
each one deterministic ``(workload, params, warmup, nprocs, mode, config,
network)`` combination.  Historically every table/figure generator re-ran
its own serial loop, repeating identical simulations dozens of times —
exactly the redundancy Chameleon itself collapses across ranks.  The
engine fixes that at the harness level:

* **Declarative cells** (:class:`Cell`) carry everything needed to rebuild
  and execute a run, so they pickle cleanly across process boundaries and
  hash stably for the cache.
* **Fan-out**: cache misses execute on a ``ProcessPoolExecutor`` when
  ``jobs > 1``.  Runs share no state and are deterministic, so parallel
  results are identical to serial ones (asserted by the test-suite via
  ``RunResult.fingerprint``).
* **Content-addressed caching** (:mod:`repro.harness.cache`): a second
  invocation of the same experiment serves its cells from disk.
* **Structured progress/metrics**: every scheduled/hit/executed cell is
  reported through an optional callback and aggregated in
  :class:`EngineMetrics` for the CLI and benchmarks.

Suites built through :func:`make_suite_cells` construct the workload and
``ChameleonConfig`` exactly once, so a ``config_overrides``-derived config
can never drift between the modes of one suite (all cells of a suite share
a ``suite_key``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.config import ChameleonConfig
from ..faults.plan import FaultPlan
from ..obs.instrument import NULL_INSTRUMENT, Instrument
from ..resilience.hostfaults import cell_hook
from ..resilience.policy import QuarantinedCell, QuarantineError, RetryPolicy
from ..simmpi.simconfig import DEFAULT_CONFIG, SimConfig, resolve_config
from ..simmpi.timing import NetworkModel
from ..workloads.base import Workload
from ..workloads.registry import make_workload
from .cache import (
    RunCache,
    cache_disabled_by_env,
    default_cache_dir,
    digest_of,
)
from .runner import Mode, RunResult, chameleon_config_for, run_mode

#: Environment variable for the default worker count (0 = all cores).
ENV_JOBS = "REPRO_JOBS"


# ---------------------------------------------------------------------------
# cells
# ---------------------------------------------------------------------------


def _freeze(value: Any) -> Any:
    """Recursively convert ``value`` into a hashable, picklable form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


@dataclass(frozen=True)
class Cell:
    """One deterministic experiment unit, fully described by value.

    ``params`` is the frozen ``make_workload`` keyword dict; the workload
    itself is rebuilt from it inside whichever process executes the cell,
    so cells travel across worker boundaries without pickling stateful
    workload objects.
    """

    workload: str
    params: tuple[tuple[str, Any], ...]
    warmup: tuple[int, ...]
    nprocs: int
    mode: Mode
    config: ChameleonConfig
    sim: SimConfig = DEFAULT_CONFIG
    #: deterministic fault-injection plan, hashed into the cell digest so a
    #: faulted run never shares a cache slot with its fault-free twin
    faults: FaultPlan | None = None

    @property
    def network(self) -> NetworkModel:
        """The simulated network model (shorthand for ``sim.network``)."""
        return self.sim.network

    @property
    def label(self) -> str:
        return f"{self.workload}/P={self.nprocs}/{self.mode.value}"

    def digest(self) -> str:
        """Content address of this cell (see :mod:`repro.harness.cache`).

        APP runs ignore the tracer configuration entirely, so their digest
        normalizes ``config`` away — every suite over the same workload
        shares one cached baseline regardless of marker frequency.  The
        engine options enter through :meth:`SimConfig.cache_key`, which
        excludes the bit-identity-invariant knobs (matching, collectives,
        shards): equivalent spellings share one cache slot.
        """
        config = None if self.mode is Mode.APP else self.config
        return digest_of(
            (
                "cell",
                self.workload,
                self.params,
                self.warmup,
                self.nprocs,
                self.mode,
                config,
                self.sim.cache_key(),
                self.faults,
            )
        )

    def suite_key(self) -> str:
        """Digest of everything but the mode — equal across one suite."""
        return digest_of(
            (
                "suite",
                self.workload,
                self.params,
                self.warmup,
                self.nprocs,
                self.config,
                self.sim.cache_key(),
            )
        )

    def build_workload(self) -> Workload:
        workload = make_workload(self.workload, **dict(self.params))
        if self.warmup:
            workload.warmup_profile = tuple(self.warmup)
        return workload


def make_cell(
    workload_name: str,
    nprocs: int,
    mode: Mode,
    *,
    workload_params: dict[str, Any] | None = None,
    call_frequency: int = 1,
    config_overrides: dict[str, Any] | None = None,
    config: ChameleonConfig | None = None,
    network: NetworkModel | None = None,
    sim: SimConfig | None = None,
    warmup: Sequence[int] | None = None,
    faults: FaultPlan | None = None,
) -> Cell:
    """Build one cell, deriving the paper's config from the workload."""
    params = dict(workload_params or {})
    if config is None:
        workload = make_workload(workload_name, **params)
        config = chameleon_config_for(
            workload, call_frequency=call_frequency, **(config_overrides or {})
        )
    if faults is not None and faults.is_empty():
        faults = None  # empty plan == no plan: share the fault-free cache slot
    return Cell(
        workload=workload_name,
        params=_freeze(params),
        warmup=tuple(warmup or ()),
        nprocs=nprocs,
        mode=mode,
        config=config,
        sim=resolve_config(sim, network=network),
        faults=faults,
    )


def make_suite_cells(
    workload_name: str,
    nprocs: int,
    modes: Sequence[Mode] = (Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
    *,
    workload_params: dict[str, Any] | None = None,
    call_frequency: int = 1,
    config_overrides: dict[str, Any] | None = None,
    network: NetworkModel | None = None,
    sim: SimConfig | None = None,
    warmup: Sequence[int] | None = None,
) -> list[Cell]:
    """Cells for one suite: workload and config constructed exactly once.

    All modes share one ``ChameleonConfig`` instance derived before the
    mode loop, which is asserted via the shared ``suite_key`` — the drift
    the old per-mode reconstruction allowed is structurally impossible.
    """
    params = dict(workload_params or {})
    workload = make_workload(workload_name, **params)
    config = chameleon_config_for(
        workload, call_frequency=call_frequency, **(config_overrides or {})
    )
    cells = [
        Cell(
            workload=workload_name,
            params=_freeze(params),
            warmup=tuple(warmup or ()),
            nprocs=nprocs,
            mode=mode,
            config=config,
            sim=resolve_config(sim, network=network),
        )
        for mode in modes
    ]
    keys = {cell.suite_key() for cell in cells}
    assert len(keys) == 1, f"suite cells drifted apart: {sorted(keys)}"
    return cells


def _execute_cell(cell: Cell, digest: str = "") -> tuple[RunResult, float]:
    """Worker entry point: rebuild the workload and run the cell."""
    cell_hook(digest, cell.label)  # chaos injection point; no-op unarmed
    start = time.perf_counter()
    result = run_mode(
        cell.build_workload(),
        cell.nprocs,
        cell.mode,
        config=cell.config,
        sim=cell.sim,
        faults=cell.faults,
    )
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# progress + metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellEvent:
    """One structured progress notification from the engine.

    ``kind`` is one of ``scheduled`` / ``hit`` / ``start`` / ``done`` /
    ``retry`` (worker-pool crash recovery, labelled with the suspected
    cells) / ``deadline`` (a running cell exceeded its wall-clock budget
    and its worker was killed) / ``quarantine`` (a cell exhausted its
    attempt budget and was abandoned so the batch could finish);
    ``index``/``total`` position the cell within its batch, ``wall`` is
    the execution wall-time (``done`` events only).
    """

    kind: str
    label: str
    digest: str
    index: int
    total: int
    wall: float = 0.0


ProgressFn = Callable[[CellEvent], None]


@dataclass
class EngineMetrics:
    """Cumulative counters across every batch an engine has run."""

    scheduled: int = 0  # cells requested (incl. within-batch duplicates)
    deduped: int = 0  # duplicates collapsed inside a batch
    hits: int = 0  # unique cells served from the cache
    executed: int = 0  # unique cells actually simulated
    quarantined: int = 0  # cells abandoned after repeated host faults
    batches: int = 0
    total_wall: float = 0.0  # wall-clock across batches
    cell_walls: list[tuple[str, float]] = field(default_factory=list)

    @property
    def misses(self) -> int:
        return self.executed

    def hit_rate(self) -> float:
        """Fraction of unique cells served from cache (0 when idle)."""
        looked_up = self.hits + self.executed
        return self.hits / looked_up if looked_up else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "scheduled": self.scheduled,
            "deduped": self.deduped,
            "hits": self.hits,
            "executed": self.executed,
            "quarantined": self.quarantined,
            "batches": self.batches,
            "total_wall": self.total_wall,
            "hit_rate": self.hit_rate(),
        }

    def summary(self) -> str:
        return (
            f"engine: {self.scheduled} cells scheduled"
            f" ({self.deduped} deduplicated) | "
            f"{self.hits} cache hits | {self.executed} executed | "
            f"hit rate {100 * self.hit_rate():.0f}% | "
            f"wall {self.total_wall:.2f}s"
        )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class ExperimentEngine:
    """Schedules experiment cells over workers with an on-disk cache.

    Args:
        jobs: worker processes for cache misses; ``1`` runs inline,
            ``0`` means "all cores".
        cache: a :class:`RunCache`, or None to disable caching.
        progress: optional callback receiving :class:`CellEvent`\\ s.
        instrument: an :class:`~repro.obs.instrument.Instrument`; scheduling
            activity (scheduled/hit/executed cells) is counted into its
            metrics, and :meth:`run_cell_instrumented` threads it into the
            simulation itself.
        policy: a :class:`~repro.resilience.RetryPolicy` bounding the
            engine's host-fault recovery (pool-crash retries, per-cell
            deadlines, quarantine); defaults to
            :meth:`RetryPolicy.from_env`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
        progress: ProgressFn | None = None,
        instrument: Instrument = NULL_INSTRUMENT,
        policy: RetryPolicy | None = None,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.cache = cache
        self.progress = progress
        self.instrument = instrument
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.metrics = EngineMetrics()

    # -- scheduling --------------------------------------------------------

    def _emit(self, event: CellEvent) -> None:
        if self.instrument.enabled:
            self.instrument.metrics.count(
                f"engine/cells_{event.kind}", 1, op=event.label
            )
        if self.progress is not None:
            self.progress(event)

    def run_cells(
        self, cells: Sequence[Cell], *, contain_errors: bool = False
    ) -> list[RunResult]:
        """Execute a batch, resolving duplicates and cache hits first.

        Returns results positionally aligned with ``cells``.  Identical
        cells (same digest) within the batch are simulated once and the
        result shared; order of the returned list is deterministic and
        independent of worker completion order.

        Raises :class:`~repro.resilience.QuarantineError` when one or
        more cells exhausted their :class:`RetryPolicy` attempt budget
        (repeated pool kills or deadline overruns); the error carries the
        completed partial results instead of discarding them.

        With ``contain_errors`` a cell whose *execution* raises (a
        deterministic simulation error — bad root rank, deadlock, engine
        limit) is quarantined with reason ``cell-error`` instead of
        aborting the batch: its siblings complete and the
        :class:`QuarantineError` carries their results.  This is how the
        serve layer keeps one poisoned tenant job from failing everyone
        multiplexed into the same batch; the default (re-raise) preserves
        the CLI's fail-fast diagnostics.
        """
        started = time.perf_counter()
        total = len(cells)
        self.metrics.batches += 1
        self.metrics.scheduled += total

        by_digest: dict[str, list[int]] = {}
        for i, cell in enumerate(cells):
            by_digest.setdefault(cell.digest(), []).append(i)
            self._emit(CellEvent("scheduled", cells[i].label,
                                 cells[i].digest(), i, total))
        self.metrics.deduped += total - len(by_digest)

        results: list[RunResult | None] = [None] * total
        pending: list[tuple[str, Cell]] = []
        for digest, indices in by_digest.items():
            cell = cells[indices[0]]
            hit = self.cache.get(digest) if self.cache is not None else None
            if hit is not None:
                self.metrics.hits += 1
                self._emit(CellEvent("hit", cell.label, digest,
                                     indices[0], total))
                for i in indices:
                    results[i] = hit
            else:
                pending.append((digest, cell))

        quarantined: list[QuarantinedCell] = []
        if pending:
            quarantined = self._execute_pending(pending, by_digest, results,
                                                total, contain_errors)

        self.metrics.total_wall += time.perf_counter() - started
        if quarantined:
            raise QuarantineError(quarantined, list(results))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _execute_pending(
        self,
        pending: list[tuple[str, Cell]],
        by_digest: dict[str, list[int]],
        results: list[RunResult | None],
        total: int,
        contain_errors: bool = False,
    ) -> list[QuarantinedCell]:
        def complete(digest: str, result: RunResult, wall: float) -> None:
            cell_indices = by_digest[digest]
            cell = pending_map[digest]
            if self.cache is not None:
                self.cache.put(digest, result)
            self.metrics.executed += 1
            self.metrics.cell_walls.append((cell.label, wall))
            self._emit(CellEvent("done", cell.label, digest,
                                 cell_indices[0], total, wall))
            for i in cell_indices:
                results[i] = result

        pending_map = {digest: cell for digest, cell in pending}
        for digest, cell in pending:
            self._emit(CellEvent("start", cell.label, digest,
                                 by_digest[digest][0], total))
        if self.jobs > 1 and len(pending) > 1:
            return self._execute_pool(pending_map, by_digest, complete, total,
                                      contain_errors)
        quarantined: list[QuarantinedCell] = []
        for digest, cell in pending:
            try:
                result, wall = _execute_cell(cell, digest)
            except Exception as exc:
                if not contain_errors:
                    raise
                quarantined.append(self._condemn_cell(
                    cell, digest, f"cell-error: {type(exc).__name__}: {exc}",
                    by_digest[digest][0], total,
                ))
                continue
            complete(digest, result, wall)
        return quarantined

    def _condemn_cell(
        self, cell: Cell, digest: str, reason: str, index: int, total: int
    ) -> QuarantinedCell:
        """Quarantine a cell whose execution raised deterministically.

        Unlike host faults (crashes, deadlines), a cell error reproduces
        on every retry, so it consumes the cell immediately: one attempt,
        reason ``cell-error: <exception>``."""
        self.metrics.quarantined += 1
        if self.instrument.enabled:
            self.instrument.metrics.count(
                "resilience/cell_quarantined", 1, op=cell.label
            )
        self._emit(CellEvent(
            "quarantine", f"{cell.label} ({reason})", digest, index, total
        ))
        return QuarantinedCell(cell.label, digest, 1, reason)

    # -- host-fault recovery (pool crashes, deadlines, quarantine) ---------

    @staticmethod
    def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
        """SIGKILL every live pool worker (deadline enforcement).  The
        executor notices the deaths and raises BrokenProcessPool, which
        the caller handles like any other crash.

        Workers can exit between the deadline poll and this sweep: the
        ``_processes`` map may hold ``None`` sentinels mid-teardown, and a
        reaped ``Process`` handle raises ``ValueError`` once closed — both
        must be skipped so one dead worker can't abort the remaining
        kills and leave the overdue cell running."""
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            if proc is None:
                continue
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):
                pass  # racing exit / closed handle: already dead

    def _drain_pool(
        self,
        pool: ProcessPoolExecutor,
        batch: dict[str, Cell],
        remaining: dict[str, Cell],
        started: dict[str, float],
        overdue: set[str],
        complete: Callable[[str, RunResult, float], None],
        total: int,
        on_cell_error: Callable[[str, str], None] | None = None,
    ) -> None:
        """Run one pool generation to completion or first crash.

        ``started`` records when each cell's future was first observed
        running (deadline clock); cells added to ``overdue`` had their
        workers killed for exceeding ``policy.cell_deadline``.  With
        ``on_cell_error`` a worker exception that is *not* a pool crash
        is reported to the callback (digest, reason) instead of being
        re-raised, and the generation keeps draining.
        """
        policy = self.policy
        futures = {
            pool.submit(_execute_cell, cell, digest): digest
            for digest, cell in batch.items()
        }
        outstanding = set(futures)
        killing = False
        while outstanding:
            done, outstanding = wait(outstanding,
                                     timeout=policy.poll_interval,
                                     return_when=FIRST_COMPLETED)
            for fut in done:
                digest = futures[fut]
                try:
                    # re-raises worker errors (and BrokenProcessPool)
                    result, wall = fut.result()
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    if on_cell_error is None:
                        raise
                    remaining.pop(digest, None)
                    started.pop(digest, None)
                    on_cell_error(
                        digest, f"cell-error: {type(exc).__name__}: {exc}"
                    )
                    continue
                complete(digest, result, wall)
                remaining.pop(digest, None)
                started.pop(digest, None)
            if killing or policy.cell_deadline is None:
                continue
            now = time.monotonic()
            for fut in outstanding:
                if not fut.running():
                    continue
                digest = futures[fut]
                begun = started.setdefault(digest, now)
                if now - begun >= policy.cell_deadline:
                    overdue.add(digest)
            if overdue:
                for digest in overdue:
                    cell = batch[digest]
                    if self.instrument.enabled:
                        self.instrument.metrics.count(
                            "resilience/cell_deadline", 1, op=cell.label
                        )
                    self._emit(CellEvent("deadline", cell.label, digest,
                                         0, total))
                # No per-worker kill switch exists, so enforce the
                # deadline the blunt way: break the pool and let the
                # crash path re-run the innocent cells.
                self._kill_pool_workers(pool)
                killing = True  # wait for the BrokenProcessPool to surface

    def _execute_pool(
        self,
        pending_map: dict[str, Cell],
        by_digest: dict[str, list[int]],
        complete: Callable[[str, RunResult, float], None],
        total: int,
        contain_errors: bool = False,
    ) -> list[QuarantinedCell]:
        """Fan pending cells over a worker pool, surviving host faults.

        Two regimes: **fan-out** (all cells share one pool) until
        ``policy.isolate_after`` unattributed pool crashes, then
        **isolation** (one cell per single-worker pool) so the cell that
        keeps killing the pool is identified precisely instead of the
        whole batch being blamed.  Deadline overruns are always precise —
        the overdue cell is known — and count against that cell's attempt
        budget directly.  Cells that exhaust ``policy.max_attempts`` are
        quarantined; everything else completes.
        """
        policy = self.policy
        workers = min(self.jobs, len(pending_map))
        remaining = dict(pending_map)
        attempts: dict[str, int] = {digest: 0 for digest in remaining}
        reasons: dict[str, str] = {}
        quarantined: list[QuarantinedCell] = []
        crashes = 0

        on_cell_error: Callable[[str, str], None] | None = None
        if contain_errors:
            def on_cell_error(digest: str, reason: str) -> None:
                quarantined.append(self._condemn_cell(
                    pending_map[digest], digest, reason,
                    by_digest[digest][0], total,
                ))

        def charge(digest: str, reason: str) -> None:
            """One attempt consumed; quarantine on budget exhaustion."""
            attempts[digest] += 1
            reasons[digest] = reason
            if attempts[digest] >= policy.max_attempts:
                cell = remaining.pop(digest)
                quarantined.append(
                    QuarantinedCell(cell.label, digest, attempts[digest],
                                    reason)
                )
                self.metrics.quarantined += 1
                if self.instrument.enabled:
                    self.instrument.metrics.count(
                        "resilience/cell_quarantined", 1, op=cell.label
                    )
                self._emit(CellEvent(
                    "quarantine", f"{cell.label} ({reason} "
                    f"x{attempts[digest]})", digest,
                    by_digest[digest][0], total
                ))

        # -- fan-out regime ------------------------------------------------
        while remaining and crashes < policy.isolate_after:
            started: dict[str, float] = {}
            overdue: set[str] = set()
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(remaining))
                ) as pool:
                    self._drain_pool(pool, dict(remaining), remaining,
                                     started, overdue, complete, total,
                                     on_cell_error)
                break  # all cells completed
            except BrokenProcessPool:
                # A worker died (OOM kill, signal, interpreter crash, our
                # own deadline kill) — not a cell error, which re-raises
                # above.  Deadline kills are attributed precisely; an
                # unattributed crash suspects every running cell but
                # charges none of them (isolation mode decides).
                for digest in overdue & set(remaining):
                    charge(digest, "deadline")
                if not overdue:
                    crashes += 1
                    if crashes > policy.max_pool_crashes:
                        raise
                    # Cells observed running when the pool broke are prime
                    # suspects; when the crash outran the poll tick, every
                    # incomplete cell is.
                    suspects = [pending_map[d].label for d in started
                                if d in remaining]
                    if not suspects:
                        suspects = [cell.label for cell in remaining.values()]
                    if self.instrument.enabled:
                        self.instrument.metrics.count("fault/pool_retries", 1)
                        self.instrument.metrics.count(
                            "resilience/pool_crash", 1
                        )
                    self._emit(CellEvent(
                        "retry", f"worker-pool (crash {crashes}, suspects: "
                        f"{', '.join(suspects) or 'unknown'})", "", 0, total
                    ))
                    time.sleep(policy.backoff(crashes))

        # -- isolation regime ------------------------------------------------
        if remaining and crashes >= policy.isolate_after:
            self._emit(CellEvent(
                "retry", f"worker-pool (isolating {len(remaining)} cells "
                f"after {crashes} crashes)", "", 0, total
            ))
        while remaining:
            digest, cell = next(iter(remaining.items()))
            started = {}
            overdue = set()
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    self._drain_pool(pool, {digest: cell}, remaining,
                                     started, overdue, complete, total,
                                     on_cell_error)
            except BrokenProcessPool:
                # Single-cell pool: the crash is this cell's, precisely.
                charge(digest, "deadline" if digest in overdue
                       else "pool-crash")
                if digest in remaining:
                    if self.instrument.enabled:
                        self.instrument.metrics.count("fault/pool_retries", 1)
                    self._emit(CellEvent(
                        "retry", cell.label, digest,
                        by_digest[digest][0], total
                    ))
                    time.sleep(policy.backoff(attempts[digest]))
        return quarantined

    def run_cell_instrumented(
        self, cell: Cell, instrument: Instrument | None = None
    ) -> RunResult:
        """Execute one cell with the simulation itself instrumented.

        Instrumented runs always execute inline and bypass the cache in
        both directions: an obs-laden result must never be served to a
        later uninstrumented request, and a cached plain result has no
        timeline to offer.  Virtual-time results are still identical to
        the cached path — the instrument only observes.
        """
        ins = instrument if instrument is not None else self.instrument
        start = time.perf_counter()
        result = run_mode(
            cell.build_workload(),
            cell.nprocs,
            cell.mode,
            config=cell.config,
            sim=cell.sim,
            instrument=ins,
            faults=cell.faults,
        )
        wall = time.perf_counter() - start
        self.metrics.batches += 1
        self.metrics.scheduled += 1
        self.metrics.executed += 1
        self.metrics.total_wall += wall
        self.metrics.cell_walls.append((cell.label, wall))
        self._emit(CellEvent("done", cell.label, cell.digest(), 0, 1, wall))
        return result

    # -- convenience entry points -----------------------------------------

    def run_suite(
        self,
        workload_name: str,
        nprocs: int,
        modes: Sequence[Mode] = (Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
        workload_params: dict[str, Any] | None = None,
        call_frequency: int = 1,
        config_overrides: dict[str, Any] | None = None,
        network: NetworkModel | None = None,
        sim: SimConfig | None = None,
    ) -> dict[Mode, RunResult]:
        """Run one workload under several modes (one config for all)."""
        cells = make_suite_cells(
            workload_name,
            nprocs,
            modes,
            workload_params=workload_params,
            call_frequency=call_frequency,
            config_overrides=config_overrides,
            network=network,
            sim=sim,
        )
        results = self.run_cells(cells)
        return {cell.mode: result for cell, result in zip(cells, results)}

    def run_suite_groups(
        self, groups: Sequence[Sequence[Cell]]
    ) -> list[dict[Mode, RunResult]]:
        """Run many suites as one flat batch (maximal fan-out), then
        regroup the results per suite in input order."""
        flat = [cell for group in groups for cell in group]
        results = self.run_cells(flat)
        out: list[dict[Mode, RunResult]] = []
        cursor = 0
        for group in groups:
            out.append(
                {
                    cell.mode: results[cursor + offset]
                    for offset, cell in enumerate(group)
                }
            )
            cursor += len(group)
        return out


# ---------------------------------------------------------------------------
# the process-wide default engine (what the CLI and generators share)
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: ExperimentEngine | None = None


def _env_jobs() -> int:
    try:
        return int(os.environ.get(ENV_JOBS, "1"))
    except ValueError:
        return 1


def get_engine() -> ExperimentEngine:
    """The process-wide engine every generator routes through.

    Created on first use from the environment (``REPRO_JOBS``,
    ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``); reconfigure it with
    :func:`configure_engine`.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine(
            jobs=_env_jobs(),
            cache=None if cache_disabled_by_env() else RunCache(),
        )
    return _DEFAULT_ENGINE


def configure_engine(
    jobs: int | None = None,
    cache_dir: str | None = None,
    no_cache: bool | None = None,
    progress: ProgressFn | None = None,
    policy: RetryPolicy | None = None,
) -> ExperimentEngine:
    """Install (and return) a new default engine.

    Unspecified arguments fall back to the environment: ``REPRO_JOBS``,
    ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE`` and ``REPRO_CELL_DEADLINE``.
    """
    global _DEFAULT_ENGINE
    if no_cache is None:
        no_cache = cache_disabled_by_env()
    cache = None if no_cache else RunCache(cache_dir or default_cache_dir())
    _DEFAULT_ENGINE = ExperimentEngine(
        jobs=_env_jobs() if jobs is None else jobs,
        cache=cache,
        progress=progress,
        policy=policy,
    )
    return _DEFAULT_ENGINE
