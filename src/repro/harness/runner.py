"""Experiment runner: one workload x process-count x tracing mode.

Four modes reproduce the paper's comparison points:

* ``APP``        — uninstrumented application (NullTracer)
* ``SCALATRACE`` — ScalaTrace V2 default: per-rank tracing, global merge in
  ``MPI_Finalize`` over all P ranks
* ``CHAMELEON``  — online clustering with markers (the contribution)
* ``ACURDION``   — signature clustering once at finalize (Table III baseline)

Every run is deterministic; *overhead* is the virtual-time difference
against the APP run of the same configuration, aggregated over all ranks
(the paper reports aggregated wall-clock across nodes).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
from dataclasses import dataclass, field
from typing import Any

from ..core.acurdion import AcurdionTracer
from ..core.chameleon import ChameleonStats, ChameleonTracer
from ..core.config import ChameleonConfig
from ..faults.plan import FaultPlan
from ..obs.instrument import NULL_INSTRUMENT, Instrument, ObsData, Recorder
from ..obs.metrics import MetricsRegistry
from ..scalatrace.costmodel import DEFAULT_COSTS
from ..scalatrace.trace import Trace
from ..scalatrace.tracer import ScalaTraceTracer, TracerStats
from ..simmpi.launcher import run_spmd
from ..simmpi.simconfig import SimConfig, resolve_config
from ..simmpi.timing import NetworkModel
from ..workloads.base import NullTracer, Workload
from ..workloads.registry import PAPER_K


class Mode(enum.Enum):
    APP = "app"
    SCALATRACE = "scalatrace"
    CHAMELEON = "chameleon"
    ACURDION = "acurdion"


def full_scale() -> bool:
    """Paper-scale runs (P up to 1024) when REPRO_FULL_SCALE=1."""
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


def default_p_list() -> list[int]:
    """Process counts for scaling sweeps (paper: 16..1024)."""
    return [16, 64, 256, 1024] if full_scale() else [16, 64]


@dataclass
class RunResult:
    """Everything the tables/figures need from one run."""

    mode: Mode
    nprocs: int
    workload: str
    max_time: float  # virtual makespan
    total_time: float  # aggregated over ranks (paper's overhead basis)
    clocks: list[float]
    busy_times: list[float] = field(default_factory=list)
    lead_ranks: set[int] = field(default_factory=set)
    trace: Trace | None = None
    tracer_stats: list[TracerStats] = field(default_factory=list)
    chameleon_stats: list[ChameleonStats] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)
    #: ranks that crashed under fault injection (empty on fault-free runs)
    failed_ranks: tuple[int, ...] = ()
    #: event timeline + live metrics, present only when the run executed
    #: with a Recorder (never populated from the cache)
    obs: ObsData | None = None

    # -- metrics ------------------------------------------------------------

    def registry(self) -> MetricsRegistry:
        """This run's :class:`~repro.obs.metrics.MetricsRegistry`.

        Built fresh on every call from the per-rank tracer/Chameleon/
        ACURDION statistics (names ``tracer/<field>``, ``chameleon/<field>``,
        ``acurdion/<field>``, labelled by rank and — for per-state counts —
        phase), merged with the live metrics of ``obs`` when the run was
        instrumented.  This is the single typed collection path behind
        :meth:`stat` and the exporters.
        """
        reg = MetricsRegistry()
        for rank, st in enumerate(self.tracer_stats):
            for f in dataclasses.fields(st):
                value = getattr(st, f.name)
                if isinstance(value, (int, float)):
                    reg.count(f"tracer/{f.name}", float(value), rank=rank)
            for state, nbytes in st.bytes_by_state.items():
                reg.count("tracer/bytes_by_state", float(nbytes),
                          rank=rank, phase=state)
        for rank, cs in enumerate(self.chameleon_stats):
            for f in dataclasses.fields(cs):
                value = getattr(cs, f.name)
                if isinstance(value, (int, float)):
                    reg.count(f"chameleon/{f.name}", float(value), rank=rank)
            for state, n in cs.state_counts.items():
                reg.count("chameleon/state_markers", float(n),
                          rank=rank, phase=state)
        for rank, entry in enumerate(self.extra.get("acurdion", ())):
            for name, value in entry.items():
                reg.count(f"acurdion/{name}", float(value), rank=rank)
        if self.obs is not None:
            reg.merge(self.obs.metrics)
        return reg

    def stat(self, name: str, *, source: str = "auto",
             rank: int | None = None, phase: str | None = None) -> float:
        """Aggregated metric lookup backed by :meth:`registry`.

        ``name`` may be fully qualified (``"chameleon/vote_time"``) or bare
        (``"vote_time"``); a bare name is resolved through ``source`` —
        ``"tracer"``, ``"chameleon"``, ``"acurdion"``, or ``"auto"`` to try
        each prefix (then the bare name itself) in that order.  Missing
        metrics are 0.0, so callers never branch on which stats dicts a
        mode happened to populate.
        """
        reg = self.registry()
        if "/" in name:
            candidates = [name]
        elif source == "auto":
            candidates = [f"tracer/{name}", f"chameleon/{name}",
                          f"acurdion/{name}", name]
        else:
            candidates = [f"{source}/{name}"]
        for candidate in candidates:
            if reg.has(candidate):
                return reg.value(candidate, rank=rank, phase=phase)
        return 0.0

    # -- aggregates ---------------------------------------------------------

    @property
    def sum_stat(self):
        """Removed after a one-release deprecation."""
        raise AttributeError(
            "RunResult.sum_stat was removed after a one-release "
            "deprecation; use RunResult.stat(name, source='tracer')"
        )

    @property
    def sum_cstat(self):
        """Removed after a one-release deprecation."""
        raise AttributeError(
            "RunResult.sum_cstat was removed after a one-release "
            "deprecation; use RunResult.stat(name, source='chameleon')"
        )

    @property
    def cstats0(self) -> ChameleonStats:
        if not self.chameleon_stats:
            raise ValueError("not a Chameleon run")
        return self.chameleon_stats[0]

    def fingerprint(self) -> str:
        """Canonical content digest of this result.

        Two runs of the same cell — serial, parallel, or round-tripped
        through the cache — produce equal fingerprints; the trace is
        compared via its text serialization because trace nodes hold
        identity-compared helper objects.
        """
        h = hashlib.sha256()
        parts = [
            self.mode.value,
            str(self.nprocs),
            self.workload,
            repr(self.max_time),
            repr(self.total_time),
            repr(self.clocks),
            repr(self.busy_times),
            repr(sorted(self.lead_ranks)),
            repr(self.failed_ranks),
            self.trace.serialize() if self.trace is not None else "",
            repr(self.tracer_stats),
            repr(self.chameleon_stats),
            repr(sorted(self.extra.items(), key=lambda kv: kv[0])),
        ]
        for part in parts:
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()


def chameleon_config_for(
    workload: Workload, call_frequency: int = 1, **overrides: Any
) -> ChameleonConfig:
    """The paper's configuration for a workload: K from Table I, the
    dedup signature filter where the paper applies it (POP)."""
    kwargs: dict[str, Any] = {
        "k": PAPER_K.get(workload.name, getattr(workload, "paper_k", 9)),
        "call_frequency": call_frequency,
        "costs": DEFAULT_COSTS,
    }
    if getattr(workload, "needs_signature_filter", False):
        kwargs["signature_filter"] = "dedup"
    kwargs.update(overrides)
    return ChameleonConfig(**kwargs)


def run_mode(
    workload: Workload,
    nprocs: int,
    mode: Mode,
    config: ChameleonConfig | None = None,
    network: NetworkModel | None = None,
    instrument: Instrument | None = None,
    faults: FaultPlan | None = None,
    collectives: str | None = None,
    sim: SimConfig | None = None,
) -> RunResult:
    """Execute one (workload, P, mode) combination.

    ``sim`` carries every simulator engine option as one
    :class:`~repro.simmpi.SimConfig` (network model, matching, collectives
    mode, p2p mode, shard count, step budget).  The retired
    ``network=``/``collectives=`` keywords raise ``TypeError`` naming the
    ``SimConfig`` spelling.  Matching, collectives, p2p and shards all
    produce bit-identical results and virtual times, so they are
    deliberately excluded from :meth:`Cell.digest`.

    Pass a :class:`~repro.obs.instrument.Recorder` as ``instrument`` to
    capture the run's event timeline; its snapshot is attached to
    ``RunResult.obs``.  The default no-op instrument leaves virtual time
    bit-identical to an uninstrumented run.

    ``faults`` injects a deterministic :class:`~repro.faults.plan.FaultPlan`
    into the simulation; crashed ranks contribute no per-rank results and
    are reported in ``RunResult.failed_ranks`` (with the injector's event
    counters under ``extra["fault_summary"]``).  ``faults=None`` (or an
    empty plan) is guaranteed not to perturb virtual time.
    """
    cfg = config or chameleon_config_for(workload)
    ins = instrument if instrument is not None else NULL_INSTRUMENT
    sim = resolve_config(sim, network=network, collectives=collectives)

    async def main(ctx):
        if mode is Mode.APP:
            tracer: Any = NullTracer(ctx)
        elif mode is Mode.SCALATRACE:
            tracer = ScalaTraceTracer(ctx, costs=cfg.costs, window=cfg.window,
                                      tree_arity=cfg.tree_arity)
        elif mode is Mode.CHAMELEON:
            tracer = ChameleonTracer(ctx, cfg)
        elif mode is Mode.ACURDION:
            tracer = AcurdionTracer(ctx, cfg)
        else:  # pragma: no cover - exhaustive
            raise ValueError(mode)
        await workload.run(ctx, tracer)
        trace = await tracer.finalize()
        out: dict[str, Any] = {"trace": trace}
        if isinstance(tracer, ScalaTraceTracer):
            out["stats"] = tracer.stats
        if isinstance(tracer, ChameleonTracer):
            out["cstats"] = tracer.cstats
            out["is_lead"] = tracer.tracing
        if isinstance(tracer, AcurdionTracer):
            out["acurdion"] = {
                "clustering_time": tracer.clustering_time,
                "intercompression_time": tracer.intercompression_time,
            }
        return out

    res = run_spmd(main, nprocs, config=sim, instrument=ins, faults=faults)
    # Crashed ranks park with result None: tolerate holes everywhere and
    # take the trace from the first rank that holds one (rank 0 normally;
    # the lowest survivor when the tracer degraded after rank 0 died).
    per_rank = [r if isinstance(r, dict) else {} for r in res.results]
    result = RunResult(
        mode=mode,
        nprocs=nprocs,
        workload=workload.name,
        max_time=res.max_time,
        total_time=res.total_time,
        clocks=res.clocks,
        busy_times=res.busy_times,
        lead_ranks={
            rank for rank, r in enumerate(per_rank) if r.get("is_lead")
        },
        trace=next(
            (r["trace"] for r in per_rank if r.get("trace") is not None), None
        ),
        tracer_stats=[r["stats"] for r in per_rank if "stats" in r],
        chameleon_stats=[r["cstats"] for r in per_rank if "cstats" in r],
        failed_ranks=res.failed_ranks,
    )
    if any("acurdion" in r for r in per_rank):
        result.extra["acurdion"] = [
            r.get("acurdion", {}) for r in per_rank
        ]
    if res.fault_summary:
        result.extra["fault_summary"] = dict(res.fault_summary)
    if isinstance(ins, Recorder):
        result.obs = ins.snapshot(
            meta={
                "workload": workload.name,
                "nprocs": nprocs,
                "mode": mode.value,
            }
        )
    return result


def run_suite(
    workload_name: str,
    nprocs: int,
    modes: tuple[Mode, ...] = (Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
    workload_params: dict[str, Any] | None = None,
    call_frequency: int = 1,
    config_overrides: dict[str, Any] | None = None,
    network: NetworkModel | None = None,
    sim: SimConfig | None = None,
) -> dict[Mode, RunResult]:
    """Run a workload under several modes with identical parameters.

    The workload and config are constructed once for the whole suite (a
    ``config_overrides``-derived config can therefore never drift between
    modes), and execution routes through the process-wide
    :class:`~repro.harness.engine.ExperimentEngine`, picking up its cache
    and worker pool.

    .. deprecated:: prefer :func:`repro.api.run` or an explicit
       :class:`~repro.harness.engine.ExperimentEngine` for new code; this
       entry point stays for compatibility with existing callers.
    """
    from .engine import get_engine  # local import: engine imports runner

    return get_engine().run_suite(
        workload_name,
        nprocs,
        modes=modes,
        workload_params=workload_params,
        call_frequency=call_frequency,
        config_overrides=config_overrides,
        network=network,
        sim=sim,
    )


def overhead(traced: RunResult, app: RunResult) -> float:
    """Aggregated tracing overhead in virtual seconds (>= 0)."""
    return max(traced.total_time - app.total_time, 0.0)
