"""repro.harness — experiment harness regenerating the paper's evaluation.

``runner`` executes (workload, P, mode) combinations; ``tables`` and
``figures`` regenerate Tables I-IV and Figures 4-11; ``reporting`` renders
the ASCII tables the bench targets print.
"""

from .export import rows_to_csv, rows_to_json, save_rows
from .metrics import OverheadBreakdown, breakdown, overhead_fraction, state_space_summary
from .reporting import ascii_bars, fmt, percent, render_table
from .runner import (
    Mode,
    RunResult,
    chameleon_config_for,
    default_p_list,
    full_scale,
    overhead,
    run_mode,
    run_suite,
)
from . import figures, tables

__all__ = [
    "Mode",
    "OverheadBreakdown",
    "RunResult",
    "ascii_bars",
    "breakdown",
    "chameleon_config_for",
    "default_p_list",
    "figures",
    "fmt",
    "full_scale",
    "overhead",
    "overhead_fraction",
    "percent",
    "render_table",
    "rows_to_csv",
    "rows_to_json",
    "run_mode",
    "run_suite",
    "save_rows",
    "state_space_summary",
    "tables",
]
