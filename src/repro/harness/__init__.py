"""repro.harness — experiment harness regenerating the paper's evaluation.

``engine`` schedules deterministic experiment cells over worker processes
with a content-addressed on-disk cache (``cache``); ``runner`` executes one
(workload, P, mode) combination; ``tables`` and ``figures`` regenerate
Tables I-IV and Figures 4-11 through the engine; ``reporting`` renders the
ASCII tables the bench targets print.
"""

from .bench import (
    compare as compare_bench,
    format_bench,
    load_bench,
    run_scaling_bench,
    save_bench,
)
from .cache import CACHE_SCHEMA_VERSION, CacheStats, RunCache, code_fingerprint
from .engine import (
    Cell,
    CellEvent,
    EngineMetrics,
    ExperimentEngine,
    configure_engine,
    get_engine,
    make_cell,
    make_suite_cells,
)
from .export import rows_to_csv, rows_to_json, save_rows
from .metrics import OverheadBreakdown, breakdown, overhead_fraction, state_space_summary
from .reporting import ascii_bars, fmt, percent, render_table
from .runner import (
    Mode,
    RunResult,
    chameleon_config_for,
    default_p_list,
    full_scale,
    overhead,
    run_mode,
    run_suite,
)
from . import figures, tables

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "Cell",
    "CellEvent",
    "EngineMetrics",
    "ExperimentEngine",
    "Mode",
    "OverheadBreakdown",
    "RunCache",
    "RunResult",
    "ascii_bars",
    "breakdown",
    "chameleon_config_for",
    "code_fingerprint",
    "compare_bench",
    "configure_engine",
    "default_p_list",
    "figures",
    "fmt",
    "format_bench",
    "full_scale",
    "get_engine",
    "load_bench",
    "make_cell",
    "make_suite_cells",
    "overhead",
    "overhead_fraction",
    "percent",
    "render_table",
    "rows_to_csv",
    "rows_to_json",
    "run_mode",
    "run_scaling_bench",
    "run_suite",
    "save_bench",
    "save_rows",
    "state_space_summary",
    "tables",
]
