"""Declared regular p2p patterns and the macro p2p gate replay.

PR 5 made collectives closed-form; this module does the same for the
*regular* point-to-point phases that dominate the stencil/wavefront
workloads (POP halos, Sweep3D sweeps, AMG/LULESH neighbor exchanges, NPB
transposes).  A workload declares its exchange structure once as a
:class:`NeighborPattern` — a per-rank script of isend/send/recv/wait/compute
ops with static peers, tags and sizes — and ``Communicator.exchange``
resolves an eligible instance through a :class:`_P2PGate`: every rank of
the communicator parks on the gate, the last arrival replays the whole
pattern with the engine's exact LogGP arithmetic, and one
``engine.wave_resolve`` bulk-advances all clocks.  Bit-identical in
virtual time to the message-level path, which survives unchanged as the
per-instance fallback and as ``SimConfig(p2p="simulated")``.

Two replay tiers, both writing into a :class:`~.rankstate.RankStateColumns`
columnar store:

* **slot replay** — when the pattern compiles to aligned slots (uniform op
  kind per position, matched sends strictly earlier than their recvs) and
  no instrumentation is attached, each slot is one vectorized numpy
  expression over the participating ranks: no Python loop over ranks.
* **script replay** — a scalar interpreter mirroring the collective
  mini-engine op for op; handles wavefront dependency chains, rendezvous
  fused sends and obs emission synthesis (per-message recv spans and
  p2p/* metrics identical to the simulated path's).

The op vocabulary (all peers are communicator-local ranks, payloads are
always ``None``):

* ``("isend", dest, tag, nbytes)`` — non-blocking send
* ``("send", dest, tag, nbytes)`` — blocking send (isend + wait fused)
* ``("recv", src, tag)`` — blocking exact-source, exact-tag receive
* ``("wait", k)`` — wait on this rank's ``k``-th ``isend`` (0-based)
* ``("compute", seconds)`` — local busy time (pre-scaled by the caller)
* ``None`` — placeholder keeping per-rank scripts slot-aligned
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .comm import MAX_USER_TAG
from .errors import DeadlockError
from .rankstate import RankStateColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .timing import NetworkModel

_OP_KINDS = ("isend", "send", "recv", "wait", "compute")


class _RunSimToken:
    """Sentinel a gate resolves parked entries with when the instance must
    rerun on the message-level path (mid-phase traffic abort)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RUN_SIM>"


RUN_SIM = _RunSimToken()


class NeighborPattern:
    """One declared regular exchange: per-rank op scripts, validated.

    Construction validates the whole pattern once (peers in range, user
    tags only, wait indices sane, and — the property the gate relies on —
    *channel balance*: every ``(src, dest, tag)`` channel carries exactly
    as many sends as receives, so a completed instance leaves every
    mailbox exactly as it found it).

    Instances are immutable and content-keyed: ranks of one gate must
    present patterns with equal :attr:`key` or the gate raises
    ``PatternMismatchError``.
    """

    __slots__ = (
        "name", "size", "ops", "total_messages", "total_bytes",
        "_plan", "_plan_tried",
    )

    def __init__(self, name: str, size: int,
                 ops: Sequence[Sequence[tuple | None]]) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("pattern name must be a non-empty string")
        if not isinstance(size, int) or size < 1:
            raise ValueError(f"pattern size must be a positive int, got {size!r}")
        if len(ops) != size:
            raise ValueError(
                f"pattern {name!r}: ops must list one script per rank "
                f"({size}), got {len(ops)}"
            )
        self.name = name
        self.size = size
        frozen = tuple(tuple(rank_ops) for rank_ops in ops)
        self.total_messages, self.total_bytes = self._validate(frozen)
        self.ops = frozen
        self._plan = None
        self._plan_tried = False

    def _validate(self, ops: tuple) -> tuple[int, int]:
        """Single fused pass: validate every op and return the pattern's
        ``(total_messages, total_bytes)``.

        The hot loop makes only cheap combined checks; any anomaly defers
        to :meth:`_diagnose`, which re-walks that rank's script with the
        detailed per-op validator and raises the precise error.  Patterns
        are built once per ``declare_pattern`` cache key, but at P=16384
        even one pass over ~400k ops sits on the bench's critical path,
        so the common case stays branch-light.
        """
        size = self.size
        maxtag = MAX_USER_TAG
        channels: dict[tuple[int, int, int], int] = {}
        get = channels.get
        nmsg = 0
        nbytes_total = 0
        for rank, rank_ops in enumerate(ops):
            n_isends = 0
            waited = 0  # bitmask over this rank's isend indices
            for pos, op in enumerate(rank_ops):
                if op is None:
                    continue
                if not isinstance(op, tuple) or not op:
                    self._diagnose(rank, rank_ops)
                kind = op[0]
                if kind == "isend" or kind == "send":
                    if len(op) != 4:
                        self._diagnose(rank, rank_ops)
                    _, dest, tag, nbytes = op
                    if (type(dest) is not int or dest < 0 or dest >= size
                            or type(tag) is not int or tag < 0
                            or tag > maxtag
                            or type(nbytes) is not int or nbytes < 0):
                        self._diagnose(rank, rank_ops)
                    key = (rank, dest, tag)
                    channels[key] = get(key, 0) + 1
                    nmsg += 1
                    nbytes_total += nbytes
                    if kind == "isend":
                        n_isends += 1
                elif kind == "recv":
                    if len(op) != 3:
                        self._diagnose(rank, rank_ops)
                    _, src, tag = op
                    if (type(src) is not int or src < 0 or src >= size
                            or type(tag) is not int or tag < 0
                            or tag > maxtag):
                        self._diagnose(rank, rank_ops)
                    key = (src, rank, tag)
                    channels[key] = get(key, 0) - 1
                elif kind == "wait":
                    if len(op) != 2:
                        self._diagnose(rank, rank_ops)
                    k = op[1]
                    if (type(k) is not int or k < 0 or k >= n_isends
                            or (waited >> k) & 1):
                        self._diagnose(rank, rank_ops)
                    waited |= 1 << k
                elif kind == "compute":
                    if len(op) != 2:
                        self._diagnose(rank, rank_ops)
                    seconds = op[1]
                    if (type(seconds) is not float
                            and type(seconds) is not int) or seconds < 0:
                        self._diagnose(rank, rank_ops)
                else:
                    self._diagnose(rank, rank_ops)
        for (src, dest, tag), balance in channels.items():
            if balance:
                nrecv = -min(balance, 0)
                nsend = max(balance, 0)
                raise ValueError(
                    f"pattern {self.name!r}: channel {src}->{dest} tag={tag} "
                    f"has {nsend} more send(s) than recv(s)"
                    if balance > 0 else
                    f"pattern {self.name!r}: channel {src}->{dest} tag={tag} "
                    f"has {nrecv} more recv(s) than send(s)"
                )
        return nmsg, nbytes_total

    def _diagnose(self, rank: int, rank_ops: tuple) -> None:
        """Slow path: re-walk one rank's script with detailed checks and
        raise the precise error the fast loop only detected."""
        name = self.name
        n_isends = 0
        waited: set[int] = set()
        for pos, op in enumerate(rank_ops):
            if op is None:
                continue
            if not isinstance(op, tuple) or not op or op[0] not in _OP_KINDS:
                raise ValueError(
                    f"pattern {name!r} rank {rank} op {pos}: "
                    f"unknown op {op!r}"
                )
            kind = op[0]
            if kind == "isend" or kind == "send":
                if len(op) != 4:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: "
                        f"{kind} needs (kind, dest, tag, nbytes)"
                    )
                _, dest, tag, nbytes = op
                self._check_peer(rank, pos, dest, "dest")
                self._check_tag(rank, pos, tag)
                if not isinstance(nbytes, int) or isinstance(nbytes, bool) \
                        or nbytes < 0:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: "
                        f"nbytes must be a non-negative int, got {nbytes!r}"
                    )
                if kind == "isend":
                    n_isends += 1
            elif kind == "recv":
                if len(op) != 3:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: "
                        "recv needs (kind, src, tag)"
                    )
                _, src, tag = op
                self._check_peer(rank, pos, src, "src")
                self._check_tag(rank, pos, tag)
            elif kind == "wait":
                if len(op) != 2 or not isinstance(op[1], int) \
                        or isinstance(op[1], bool):
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: "
                        "wait needs (kind, isend_index)"
                    )
                k = op[1]
                if k < 0 or k >= n_isends:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: wait({k}) "
                        f"does not follow isend #{k} (seen {n_isends})"
                    )
                if k in waited:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: "
                        f"isend #{k} waited twice"
                    )
                waited.add(k)
            else:  # compute
                if len(op) != 2 or not isinstance(op[1], (int, float)) \
                        or isinstance(op[1], bool) or op[1] < 0:
                    raise ValueError(
                        f"pattern {name!r} rank {rank} op {pos}: compute "
                        "needs (kind, seconds >= 0)"
                    )
        raise AssertionError(
            f"pattern {name!r} rank {rank}: fast validator flagged this "
            "script but the detailed walk found nothing wrong"
        )  # pragma: no cover - fast/slow paths check the same properties

    def _check_peer(self, rank: int, pos: int, peer: Any, role: str) -> None:
        if not isinstance(peer, int) or isinstance(peer, bool) \
                or peer < 0 or peer >= self.size:
            raise ValueError(
                f"pattern {self.name!r} rank {rank} op {pos}: {role} "
                f"{peer!r} out of range for size {self.size}"
            )

    def _check_tag(self, rank: int, pos: int, tag: Any) -> None:
        if not isinstance(tag, int) or isinstance(tag, bool) \
                or tag < 0 or tag > MAX_USER_TAG:
            raise ValueError(
                f"pattern {self.name!r} rank {rank} op {pos}: tag {tag!r} "
                f"must be a user tag in [0, {MAX_USER_TAG}]"
            )

    @property
    def key(self) -> tuple:
        """Content identity: ranks joining one gate must agree on this."""
        return (self.name, self.size, self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NeighborPattern {self.name!r} size={self.size} "
            f"messages={self.total_messages} bytes={self.total_bytes}>"
        )

    def slot_plan(self):
        """The compiled vectorizable slot plan, or ``None`` when the
        pattern's structure cannot be replayed slot-by-slot (then the
        scalar script replay runs instead).  Compiled once, cached."""
        if not self._plan_tried:
            self._plan_tried = True
            self._plan = _compile_slots(self)
        return self._plan


# -- slot compilation ---------------------------------------------------------
#
# A slot plan exists when the per-rank scripts align positionally: every
# occupied position (slot) holds ops of one kind, each recv's matched send
# lives in a single earlier slot shared by all receivers of that slot, and
# each wait slot targets a single isend slot.  Halo exchanges and
# transposes compile; wavefront sweeps (recv-before-send chains) do not
# and take the script replay.


class _SendSlot:
    __slots__ = ("slot", "kind", "idx", "nb", "pos_of")

    def __init__(self, slot, kind, ranks, nbytes):
        self.slot = slot
        self.kind = kind
        self.idx = np.array(ranks, dtype=np.intp)
        self.nb = np.array(nbytes, dtype=np.int64)
        self.pos_of = {r: j for j, r in enumerate(ranks)}


class _RecvSlot:
    __slots__ = ("slot", "idx", "send", "gather")

    def __init__(self, slot, ranks, send, gather):
        self.slot = slot
        self.idx = np.array(ranks, dtype=np.intp)
        self.send = send
        self.gather = np.array(gather, dtype=np.intp)


class _WaitSlot:
    __slots__ = ("slot", "idx", "send", "pos", "rslot")

    def __init__(self, slot, ranks, send, pos, rslot):
        self.slot = slot
        self.idx = np.array(ranks, dtype=np.intp)
        self.send = send
        self.pos = np.array(pos, dtype=np.intp)
        self.rslot = np.array(rslot, dtype=np.int64)


class _ComputeSlot:
    __slots__ = ("slot", "idx", "sec")

    def __init__(self, slot, ranks, sec):
        self.slot = slot
        self.idx = np.array(ranks, dtype=np.intp)
        self.sec = np.array(sec, dtype=np.float64)


def _compile_slots(pattern: NeighborPattern):
    size = pattern.size
    ops = pattern.ops
    nslots = max((len(o) for o in ops), default=0)
    slot_kind: list[str | None] = [None] * nslots
    slot_ranks: list[list[int]] = [[] for _ in range(nslots)]
    slot_args: list[list[tuple]] = [[] for _ in range(nslots)]
    isend_slots: list[list[int]] = [[] for _ in range(size)]
    for r in range(size):
        for s, op in enumerate(ops[r]):
            if op is None:
                continue
            kind = op[0]
            if slot_kind[s] is None:
                slot_kind[s] = kind
            elif slot_kind[s] != kind:
                return None  # mixed kinds in one slot
            slot_ranks[s].append(r)
            slot_args[s].append(op)
            if kind == "isend":
                isend_slots[r].append(s)
    # Channel FIFO pairing: the i-th send on a (src, dest, tag) channel
    # matches the i-th recv — exactly the engine's per-lane discipline.
    # Ascending slot order is each rank's program order.
    chan_sends: dict[tuple, list[tuple[int, int]]] = {}
    chan_recvs: dict[tuple, list[tuple[int, int]]] = {}
    for s in range(nslots):
        kind = slot_kind[s]
        if kind == "isend" or kind == "send":
            for r, op in zip(slot_ranks[s], slot_args[s]):
                chan_sends.setdefault((r, op[1], op[2]), []).append((s, r))
        elif kind == "recv":
            for r, op in zip(slot_ranks[s], slot_args[s]):
                chan_recvs.setdefault((op[1], r, op[2]), []).append((s, r))
    match_of: dict[tuple[int, int], tuple[int, int]] = {}
    recv_slot_of_send: dict[tuple[int, int], int] = {}
    for key, sends in chan_sends.items():
        recvs = chan_recvs.get(key)
        if recvs is None or len(recvs) != len(sends):
            return None  # placeholder asymmetry; script replay handles it
        for (sslot, srank), (rslot, rrank) in zip(sends, recvs):
            if sslot >= rslot:
                return None  # send must land strictly before its recv slot
            match_of[(rslot, rrank)] = (sslot, srank)
            recv_slot_of_send[(sslot, srank)] = rslot
    compiled: list = []
    by_slot: dict[int, Any] = {}
    for s in range(nslots):
        kind = slot_kind[s]
        if kind is None:
            continue
        ranks = slot_ranks[s]
        args = slot_args[s]
        if kind == "isend" or kind == "send":
            rec: Any = _SendSlot(s, kind, ranks, [a[3] for a in args])
        elif kind == "recv":
            pairs = [match_of[(s, r)] for r in ranks]
            sslots = {p[0] for p in pairs}
            if len(sslots) != 1:
                return None  # receivers disagree on the send slot
            send = by_slot[sslots.pop()]
            rec = _RecvSlot(s, ranks, send,
                            [send.pos_of[p[1]] for p in pairs])
        elif kind == "wait":
            targets = {isend_slots[r][a[1]] for r, a in zip(ranks, args)}
            if len(targets) != 1:
                return None
            send = by_slot[targets.pop()]
            rec = _WaitSlot(
                s, ranks, send,
                [send.pos_of[r] for r in ranks],
                [recv_slot_of_send[(send.slot, r)] for r in ranks],
            )
        else:  # compute
            rec = _ComputeSlot(s, ranks, [float(a[1]) for a in args])
        compiled.append(rec)
        by_slot[s] = rec
    return compiled


# -- slot replay (vectorized) -------------------------------------------------


def _replay_slots(plan: list, cols: RankStateColumns,
                  net: "NetworkModel") -> bool:
    """Replay a compiled slot plan over the columns; one numpy expression
    per slot, no per-rank Python loop.

    Returns ``False`` without touching ``cols`` when the plan is
    infeasible for this network (a fused send or an unfireable wait would
    go rendezvous); the caller then runs the script replay.  Every
    floating-point expression below evaluates the same IEEE-754 operation
    sequence as ``comm.py``/the mini-engine, so the results are bit-equal.
    """
    o_send = net.o_send
    o_recv = net.o_recv
    latency = net.latency
    eager_max = net.eager_threshold
    mb = net.min_message_bytes
    bw = net.bandwidth
    # Feasibility pass first: no column is mutated unless the whole plan
    # can run.  Rendezvous needs the matching recv to have fired before
    # the sender's wait slot; a fused ("send", ...) has its wait at the
    # send itself, which can never follow the recv.
    eager_of: dict[int, np.ndarray] = {}
    for rec in plan:
        if isinstance(rec, _SendSlot):
            eager_m = rec.nb <= eager_max
            eager_of[rec.slot] = eager_m
            if rec.kind == "send" and not eager_m.all():
                return False
        elif isinstance(rec, _WaitSlot):
            rdv = ~eager_of[rec.send.slot][rec.pos]
            if rdv.any() and (rec.rslot[rdv] >= rec.slot).any():
                return False
    clock = cols.clock
    busy = cols.busy
    runtime: dict[int, tuple] = {}
    for rec in plan:
        if isinstance(rec, _SendSlot):
            idx = rec.idx
            nb = rec.nb
            eager_m = eager_of[rec.slot]
            cols.msgs_sent[idx] += 1
            cols.bytes_sent[idx] += nb
            # eager: charge(o_send + transfer); rendezvous: charge(o_send)
            transfer = np.maximum(nb, mb) / bw
            dt = np.where(eager_m, o_send + transfer, o_send)
            c = clock[idx] + dt
            clock[idx] = c
            busy[idx] += dt
            # eager message time is the arrival, rendezvous is send_ready
            msg_time = np.where(eager_m, c + latency, c)
            runtime[rec.slot] = (
                eager_m, transfer, msg_time, np.zeros(len(idx)),
            )
        elif isinstance(rec, _RecvSlot):
            g = rec.gather
            s_eager, s_transfer, s_msg_time, s_done_send = \
                runtime[rec.send.slot]
            mt = s_msg_time[g]
            eg = s_eager[g]
            tr = s_transfer[g]
            nbg = rec.send.nb[g]
            ridx = rec.idx
            post = clock[ridx]
            # eager: done_recv = max(post + o_recv, arrival)
            # rendezvous: start = max(post + o_recv, send_ready)
            start = np.maximum(post + o_recv, mt)
            done_recv = np.where(eg, start, (start + latency) + tr)
            s_done_send[g] = start + tr
            cols.msgs_received[ridx] += 1
            cols.bytes_received[ridx] += nbg
            busy[ridx] += o_recv
            clock[ridx] = np.maximum(post, done_recv)
        elif isinstance(rec, _WaitSlot):
            s_eager, s_transfer, _, s_done_send = runtime[rec.send.slot]
            p = rec.pos
            rdv = ~s_eager[p]
            if rdv.any():
                widx = rec.idx[rdv]
                prdv = p[rdv]
                # Request.wait: advance to done_send, absorb the deferred
                # transfer busy charge.  Eager waits are no-ops.
                clock[widx] = np.maximum(clock[widx], s_done_send[prdv])
                busy[widx] += s_transfer[prdv]
        else:  # _ComputeSlot
            idx = rec.idx
            clock[idx] += rec.sec
            busy[idx] += rec.sec
    return True


# -- script replay (scalar interpreter) ---------------------------------------


class _PFut:
    """Completion handle inside the script replay (mirrors _MiniFut)."""

    __slots__ = ("done", "time", "busy_charge", "waiter")

    def __init__(self) -> None:
        self.done = False
        self.time = 0.0
        self.busy_charge = 0.0
        self.waiter = None


#: Shared pre-resolved handle for eager sends (completion time equals the
#: post-charge clock, so waiting never advances anything).
_EAGER_DONE = _PFut()
_EAGER_DONE.done = True
_EAGER_DONE.time = -1.0


class _PState:
    """One rank's replica of its task state during the script replay."""

    __slots__ = (
        "i", "ops", "pc", "clock", "busy", "msgs_sent", "bytes_sent",
        "msgs_received", "bytes_received", "isends", "events", "finished",
    )

    def __init__(self, i, ops, clock, busy, msgs_sent, bytes_sent,
                 msgs_received, bytes_received, collect):
        self.i = i
        self.ops = ops
        self.pc = 0
        self.clock = clock
        self.busy = busy
        self.msgs_sent = msgs_sent
        self.bytes_sent = bytes_sent
        self.msgs_received = msgs_received
        self.bytes_received = bytes_received
        self.isends: list[_PFut] = []
        self.events: list[tuple] | None = [] if collect else None
        self.finished = False


class _ScriptReplay:
    """Scalar replay of one pattern instance.

    Clock/busy/counter arithmetic copies the collective mini-engine (and
    therefore ``Comm.isend`` / ``CommContext._fire_match``) operation for
    operation; matching is per-(src, dest, tag) FIFO lanes, exactly the
    indexed mailbox's discipline for exact-tag receives.  With ``collect``
    the replay records, per rank in program order, the send-metric and
    recv-span events the message-level path would have emitted, for the
    gate to synthesize afterwards.
    """

    __slots__ = (
        "pattern", "states", "_queued", "_pending", "_ready", "collect",
        "_o_send", "_o_recv", "_latency", "_eager_max", "_min_bytes",
        "_bandwidth",
    )

    def __init__(self, pattern: NeighborPattern, cols: RankStateColumns,
                 net: "NetworkModel", collect: bool) -> None:
        self.pattern = pattern
        self.collect = collect
        self._o_send = net.o_send
        self._o_recv = net.o_recv
        self._latency = net.latency
        self._eager_max = net.eager_threshold
        self._min_bytes = net.min_message_bytes
        self._bandwidth = net.bandwidth
        clock = cols.clock.tolist()
        busy = cols.busy.tolist()
        ms = cols.msgs_sent.tolist()
        bs = cols.bytes_sent.tolist()
        mr = cols.msgs_received.tolist()
        br = cols.bytes_received.tolist()
        self.states = [
            _PState(
                i, [op for op in pattern.ops[i] if op is not None],
                clock[i], busy[i], ms[i], bs[i], mr[i], br[i], collect,
            )
            for i in range(cols.n)
        ]
        # (src, dest, tag) -> deque of messages / a single parked recv.
        # A receiver blocks on each recv, so at most one pending per key;
        # queued lanes are real deques (a channel may carry several
        # messages, e.g. a 2-rank ring sending both ways on one tag).
        self._queued: dict[tuple, deque] = {}
        self._pending: dict[tuple, tuple] = {}
        self._ready: deque = deque()

    def run(self, cols: RankStateColumns) -> None:
        ready = self._ready
        for st in self.states:
            ready.append((st, None))
        while ready:
            st, fut = ready.popleft()
            if fut is not None:
                # Request.wait's resume: advance to the completion time,
                # then absorb any deferred busy charge, in that order.
                if fut.time > st.clock:
                    st.clock = fut.time
                if fut.busy_charge:
                    st.busy += fut.busy_charge
                    fut.busy_charge = 0.0
            self._step(st)
        blocked = [
            f"rank {st.i}: pattern {self.pattern.name!r} blocked at op "
            f"{st.ops[st.pc - 1] if st.pc else None!r}"
            for st in self.states if not st.finished
        ]
        if blocked:
            # The message-level path would deadlock on the same cycle
            # (e.g. mutual rendezvous blocking sends); same diagnosis.
            raise DeadlockError(blocked)
        for st in self.states:
            i = st.i
            cols.clock[i] = st.clock
            cols.busy[i] = st.busy
            cols.msgs_sent[i] = st.msgs_sent
            cols.bytes_sent[i] = st.bytes_sent
            cols.msgs_received[i] = st.msgs_received
            cols.bytes_received[i] = st.bytes_received

    def _step(self, st: _PState) -> None:
        ops = st.ops
        n = len(ops)
        while st.pc < n:
            op = ops[st.pc]
            code = op[0]
            if code == "recv":
                src, tag = op[1], op[2]
                key = (src, st.i, tag)
                lane = self._queued.get(key)
                if lane is None:
                    fut = _PFut()
                    fut.waiter = st
                    self._pending[key] = (st.clock, fut, st)
                    st.pc += 1
                    return
                msg = lane.popleft()
                if not lane:
                    del self._queued[key]
                st.pc += 1
                # already queued: fire inline, like irecv's immediate
                # match + Request.wait short-circuit
                self._fire_recv(st, st.clock, msg, src, tag)
                continue
            if code == "isend" or code == "send":
                fut = self._isend(st, op[1], op[2], op[3])
                st.pc += 1
                if code == "isend":
                    st.isends.append(fut)
                    continue
            else:
                if code == "wait":
                    fut = st.isends[op[1]]
                    st.pc += 1
                else:  # compute
                    sec = op[1]
                    st.clock += sec
                    st.busy += sec
                    st.pc += 1
                    continue
            if fut.done:
                # resolved-future short-circuit, exactly Request.wait()
                if fut.time > st.clock:
                    st.clock = fut.time
                if fut.busy_charge:
                    st.busy += fut.busy_charge
                    fut.busy_charge = 0.0
            else:
                fut.waiter = st
                return
        st.finished = True

    # -- comm.py arithmetic replicas (see collectives._MiniEngine) ------

    def _isend(self, st: _PState, dest: int, tag: int, nbytes: int) -> _PFut:
        if st.events is not None:
            # p2p/bytes_sent + p2p/messages are emitted at the pre-charge
            # clock on the simulated path.
            st.events.append(("s", st.clock, nbytes))
        st.msgs_sent += 1
        st.bytes_sent += nbytes
        if nbytes <= self._eager_max:
            mb = self._min_bytes
            dt = self._o_send + (nbytes if nbytes > mb else mb) / self._bandwidth
            st.clock += dt
            st.busy += dt
            self._deliver(st.i, dest, tag,
                          (nbytes, st.clock + self._latency, None))
            return _EAGER_DONE
        fut = _PFut()
        o_send = self._o_send
        st.clock += o_send
        st.busy += o_send
        self._deliver(st.i, dest, tag, (nbytes, st.clock, fut))
        return fut

    def _deliver(self, src: int, dest: int, tag: int, msg: tuple) -> None:
        key = (src, dest, tag)
        p = self._pending.pop(key, None)
        if p is not None:
            post_time, fut, rst = p
            self._fire(post_time, fut, rst, msg, src, tag)
        else:
            lane = self._queued.get(key)
            if lane is None:
                self._queued[key] = lane = deque()
            lane.append(msg)

    def _fire_recv(self, st: _PState, post_time: float, msg: tuple,
                   src: int, tag: int) -> None:
        nbytes, msg_time, sfut = msg
        if sfut is not None:  # rendezvous: msg_time is send_ready
            mb = self._min_bytes
            transfer = (nbytes if nbytes > mb else mb) / self._bandwidth
            start = post_time + self._o_recv
            if msg_time > start:
                start = msg_time
            done_recv = start + self._latency + transfer
            sfut.done = True
            sfut.time = start + transfer
            sfut.busy_charge = transfer
            if sfut.waiter is not None:
                self._ready.append((sfut.waiter, sfut))
                sfut.waiter = None
            rdv = True
        else:  # eager: msg_time is the arrival
            done_recv = post_time + self._o_recv
            if msg_time > done_recv:
                done_recv = msg_time
            rdv = False
        st.msgs_received += 1
        st.bytes_received += nbytes
        st.busy += self._o_recv
        if done_recv > st.clock:
            st.clock = done_recv
        if st.events is not None:
            st.events.append(("r", post_time, done_recv, src, tag,
                              nbytes, rdv))

    def _fire(self, post_time: float, fut: _PFut, rst: _PState,
              msg: tuple, src: int, tag: int) -> None:
        # Sender resolution strictly before the receiver's counters and
        # resolution, mirroring CommContext.fire_match's wake order.
        nbytes, msg_time, sfut = msg
        if sfut is not None:  # rendezvous
            mb = self._min_bytes
            transfer = (nbytes if nbytes > mb else mb) / self._bandwidth
            start = post_time + self._o_recv
            if msg_time > start:
                start = msg_time
            done_send = start + transfer
            done_recv = start + self._latency + transfer
            sfut.done = True
            sfut.time = done_send
            sfut.busy_charge = transfer
            if sfut.waiter is not None:
                self._ready.append((sfut.waiter, sfut))
                sfut.waiter = None
            rdv = True
        else:  # eager
            done_recv = post_time + self._o_recv
            if msg_time > done_recv:
                done_recv = msg_time
            rdv = False
        rst.msgs_received += 1
        rst.bytes_received += nbytes
        rst.busy += self._o_recv
        if rst.events is not None:
            rst.events.append(("r", post_time, done_recv, src, tag,
                               nbytes, rdv))
        fut.done = True
        fut.time = done_recv
        if fut.waiter is not None:
            self._ready.append((fut.waiter, fut))
            fut.waiter = None


# -- the gate -----------------------------------------------------------------


class _P2PEntry:
    """One rank's registration at a p2p gate: its park future plus a
    snapshot of the task state at join time."""

    __slots__ = (
        "rank", "task", "fut", "clock0", "busy0", "sent0",
        "bytes_sent0", "recvd0", "bytes_recvd0",
    )

    def __init__(self, rank, task, fut):
        self.rank = rank
        self.task = task
        self.fut = fut
        self.clock0 = task.clock
        self.busy0 = task.busy
        self.sent0 = task.msgs_sent
        self.bytes_sent0 = task.bytes_sent
        self.recvd0 = task.msgs_received
        self.bytes_recvd0 = task.bytes_received


class _P2PGate:
    """Rendezvous point for one declared-pattern instance on one
    communicator.

    The first arriving rank computes the fast-vs-simulated verdict; every
    arrival re-checks that the communicator's mailboxes are still clean
    (stray traffic posted between arrivals aborts the gate — parked ranks
    are released with :data:`RUN_SIM` at their join clocks, costing zero
    virtual time, and everyone runs the message-level body instead).
    """

    __slots__ = ("key", "name", "seq", "reason", "expected", "consulted",
                 "entries")

    def __init__(self, pattern: NeighborPattern, seq: int,
                 reason: str | None, expected: int) -> None:
        self.key = pattern.key
        self.name = pattern.name
        self.seq = seq
        self.reason = reason
        self.expected = expected
        self.consulted = 0
        self.entries: list[_P2PEntry] = []

    def abort(self, engine, reason: str) -> None:
        """Late-conflict abort: release every parked entry to the
        message-level path at its own join clock."""
        self.reason = reason
        entries = self.entries
        self.entries = []
        engine.wave_resolve(
            [(e.fut, RUN_SIM, e.clock0) for e in entries]
        )


def resolve_p2p_gate(comm, pattern: NeighborPattern, gate: _P2PGate) -> None:
    """Replay the pattern for all participants and bulk-advance clocks.

    Called by the last-arriving rank.  Chooses the vectorized slot replay
    when no instrumentation is attached and the pattern compiled (and is
    network-feasible); otherwise the scalar script replay, which also
    synthesizes the obs events the message-level path would have emitted.
    """
    ctx = comm.context
    engine = comm.engine
    entries = sorted(gate.entries, key=lambda e: e.rank)
    # All communicator-local ranks participate, so entry i is local rank i.
    cols = RankStateColumns.from_entries(entries)
    net = engine.network
    ins = engine.instrument
    emit = ins.enabled
    events = None
    replayed = False
    if not emit:
        plan = pattern.slot_plan()
        if plan is not None:
            replayed = _replay_slots(plan, cols, net)
    if not replayed:
        script = _ScriptReplay(pattern, cols, net, collect=emit)
        script.run(cols)
        if emit:
            events = [st.events for st in script.states]
    engine.total_messages += pattern.total_messages
    engine.total_bytes += pattern.total_bytes
    engine.p2p_fast += len(entries)
    cols.write_back([e.task for e in entries])
    final_clock = cols.clock.tolist()
    if emit:
        metrics = ins.metrics
        ranks = ctx.ranks
        for i, entry in enumerate(entries):
            world = ranks[entry.rank]
            for ev in events[i]:
                if ev[0] == "s":
                    _, t, nbytes = ev
                    metrics.count("p2p/bytes_sent", nbytes, rank=world,
                                  op="send", t=t)
                    metrics.count("p2p/messages", 1, rank=world,
                                  op="send", t=t)
                else:
                    _, post, done, src, tag, nbytes, rdv = ev
                    wsrc = ranks[src]
                    ins.span(
                        world, f"recv<-{wsrc}", "p2p", post, done,
                        {"src": wsrc, "tag": tag, "nbytes": nbytes,
                         "rendezvous": rdv, "comm": ctx.id},
                    )
                    metrics.count("p2p/bytes_received", nbytes, rank=world,
                                  op="recv", t=done)
                    metrics.observe("p2p/recv_latency",
                                    max(done - post, 0.0), rank=world)
            metrics.count("p2p/fast_hits", 1, rank=world, op=pattern.name,
                          t=final_clock[i])
    engine.wave_resolve(
        [(entry.fut, None, final_clock[i])
         for i, entry in enumerate(entries)]
    )
