"""Columnar per-rank state: numpy arrays instead of per-rank objects.

The macro fast paths resolve whole phases (a collective instance, a
declared p2p pattern) for every participant at once.  Holding each
participant's clock/busy/traffic counters in one Python object per rank —
the ``_RankState`` layout the collective mini-engine uses — costs an
allocation per rank per gate plus pointer-chasing over P objects, which
docs/PERF.md measured as a ~10% GC + LLC working-set drag at P=16384.

:class:`RankStateColumns` is the structure-of-arrays alternative: six
parallel numpy columns indexed by position (local rank).  Gate replays
mutate the columns — vectorized when the pattern allows, scalar otherwise —
and :meth:`write_back` copies the final values onto the engine ``Task``
objects in one pass.

Bit-exactness contract: every column round-trips through numpy without
changing a single bit.  ``float64`` scalars and arrays perform IEEE-754
arithmetic identical to Python ``float`` for the same expression shapes,
``float(np.float64(x)) == x`` exactly, and ``int(np.int64(n)) == n``; the
equivalence test in ``tests/simmpi/test_p2p_fastpath.py`` asserts the
dict-of-objects and columnar representations stay interchangeable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Task


class RankStateColumns:
    """Structure-of-arrays snapshot of ``n`` ranks' task state.

    Columns (all length ``n``, indexed by local rank):

    * ``clock`` / ``busy`` — float64 virtual seconds
    * ``msgs_sent`` / ``bytes_sent`` — int64 send-side traffic
    * ``msgs_received`` / ``bytes_received`` — int64 receive-side traffic
    """

    __slots__ = (
        "n", "clock", "busy", "msgs_sent", "bytes_sent",
        "msgs_received", "bytes_received",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.clock = np.zeros(n, dtype=np.float64)
        self.busy = np.zeros(n, dtype=np.float64)
        self.msgs_sent = np.zeros(n, dtype=np.int64)
        self.bytes_sent = np.zeros(n, dtype=np.int64)
        self.msgs_received = np.zeros(n, dtype=np.int64)
        self.bytes_received = np.zeros(n, dtype=np.int64)

    @classmethod
    def from_entries(cls, entries: Sequence) -> "RankStateColumns":
        """Build columns from gate entries carrying ``clock0``/``busy0``/
        counter snapshots (``_P2PEntry`` / ``_GateEntry`` shaped objects),
        position ``i`` holding ``entries[i]``'s snapshot."""
        cols = cls(len(entries))
        clock, busy = cols.clock, cols.busy
        ms, bs = cols.msgs_sent, cols.bytes_sent
        mr, br = cols.msgs_received, cols.bytes_received
        for i, e in enumerate(entries):
            clock[i] = e.clock0
            busy[i] = e.busy0
            ms[i] = e.sent0
            bs[i] = e.bytes_sent0
            mr[i] = e.recvd0
            br[i] = e.bytes_recvd0
        return cols

    @classmethod
    def from_dicts(cls, dicts: Sequence[dict]) -> "RankStateColumns":
        """Build columns from per-rank state dicts (the pre-columnar
        representation; keys match :meth:`to_dicts`)."""
        cols = cls(len(dicts))
        for i, d in enumerate(dicts):
            cols.clock[i] = d["clock"]
            cols.busy[i] = d["busy"]
            cols.msgs_sent[i] = d["msgs_sent"]
            cols.bytes_sent[i] = d["bytes_sent"]
            cols.msgs_received[i] = d["msgs_received"]
            cols.bytes_received[i] = d["bytes_received"]
        return cols

    def to_dicts(self) -> list[dict]:
        """Per-rank state dicts with native Python scalars (bit-exact:
        ``float``/``int`` conversion of float64/int64 never rounds)."""
        clock = self.clock.tolist()
        busy = self.busy.tolist()
        ms = self.msgs_sent.tolist()
        bs = self.bytes_sent.tolist()
        mr = self.msgs_received.tolist()
        br = self.bytes_received.tolist()
        return [
            {
                "clock": clock[i],
                "busy": busy[i],
                "msgs_sent": ms[i],
                "bytes_sent": bs[i],
                "msgs_received": mr[i],
                "bytes_received": br[i],
            }
            for i in range(self.n)
        ]

    def write_back(self, tasks: Sequence["Task"]) -> None:
        """Bulk-copy the columns onto engine tasks (``tasks[i]`` receives
        position ``i``).  ``.tolist()`` materializes native scalars so the
        tasks never hold numpy types."""
        clock = self.clock.tolist()
        busy = self.busy.tolist()
        ms = self.msgs_sent.tolist()
        bs = self.bytes_sent.tolist()
        mr = self.msgs_received.tolist()
        br = self.bytes_received.tolist()
        for i, task in enumerate(tasks):
            task.clock = clock[i]
            task.busy = busy[i]
            task.msgs_sent = ms[i]
            task.bytes_sent = bs[i]
            task.msgs_received = mr[i]
            task.bytes_received = br[i]
