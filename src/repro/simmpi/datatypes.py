"""Payload size estimation for simulated messages.

Real MPI sends typed buffers whose size is explicit.  Simulated workloads
mostly pass small Python objects plus an explicit ``size=`` argument for the
*modelled* payload (e.g. "a face of 102x102 doubles"), but when no size is
given we estimate one from the object so that semantics-only tests still get
sensible virtual times.
"""

from __future__ import annotations

from typing import Any

import numpy as np

_SCALAR_BYTES = 8


def payload_nbytes(obj: Any) -> int:
    """Best-effort byte size of a Python payload.

    numpy arrays report their true ``nbytes``; ``bytes``/``str`` their length;
    containers the sum of their items plus a small per-item envelope; scalars
    a machine word.  The estimate only needs to be *monotone and stable*, not
    exact, because benchmarks pass explicit sizes for anything whose cost
    matters.
    """
    t = type(obj)
    if t is int or t is float:  # hottest payloads: skip the isinstance chain
        return _SCALAR_BYTES
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", "surrogatepass"))
    if isinstance(obj, (bool, int, float, complex, np.integer, np.floating)):
        return _SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_nbytes(x) + 8 for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) + 16 for k, v in obj.items())
    size_hint = getattr(obj, "nbytes_hint", None)
    if size_hint is not None:
        return int(size_hint() if callable(size_hint) else size_hint)
    return 64  # opaque object: a conservative envelope


def doubles(count: int) -> int:
    """Size in bytes of ``count`` double-precision values."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return 8 * count


def ints(count: int) -> int:
    """Size in bytes of ``count`` 64-bit integers."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return 8 * count
