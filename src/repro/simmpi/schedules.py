"""Collective round structures, shared by both execution paths.

The message-level collectives (:mod:`repro.simmpi.collectives`) and the
macro-collective fast path evaluate *the same schedules*: dissemination
rounds for barriers, binomial trees for bcast/reduce/gather/scatter, a ring
for allgather and pairwise exchange for alltoall.  This module is the single
definition of those structures so the two paths cannot drift — the fast
path walks the orders produced here with closed-form LogGP arithmetic, the
simulated path spawns one message per edge of the very same schedule.

All helpers are pure functions of ``(size, root)``; none of them touch the
engine, clocks or payloads.
"""

from __future__ import annotations

from .topology import binomial_children, binomial_parent

__all__ = [
    "binomial_children",
    "binomial_parent",
    "binomial_order",
    "binomial_subtree",
    "dissemination_rounds",
    "pairwise_steps",
    "ring_neighbors",
]


def dissemination_rounds(size: int) -> list[int]:
    """Distances of the dissemination barrier: 1, 2, 4, ... < ``size``.

    In round ``k`` every rank ``r`` sends to ``(r + d) % size`` and
    receives from ``(r - d) % size`` where ``d = 2**k``.
    """
    rounds = []
    dist = 1
    while dist < size:
        rounds.append(dist)
        dist <<= 1
    return rounds


def binomial_order(size: int, root: int = 0) -> list[int]:
    """Every rank in parent-before-children (BFS) order from ``root``.

    This is a valid evaluation order for top-down tree collectives
    (bcast, scatter); its reverse puts children before parents, which is a
    valid order for bottom-up collectives (reduce, gather).
    """
    order = [root]
    i = 0
    while i < len(order):
        order.extend(binomial_children(order[i], size, root))
        i += 1
    return order


def binomial_subtree(rank: int, size: int, root: int = 0) -> list[int]:
    """All ranks in the binomial subtree rooted at ``rank``."""
    out = [rank]
    stack = [rank]
    while stack:
        node = stack.pop()
        for child in binomial_children(node, size, root):
            out.append(child)
            stack.append(child)
    return out


def ring_neighbors(rank: int, size: int) -> tuple[int, int]:
    """``(right, left)`` neighbours of ``rank`` on the allgather ring."""
    return (rank + 1) % size, (rank - 1) % size


def pairwise_steps(rank: int, size: int) -> list[tuple[int, int, int]]:
    """Pairwise-exchange schedule for alltoall: ``(step, to, frm)`` per
    step ``1 .. size-1``."""
    return [
        (step, (rank + step) % size, (rank - step) % size)
        for step in range(1, size)
    ]
