"""repro.simmpi — a deterministic, virtual-time simulated MPI runtime.

This package substitutes for a real MPI installation (see DESIGN.md): ranks
are coroutines scheduled deterministically, point-to-point messages follow
MPI matching semantics with eager/rendezvous protocols under a LogGP-style
cost model, and collectives use the classic tree/dissemination algorithms so
their virtual cost scales the way real implementations do.

Quick start::

    from repro.simmpi import run_spmd

    async def main(ctx):
        value = await ctx.comm.allreduce(ctx.rank)
        return value

    result = run_spmd(main, nprocs=8)
    assert result.results == [28] * 8
"""

from .collectives import BOR, LAND, LOR, MAX, MIN, PROD, SUM, Communicator
from .comm import ANY_SOURCE, ANY_TAG, Comm, CommContext, Request, wait_all
from .datatypes import doubles, ints, payload_nbytes
from .engine import Engine, Task, TaskState
from .errors import (
    CollectiveMismatchError,
    CommunicatorError,
    DeadlockError,
    EngineLimitError,
    MatchingError,
    PatternMismatchError,
    RankCrashedError,
    SimMPIError,
    TaskFailedError,
)
from .futures import SimFuture
from .launcher import RankContext, SpmdResult, run_spmd
from .patterns import NeighborPattern
from .rankstate import RankStateColumns
from .simconfig import (
    DEFAULT_CONFIG,
    SimConfig,
    resolve_auto_shards,
    resolve_config,
)
from .timing import QDR_CLUSTER, SLOW_CLUSTER, ZERO_COST, NetworkModel
from .topology import (
    Grid2D,
    Grid3D,
    RadixTree,
    binomial_children,
    binomial_parent,
    cube_grid,
    hypercube_neighbors,
    square_grid,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BOR",
    "Comm",
    "CommContext",
    "CollectiveMismatchError",
    "Communicator",
    "CommunicatorError",
    "DEFAULT_CONFIG",
    "DeadlockError",
    "Engine",
    "EngineLimitError",
    "Grid2D",
    "Grid3D",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "MatchingError",
    "NeighborPattern",
    "NetworkModel",
    "PROD",
    "PatternMismatchError",
    "QDR_CLUSTER",
    "RadixTree",
    "RankCrashedError",
    "RankContext",
    "RankStateColumns",
    "Request",
    "SLOW_CLUSTER",
    "SUM",
    "SimConfig",
    "SimFuture",
    "SimMPIError",
    "SpmdResult",
    "Task",
    "TaskFailedError",
    "TaskState",
    "ZERO_COST",
    "binomial_children",
    "binomial_parent",
    "cube_grid",
    "doubles",
    "hypercube_neighbors",
    "ints",
    "payload_nbytes",
    "resolve_auto_shards",
    "resolve_config",
    "run_spmd",
    "square_grid",
    "wait_all",
]
