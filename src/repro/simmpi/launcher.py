"""SPMD program launcher for the simulated runtime.

``run_spmd(main, nprocs)`` spawns ``nprocs`` rank coroutines, each receiving
a :class:`RankContext` (communicator + virtual clock + logical call frames),
drives them to completion and returns an :class:`SpmdResult` with per-rank
return values, final clocks and communication statistics.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from ..faults.injector import FaultInjector, injector_for
from ..faults.plan import FaultPlan
from ..obs.instrument import NULL_INSTRUMENT, Instrument
from .collectives import Communicator
from .comm import CommContext
from .engine import Engine, Task
from .simconfig import SimConfig, resolve_auto_shards, resolve_config
from .timing import NetworkModel


class RankContext:
    """Everything a rank's program needs: identity, comm, and time.

    Attributes:
        comm: the world :class:`Communicator` for this rank.
        rank / size: shortcuts into ``comm``.
    """

    def __init__(self, comm: Communicator, task: Task) -> None:
        self.comm = comm
        self.task = task
        self._compute_seq = 0  # ordinal for seeded compute-noise draws

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def clock(self) -> float:
        """This rank's current virtual time in seconds."""
        return self.task.clock

    def compute(self, seconds: float) -> None:
        """Model local computation: advance this rank's clock only.

        Under an active fault plan the duration is scaled by the rank's
        :class:`~repro.faults.ComputeFault` (constant slowdown + seeded
        jitter); with the default null injector this is one attribute check.
        """
        if seconds < 0:
            raise ValueError("compute() needs a non-negative duration")
        inj = self.comm.engine.faults
        if inj.active:
            self._compute_seq += 1
            seconds *= inj.compute_factor(self.rank, self._compute_seq)
        self.task.charge(seconds)

    @contextlib.contextmanager
    def frame(self, name: str):
        """Push a logical call frame (function name) for the duration.

        The tracer's stack walker combines these frames with the real Python
        call stack, letting workload skeletons expose the calling contexts
        the original Fortran codes would have (``ssor``, ``exchange_3``, ...).
        """
        self.task.logical_stack.append(name)
        try:
            yield
        finally:
            self.task.logical_stack.pop()


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    clocks: list[float]
    busy_times: list[float]
    total_messages: int
    total_bytes: int
    extras: dict[str, Any] = field(default_factory=dict)
    #: scheduler steps the engine executed (coroutine resumes)
    engine_steps: int = 0
    #: point-to-point matches fired (send paired with its receive)
    messages_matched: int = 0
    #: ranks parked as FAILED by fault injection (empty without faults);
    #: their ``results`` entries are None
    failed_ranks: tuple[int, ...] = ()
    #: counters of faults actually injected (see FaultInjector.summary)
    fault_summary: dict[str, int] = field(default_factory=dict)
    #: leaf collective instances (per rank) that took the closed-form
    #: macro fast path
    collectives_fast: int = 0
    #: leaf collective instances (per rank) that ran message-level,
    #: either by knob or by an eligibility fallback
    collectives_simulated: int = 0
    #: declared-pattern exchange instances (per rank) resolved by the
    #: macro p2p gate
    p2p_fast: int = 0
    #: declared-pattern exchange instances (per rank) that ran
    #: message-level, either by knob or by an eligibility fallback
    p2p_simulated: int = 0

    @property
    def nprocs(self) -> int:
        return len(self.results)

    @property
    def max_time(self) -> float:
        """Virtual makespan: the paper's 'execution time' of the run."""
        return max(self.clocks, default=0.0)

    @property
    def total_time(self) -> float:
        """Aggregated wall-clock across ranks (paper reports this for
        overhead experiments)."""
        return sum(self.clocks)


MainFn = Callable[..., Awaitable[Any]]


def run_spmd(
    main: MainFn,
    nprocs: int,
    *args: Any,
    config: SimConfig | None = None,
    network: NetworkModel | None = None,
    max_steps: int | None = None,
    instrument: Instrument = NULL_INSTRUMENT,
    faults: FaultPlan | FaultInjector | None = None,
    matching: str | None = None,
    collectives: str | None = None,
    shards: int | None = None,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``main(ctx, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    ``main`` must be an ``async def``; it is instantiated once per rank.
    Engine options travel in ``config`` (a :class:`SimConfig`); the
    pre-``SimConfig`` per-knob keywords (``network=``/``matching=``/
    ``collectives=``/``shards=``/``max_steps=``) are retired — passing
    one raises ``TypeError`` naming the ``SimConfig`` spelling.  (They
    stay in the signature so a stale call site gets that message instead
    of the keyword silently landing in ``main``'s ``**kwargs``.)

    ``instrument`` receives the run's observability events (scheduler,
    p2p, collectives, tracers); the default is the zero-cost no-op.
    Raises :class:`~repro.simmpi.errors.TaskFailedError` if any rank raises
    and :class:`~repro.simmpi.errors.DeadlockError` on a matching deadlock.

    ``faults`` installs a :class:`~repro.faults.FaultPlan` (or prepared
    injector).  With an active plan the run has partial-failure semantics:
    crashed ranks appear in ``SpmdResult.failed_ranks`` with ``None``
    results, and no error is raised for them.  An empty plan is a strict
    no-op — all virtual times stay bit-identical.

    ``config.matching`` selects the mailbox implementation: ``"indexed"``
    (default, per-``(src, tag)`` lanes) or ``"linear"`` (the pre-index
    FIFO-scan reference, kept for equivalence testing — both produce
    bit-identical match order and virtual times).

    ``config.collectives`` selects the collective execution mode:
    ``"fast"`` (default) lets eligible collectives take the closed-form
    macro path — bit-identical virtual times and results, orders of
    magnitude fewer engine steps — while anything a fault or tracer could
    observe falls back per instance to ``"simulated"``, the
    always-message-level reference path.  See docs/PERF.md
    ("Macro-collectives").

    ``config.p2p`` does the same for declared regular exchanges
    (:class:`~repro.simmpi.patterns.NeighborPattern` via
    ``Communicator.exchange``): ``"fast"`` (default) resolves eligible
    instances through a per-instance gate replay — bit-identical virtual
    times, one scheduler step per rank — while ``"simulated"`` (and any
    eligibility fallback) drives the declared ops message-level.  See
    docs/PERF.md ("Macro p2p").

    ``config.shards`` partitions the ranks over that many worker
    processes advancing in conservative-PDES waves — bit-identical
    virtual clocks/busy/results/totals to ``shards=1``, with automatic
    fallback to the single-process engine whenever a run uses a feature
    the sharded path cannot reproduce exactly (see docs/PERF.md,
    "Sharded engine"; the fallback reason lands in
    ``SpmdResult.extras["shard_fallback"]``).  ``shards="auto"`` resolves
    a concrete count per run from the world size and machine cores
    (:func:`~repro.simmpi.simconfig.resolve_auto_shards`).
    """
    cfg = resolve_config(
        config, network=network, max_steps=max_steps, matching=matching,
        collectives=collectives, shards=shards,
    )
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    if cfg.shards == "auto":
        # Resolve before dispatch so the sharded path (and extras) always
        # sees a concrete count; cache identity is unaffected (shards is
        # excluded from SimConfig.cache_key by design).
        cfg = cfg.replace(shards=resolve_auto_shards(nprocs))
    if cfg.shards > 1:
        from .sharded import run_sharded

        return run_sharded(main, nprocs, args, kwargs, cfg,
                           instrument=instrument, faults=faults)
    return _run_single(main, nprocs, args, kwargs, cfg,
                       instrument=instrument, faults=faults)


def _run_single(
    main: MainFn,
    nprocs: int,
    args: tuple,
    kwargs: dict,
    cfg: SimConfig,
    *,
    instrument: Instrument = NULL_INSTRUMENT,
    faults: FaultPlan | FaultInjector | None = None,
) -> SpmdResult:
    """The single-process engine: the reference (and oracle) execution."""
    injector = injector_for(faults)
    if injector.active:
        injector.plan.validate(nprocs)
    engine = Engine(network=cfg.network, max_steps=cfg.max_steps,
                    instrument=instrument, faults=injector,
                    matching=cfg.matching, collectives=cfg.collectives,
                    p2p=cfg.p2p)
    world_ctx = CommContext(engine, range(nprocs))
    for rank in range(nprocs):
        # Task must exist before the Communicator that references it; spawn
        # with a placeholder coroutine created right after.
        task = Task(rank, None)  # type: ignore[arg-type]
        comm = Communicator(world_ctx, rank, task)
        rctx = RankContext(comm, task)
        task.coro = main(rctx, *args, **kwargs)
        engine.adopt(task)
    engine.run()
    return SpmdResult(
        results=engine.results(),
        clocks=engine.clocks(),
        busy_times=engine.busy_times(),
        total_messages=engine.total_messages,
        total_bytes=engine.total_bytes,
        engine_steps=engine.steps,
        messages_matched=engine.total_matches,
        failed_ranks=tuple(sorted(injector.failed)),
        fault_summary=injector.summary() if injector.active else {},
        collectives_fast=engine.collectives_fast,
        collectives_simulated=engine.collectives_simulated,
        p2p_fast=engine.p2p_fast,
        p2p_simulated=engine.p2p_simulated,
    )
