"""Virtual-time network and host cost models (LogGP-flavoured).

The simulator charges virtual time for every communication operation using a
simple but standard LogGP-style decomposition:

* ``o_send`` / ``o_recv`` — CPU overhead on the sender/receiver for each
  message (the *o* of LogP),
* ``latency`` — wire latency between any two ranks (the *L*),
* ``1 / bandwidth`` — per-byte cost for the payload (the *G* of LogGP),
* ``eager_threshold`` — messages larger than this use a rendezvous protocol:
  the sender blocks until the matching receive is posted, which is how real
  MPI implementations avoid unbounded buffering and is essential for
  modelling the cost of shipping large trace payloads up the radix tree.

Defaults approximate a QDR InfiniBand cluster like the paper's testbed
(~1.5 us latency, ~3 GB/s effective point-to-point bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for point-to-point messages in virtual seconds/bytes."""

    latency: float = 1.5e-6
    bandwidth: float = 3.0e9  # bytes / second
    o_send: float = 4.0e-7
    o_recv: float = 4.0e-7
    eager_threshold: int = 64 * 1024  # bytes
    min_message_bytes: int = 8  # envelope floor: even empty messages cost this

    def __post_init__(self) -> None:
        if self.latency < 0 or self.o_send < 0 or self.o_recv < 0:
            raise ValueError("negative time constants are not allowed")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for a payload of ``nbytes`` (latency excluded)."""
        return max(nbytes, self.min_message_bytes) / self.bandwidth

    def eager(self, nbytes: int) -> bool:
        """Whether a message of this size uses the eager protocol."""
        return nbytes <= self.eager_threshold

    # -- closed-form round costs ------------------------------------------
    #
    # The macro-collective fast path evaluates collective schedules without
    # spawning messages; these helpers reproduce the *exact* floating-point
    # arithmetic of the message-level protocol in repro/simmpi/comm.py, in
    # the same operation order, so both paths land on bit-identical virtual
    # timestamps.  Any change here must mirror isend()/_fire_match().

    def eager_send_cost(self, nbytes: int) -> float:
        """Sender-side charge of one eager send (overhead + wire copy);
        the payload arrives ``latency`` after the charged clock."""
        return self.o_send + self.transfer_time(nbytes)

    def eager_recv_complete(self, post_time: float, arrival: float) -> float:
        """Completion time of a receive matched with an eager message
        posted at ``post_time`` whose payload lands at ``arrival``."""
        return max(post_time + self.o_recv, arrival)

    def rendezvous_times(
        self, send_ready: float, post_time: float, nbytes: int
    ) -> tuple[float, float]:
        """``(done_send, done_recv)`` of one rendezvous transfer: the wire
        starts at the later of the sender being ready and the receiver
        having posted (plus its overhead)."""
        transfer = self.transfer_time(nbytes)
        start = max(send_ready, post_time + self.o_recv)
        return start + transfer, start + self.latency + transfer

    def scaled(
        self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0
    ) -> "NetworkModel":
        """A degraded copy of this model (``bandwidth_factor > 1`` means
        slower transfers, matching :class:`repro.faults.LinkFault`).

        Useful for whole-network degradation sweeps; per-link degradation
        goes through a fault plan instead so only the named link suffers.
        """
        return NetworkModel(
            latency=self.latency * latency_factor,
            bandwidth=self.bandwidth / max(bandwidth_factor, 1e-12),
            o_send=self.o_send,
            o_recv=self.o_recv,
            eager_threshold=self.eager_threshold,
            min_message_bytes=self.min_message_bytes,
        )


#: A zero-cost network, useful in unit tests that only check semantics.
ZERO_COST = NetworkModel(
    latency=0.0,
    bandwidth=float("inf"),
    o_send=0.0,
    o_recv=0.0,
    eager_threshold=1 << 60,
    min_message_bytes=0,
)

#: The default cluster-like model used by the experiment harness.
QDR_CLUSTER = NetworkModel()

#: A slow-network variant used by ablation benches (10x latency, 1/4 bw).
SLOW_CLUSTER = NetworkModel(latency=1.5e-5, bandwidth=7.5e8)
