"""`SimConfig` — the one object that configures a simulated run.

Engine options used to arrive as a growing pile of orthogonal keyword
arguments (``network=``, ``matching=``, ``collectives=``, ``shards=``,
``max_steps=``).  :class:`SimConfig` replaces them with a single frozen,
validated dataclass accepted everywhere a run starts —
``run_spmd(config=...)``, ``repro.api.run(sim=...)``, ``repro bench
--config KEY=VAL``.  The per-knob kwargs shipped one release as
deprecation shims and are now removed: :func:`resolve_config` raises
``TypeError`` naming the replacement spelling.

Cache participation: :meth:`SimConfig.digest` (and the tuple behind it,
:meth:`SimConfig.cache_key`) covers only the fields that can change a
run's *virtual-time outcome* — the network model and ``max_steps``.
``matching``, ``collectives``, ``p2p`` and ``shards`` are
bit-identity-preserving execution strategies (each is fuzz-verified
against its reference path), so equivalent spellings of the same run hash
identically and the run cache can serve a result computed under any of
them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass
from typing import Any

from .timing import NetworkModel, QDR_CLUSTER, SLOW_CLUSTER, ZERO_COST

__all__ = ["SimConfig", "DEFAULT_CONFIG", "parse_config", "resolve_config",
           "resolve_auto_shards"]


@dataclass(frozen=True)
class SimConfig:
    """Validated, hashable engine configuration for one simulated run.

    Attributes:
        network: LogGP cost model charged for every operation.
        matching: mailbox implementation — ``"indexed"`` (default) or the
            ``"linear"`` reference scan (bit-identical, kept for
            equivalence testing).
        collectives: ``"fast"`` (closed-form macro collectives, default)
            or ``"simulated"`` (always message-level).
        p2p: ``"fast"`` (macro gate replay of declared
            ``NeighborPattern`` exchanges, default) or ``"simulated"``
            (always message-level).  Bit-identical either way; see
            docs/PERF.md, "Macro p2p".
        shards: worker processes the ranks are partitioned over.  ``1``
            (default) is the single-process engine; ``shards > 1`` runs
            conservative-PDES waves and is bit-identical to ``shards=1``
            (ineligible runs fall back automatically — see
            docs/PERF.md, "Sharded engine").  ``"auto"`` picks the shard
            count per run from the world size and the machine's cores
            via :func:`resolve_auto_shards`.
        max_steps: scheduler-resume budget; ``None`` means unlimited.
    """

    network: NetworkModel = QDR_CLUSTER
    matching: str = "indexed"
    collectives: str = "fast"
    p2p: str = "fast"
    shards: int | str = 1
    max_steps: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.network, NetworkModel):
            raise ValueError(
                f"network must be a NetworkModel, got {type(self.network).__name__}"
            )
        if self.matching not in ("indexed", "linear"):
            raise ValueError(
                f"matching must be 'indexed' or 'linear', got {self.matching!r}"
            )
        if self.collectives not in ("fast", "simulated"):
            raise ValueError(
                "collectives must be 'fast' or 'simulated', "
                f"got {self.collectives!r}"
            )
        if self.p2p not in ("fast", "simulated"):
            raise ValueError(
                f"p2p must be 'fast' or 'simulated', got {self.p2p!r}"
            )
        if isinstance(self.shards, str):
            if self.shards != "auto":
                raise ValueError(
                    f"shards must be an int or 'auto', got {self.shards!r}"
                )
        elif not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ValueError(f"shards must be an int or 'auto', "
                             f"got {self.shards!r}")
        elif self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_steps is not None and self.max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {self.max_steps}")

    def replace(self, **changes: Any) -> "SimConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- cache identity ----------------------------------------------------

    def cache_key(self) -> tuple:
        """The outcome-determining normal form used by the run cache.

        Deliberately excludes ``matching``/``collectives``/``p2p``/
        ``shards``: those select bit-identical execution strategies, so
        two configs differing only there describe the same run.
        """
        n = self.network
        return (
            "simconfig",
            n.latency,
            n.bandwidth,
            n.o_send,
            n.o_recv,
            n.eager_threshold,
            n.min_message_bytes,
            self.max_steps,
        )

    def digest(self) -> str:
        """Stable hex digest of :meth:`cache_key`."""
        return hashlib.sha256(repr(self.cache_key()).encode()).hexdigest()


#: The default configuration (QDR network, indexed mailbox, fast
#: collectives, fast p2p, single process, unlimited steps).
DEFAULT_CONFIG = SimConfig()


def resolve_auto_shards(nprocs: int, cores: int | None = None) -> int:
    """The shard count ``shards="auto"`` resolves to for a ``nprocs``-rank
    run on a machine with ``cores`` CPUs (default: ``os.cpu_count()``).

    The heuristic encodes the measured break-even points from docs/PERF.md
    ("Sharded engine"): below ~8k ranks the fork + wave-barrier overhead
    eats the win, so stay single-process; above it, grow the shard count
    with the world size (one shard per ~4k ranks) up to a cap set by the
    core count.  Sharding wins even on a single core — workers win on
    heap locality, not parallelism — so the cap does not collapse to
    ``cores``; it merely stops piling on barrier overhead where extra
    shards cannot also buy CPU parallelism.
    """
    if nprocs < 8192:
        return 1
    cores = cores or os.cpu_count() or 1
    cap = 4 if cores <= 4 else 8
    return min(cap, max(2, nprocs // 4096))


def resolve_config(
    config: SimConfig | None = None,
    *,
    stacklevel: int = 3,
    **legacy: Any,
) -> SimConfig:
    """Reject retired per-knob engine kwargs; return the ``SimConfig``.

    The pre-``SimConfig`` kwargs (``network=``, ``matching=``,
    ``collectives=``, ``shards=``, ``max_steps=``) shipped one release as
    ``DeprecationWarning`` shims and are now removed: any non-``None``
    legacy value raises ``TypeError`` naming the replacement spelling.
    Every entry point that used to accept them still routes through here
    so the error message stays consistent.
    """
    used = {k: v for k, v in legacy.items() if v is not None}
    if used:
        names = ", ".join(f"{k}=" for k in sorted(used))
        raise TypeError(
            f"the {names} keyword{'s are' if len(used) > 1 else ' is'} no "
            "longer accepted (removed after a one-release deprecation); "
            f"pass config=SimConfig({', '.join(f'{k}=...' for k in sorted(used))}) "
            "instead"
        )
    return config if config is not None else DEFAULT_CONFIG


#: Named network models accepted by ``--config network=NAME``.
NETWORK_PRESETS: dict[str, NetworkModel] = {
    "qdr": QDR_CLUSTER,
    "slow": SLOW_CLUSTER,
    "zero": ZERO_COST,
}


def parse_config(pairs: "list[str] | tuple[str, ...]") -> SimConfig:
    """Build a :class:`SimConfig` from CLI ``KEY=VAL`` strings.

    This is the parser behind ``repro bench --config`` (and any future
    ``--config`` flag).  Accepted keys: ``network`` (a preset name from
    :data:`NETWORK_PRESETS`), ``matching``, ``collectives``, ``p2p``,
    ``shards`` (int, or ``auto``) and ``max_steps`` (int, or ``none``
    for unlimited).
    Raises ``ValueError`` with a usable message on anything else; field
    values are validated by ``SimConfig`` itself.
    """
    fields: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise ValueError(
                f"--config expects KEY=VAL, got {pair!r}"
            )
        if key == "network":
            try:
                fields[key] = NETWORK_PRESETS[value]
            except KeyError:
                raise ValueError(
                    f"unknown network preset {value!r}; choose from "
                    f"{', '.join(sorted(NETWORK_PRESETS))}"
                ) from None
        elif key in ("matching", "collectives", "p2p"):
            fields[key] = value
        elif key in ("shards", "max_steps"):
            if key == "max_steps" and value.lower() == "none":
                fields[key] = None
                continue
            if key == "shards" and value.lower() == "auto":
                fields[key] = "auto"
                continue
            try:
                fields[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"--config {key}= expects an integer"
                    f"{' (or auto)' if key == 'shards' else ''}, "
                    f"got {value!r}"
                ) from None
        else:
            raise ValueError(
                f"unknown --config key {key!r}; choose from "
                "network, matching, collectives, p2p, shards, max_steps"
            )
    return SimConfig(**fields)
