"""Conservative-PDES sharding: the engine partitioned over processes.

``run_spmd(..., config=SimConfig(shards=S))`` splits the world's ranks
into ``S`` contiguous blocks, each advanced by an unmodified
single-process :class:`~repro.simmpi.engine.Engine` in a forked worker.
Workers alternate between *waves* — :meth:`Engine.run_ready` drains every
runnable task until all owned ranks are parked on cross-shard futures —
and a barrier exchange through the coordinator (this process), which
routes cross-shard point-to-point messages, rendezvous completions and
macro-collective gate replays.  Lookahead is implicit: a rank only parks
when its next event depends on a remote shard, and everything it produced
before parking carries final virtual timestamps (the LogGP model charges
costs at post time), so delivering at the barrier can never violate
causality — the classic conservative-PDES argument.

**Bit-identity contract.**  A sharded run returns *bit-identical* virtual
clocks, busy times, results and communication totals to ``shards=1``.
This falls out of two properties:

* per-rank virtual state depends only on the rank's program order and on
  which message matched which receive — never on global scheduling order;
* every matching decision the sharded run makes is interleaving-invariant:
  exact-source receives (including ``ANY_TAG``) reduce to per-sender-pair
  FIFO matching, and anything order-sensitive is a *hazard* (below).

**Hazards and the oracle.**  Any construct whose outcome could depend on
cross-shard scheduling — ``ANY_SOURCE`` receives, ``probe``,
communicator ``split``/``dup``, a user tag colliding with a collective's
private tag window, an unpicklable payload — aborts the shards and
transparently reruns the whole program on the single-process engine,
which *is* the oracle: results and exceptions are exact by construction.
Errors, deadlocks and collective mismatches take the same route so their
diagnostics match ``shards=1`` verbatim.  The fallback reason is recorded
in ``SpmdResult.extras["shard_fallback"]``; sharding is purely an
optimization and never changes observable behaviour.

**Fault plans.**  Delay/duplicate message faults, degraded links and
compute noise are shard-safe: every draw keys on (seed, kind, endpoints,
per-sender ordinal), so it lands identically wherever it is evaluated.
Crash faults and message *drops* are not (they create LOST holes whose
release order is engine-global), so such plans fall back before forking.

See docs/PERF.md ("Sharded engine") for the design discussion and the
cases where ``shards > 1`` loses.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Sequence

from ..faults.injector import FaultInjector, injector_for
from ..faults.plan import FaultPlan
from ..obs.instrument import NULL_INSTRUMENT, Instrument, ObsData, Recorder
from ..resilience.hostfaults import shard_final_hook, shard_wave_hook
from ..resilience.supervise import (
    DEFAULT_TEARDOWN_GRACE,
    Heartbeat,
    WorkerTimeout,
    recv_supervised,
    shutdown_workers,
    wave_deadline,
)
from .collectives import (
    _ALGORITHMS,
    _BarrierReplay,
    _CollGate,
    _GEN_FACTORIES,
    _GateEntry,
    _MiniEngine,
    Communicator,
)
from .comm import ANY_SOURCE, ANY_TAG, CommContext, MAX_USER_TAG, Message, Request
from .datatypes import payload_nbytes
from .engine import Engine, Task, TaskState
from .errors import CollectiveMismatchError, PatternMismatchError
from .futures import SimFuture
from .patterns import NeighborPattern, _P2PGate
from .simconfig import SimConfig

_TAG_STRIDE = 4096  # collectives._TAG_STRIDE (kept in sync by a test)


class ShardHazard(Exception):
    """Raised inside a worker when the program uses a construct the
    sharded engine cannot reproduce bit-identically; the run falls back
    to the single-process oracle."""


# -- shard-side communicator --------------------------------------------------


class ShardCommContext(CommContext):
    """World communicator context as seen by one shard.

    Rank numbering, mailboxes and collective sequence numbers cover the
    *whole* world (so they align exactly with the single-process run),
    but only ranks in ``[lo, hi)`` have live tasks here; traffic to the
    rest is queued in ``outbox`` for the coordinator to route.
    """

    def __init__(self, engine: Engine, nprocs: int, lo: int, hi: int) -> None:
        super().__init__(engine, range(nprocs))
        self.lo = lo
        self.hi = hi
        self.owned_count = hi - lo
        #: set to a reason string the moment a hazard is detected; checked
        #: at every wave boundary (an active fault injector would swallow
        #: the exception as a partial failure, so the flag is the backstop)
        self.hazard: str | None = None
        #: cross-shard messages produced this wave
        self.outbox: list[tuple] = []
        #: rendezvous sender futures awaiting a remote completion,
        #: keyed by (src_world, sender ordinal)
        self.rdv_waiting: dict[tuple[int, int], SimFuture] = {}
        #: rendezvous completions produced this wave (we are the receiver)
        self.rdv_replies_out: list[tuple] = []
        #: locally-complete collective gates awaiting the global replay
        self.gates_out: list[tuple[int, _CollGate]] = []
        self.gate_pending: dict[int, _CollGate] = {}

    def owns(self, world_rank: int) -> bool:
        return self.lo <= world_rank < self.hi

    def flag_hazard(self, reason: str) -> None:
        if self.hazard is None:
            self.hazard = reason


class ShardCommunicator(Communicator):
    """World communicator bound to a rank owned by this shard.

    Intra-shard traffic uses the inherited implementation unchanged.
    Cross-shard sends replicate ``Comm.isend``'s exact arithmetic locally
    (all sender-side costs are charged at post time) and queue a record
    for the coordinator; cross-shard receives simply park in the local
    mailbox until the barrier delivers the message.  Order-sensitive
    operations raise :class:`ShardHazard`.
    """

    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> Request:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        if ctx.owns(dest):
            return super().isend(dest, payload, tag=tag, size=size)
        self._check_peer(dest, "destination")
        self._check_tag(tag, recv=False)
        nbytes = payload_nbytes(payload) if size is None else int(size)
        net = self.net
        task = self.task
        engine = self.engine
        task.msgs_sent += 1
        task.bytes_sent += nbytes
        engine.total_messages += 1
        engine.total_bytes += nbytes
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count("p2p/bytes_sent", nbytes, rank=self.rank,
                              op="send", t=task.clock)
            ins.metrics.count("p2p/messages", 1, rank=self.rank,
                              op="send", t=task.clock)
        fut = SimFuture(kind="isend", src=self.rank, dest=dest, tag=tag,
                        comm=ctx.id, post_time=task.clock)
        ordinal = task.msgs_sent  # after increment: matches Comm.isend
        inj = engine.faults
        if net.eager(nbytes):
            task.charge(net.o_send + net.transfer_time(nbytes))
            latency = net.latency
            if inj.active:
                latency *= inj.link_factors(self.rank, dest)[0]
                extra = inj.message_delay(self.rank, dest, ordinal)
                if extra is None:  # pragma: no cover - drops are pre-filtered
                    ctx.flag_hazard("message-drop")
                    raise ShardHazard("message drop in a sharded run")
                latency += extra
                if extra and ins.enabled:
                    ins.instant(self.rank, "msg_delayed", "fault", task.clock,
                                {"dest": dest, "tag": tag, "extra": extra})
                    ins.metrics.count("fault/messages_delayed", 1,
                                      rank=self.rank, t=task.clock)
            ctx.outbox.append((self.rank, dest, tag, payload, nbytes,
                               task.clock + latency, False, None))
            fut.resolve(None, time=task.clock)
        else:
            task.charge(net.o_send)  # posting cost is paid now
            pid = (self.rank, ordinal)
            ctx.rdv_waiting[pid] = fut
            ctx.outbox.append((self.rank, dest, tag, payload, nbytes,
                               task.clock, True, pid))
        return Request(fut, task, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        if source == ANY_SOURCE:
            # Which sender matches first depends on global scheduling
            # order, which sharding does not preserve.  (ANY_TAG with an
            # exact source is fine: per-pair matching is FIFO regardless.)
            self.context.flag_hazard("wildcard-source")
            raise ShardHazard(
                "recv(ANY_SOURCE) is not shard-safe; the run falls back "
                "to the single-process engine"
            )
        return super().irecv(source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict | None:
        # A probe observes in-flight state that may live on another shard.
        self.context.flag_hazard("probe")
        raise ShardHazard("probe() is not shard-safe")

    async def split(self, color: int, key: int | None = None):
        # Sub-communicator contexts are built on rank 0 and broadcast as
        # in-process objects; they cannot cross process boundaries.
        self.context.flag_hazard("split")
        raise ShardHazard("split()/dup() are not shard-safe")

    async def dup(self) -> "Communicator":
        self.context.flag_hazard("split")
        raise ShardHazard("split()/dup() are not shard-safe")

    # -- collectives ---------------------------------------------------

    def _consult_gate(self, kind: str, root: int | None) -> _CollGate | None:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        seq = ctx.coll_seq[self.rank]
        gate = ctx._gates.get(seq)
        if gate is None:
            reason = self._fallback_reason(seq)
            if reason == "tag-window":
                # A divergent per-shard verdict would desynchronise the
                # collective across shards; make it a whole-run hazard.
                ctx.flag_hazard("tag-window")
                raise ShardHazard(
                    "pending traffic in a collective tag window"
                )
            # Every other verdict input (knobs, instrument granularity,
            # static fault plan) is identical in all shards, so each shard
            # independently computes the same fast/simulated decision.
            gate = _CollGate(kind, root, reason, ctx.owned_count)
            ctx._gates[seq] = gate
        elif gate.kind != kind or gate.root != root:
            raise CollectiveMismatchError(
                f"rank {self.rank} called {kind}(root={root}) as collective "
                f"#{seq} but other ranks are in "
                f"{gate.kind}(root={gate.root})"
            )
        gate.consulted += 1
        if gate.consulted == ctx.owned_count:
            del ctx._gates[seq]
        if gate.reason is None:
            return gate
        engine = self.engine
        engine.collectives_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "coll/fallbacks", 1, rank=self.rank,
                op=f"{kind}:{gate.reason}", t=self.task.clock,
            )
        return None

    # -- declared p2p patterns -----------------------------------------

    def _p2p_fallback_reason(self) -> str | None:
        # The p2p gate needs every participant's entry inside one engine,
        # which a shard never has: declared exchanges always drive their
        # message-level ops here (bit-identical in virtual time by the
        # macro-p2p contract; only the fast/simulated instance counters
        # differ from shards=1).  With a recorder attached that counter
        # difference would also surface as p2p/fallbacks metrics the
        # single-process run does not emit, so obs parity requires the
        # oracle.
        if self.engine.p2p != "fast":
            return "disabled"
        if self.engine.instrument.enabled:
            self.context.flag_hazard("p2p-patterns")
            raise ShardHazard(
                "declared p2p patterns under instrumentation are not "
                "shard-safe; the run falls back to the single-process engine"
            )
        return "sharded"

    def _consult_p2p_gate(self, pattern: NeighborPattern) -> None:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        seq = ctx.p2p_seq[self.rank]
        ctx.p2p_seq[self.rank] = seq + 1
        gate = ctx._p2p_gates.get(seq)
        if gate is None:
            # Cross-shard pattern mismatches at the same seq are caught by
            # the message-level drive itself (a mismatched exchange
            # deadlocks, and the "stuck" fallback reruns on the oracle,
            # which raises the exact PatternMismatchError).
            gate = _P2PGate(pattern, seq, self._p2p_fallback_reason(),
                            ctx.owned_count)
            ctx._p2p_gates[seq] = gate
        elif gate.key != pattern.key:
            raise PatternMismatchError(
                f"rank {self.rank} called exchange({pattern.name!r}) as p2p "
                f"instance #{seq} but other ranks are in {gate.name!r}"
            )
        gate.consulted += 1
        if gate.consulted == ctx.owned_count:
            del ctx._p2p_gates[seq]
        engine = self.engine
        engine.p2p_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "p2p/fallbacks", 1, rank=self.world_rank(self.rank),
                op=f"{pattern.name}:{gate.reason}", t=self.task.clock,
            )
        return None

    async def _join_fast(self, gate: _CollGate, genargs: tuple) -> Any:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        task = self.task
        seq = ctx.coll_seq[self.rank]
        ctx.coll_seq[self.rank] = seq + 1
        task.collectives += 1
        self.engine.collectives_fast += 1
        fut = SimFuture(kind="coll", tag=seq, dest=self.rank, comm=ctx.id,
                        post_time=task.clock)
        # The ``gen`` slot carries the (picklable) genargs tuple here; the
        # coordinator rebuilds the actual generator from _GEN_FACTORIES.
        gate.entries.append(_GateEntry(self.rank, task, fut, genargs))
        if len(gate.entries) == gate.expected:
            ctx.gates_out.append((seq, gate))
            ctx.gate_pending[seq] = gate
        result = await fut
        task.advance_to(fut.time)
        return result


# -- wire format helpers ------------------------------------------------------


def _gate_record(seq: int, gate: _CollGate) -> tuple:
    """Columnar encoding of one shard's entries for gate ``seq`` (cheap to
    pickle at P=65536: eight flat lists instead of P objects)."""
    es = gate.entries
    return (
        seq, gate.kind, gate.root,
        [e.rank for e in es],
        [e.clock0 for e in es],
        [e.busy0 for e in es],
        [e.sent0 for e in es],
        [e.bytes_sent0 for e in es],
        [e.recvd0 for e in es],
        [e.bytes_recvd0 for e in es],
        [e.gen for e in es],  # genargs tuples
    )


class _RemoteEntry:
    """Coordinator-side stand-in for a _GateEntry: just the attributes the
    mini-engine's _RankState snapshot reads, plus a live generator."""

    __slots__ = ("rank", "gen", "clock0", "busy0", "sent0", "bytes_sent0",
                 "recvd0", "bytes_recvd0")

    def __init__(self, rank, gen, clock0, busy0, sent0, bytes_sent0,
                 recvd0, bytes_recvd0) -> None:
        self.rank = rank
        self.gen = gen
        self.clock0 = clock0
        self.busy0 = busy0
        self.sent0 = sent0
        self.bytes_sent0 = bytes_sent0
        self.recvd0 = recvd0
        self.bytes_recvd0 = bytes_recvd0


def _safe_send(hb: Heartbeat, obj) -> bool:
    """Send ``obj``, degrading to an error status on pickle failure.

    ``Connection.send`` pickles the full object before writing any bytes,
    so a failed attempt leaves the pipe clean and the fallback status can
    still go through.  Sends go through the heartbeat's lock so beat
    frames never interleave with protocol frames.
    """
    try:
        hb.send(obj)
        return True
    except Exception as exc:  # noqa: BLE001 - unpicklable payload/result
        hb.send(("error", f"pickle:{type(exc).__name__}"))
        return False


# -- shard worker -------------------------------------------------------------


def _apply_inbox(ctx: ShardCommContext, engine: Engine, inbox: dict) -> None:
    """Apply one wave's deliveries.  Message records from one sender arrive
    in its program order (per-pair FIFO is all exact-source matching needs);
    gate results bulk-advance exactly like _CollGate.complete."""
    for src, dest, tag, payload, nbytes, t, rdv, pid in inbox["msgs"]:
        mbox = ctx.mailbox(dest)
        if rdv:
            proxy = SimFuture(kind="isend", src=src, dest=dest, tag=tag,
                              comm=ctx.id, post_time=t)
            proxy.add_done_callback(
                lambda f, pid=pid: ctx.rdv_replies_out.append(
                    (pid, f.time, f.busy_charge)
                )
            )
            msg = Message(src=src, dest=dest, tag=tag, payload=payload,
                          nbytes=nbytes, arrival=0.0, rendezvous=True,
                          send_ready=t, sender_future=proxy)
        else:
            msg = Message(src=src, dest=dest, tag=tag, payload=payload,
                          nbytes=nbytes, arrival=t)
        ctx.deliver(mbox, msg)
    for pid, t, busy_charge in inbox["replies"]:
        fut = ctx.rdv_waiting.pop(pid)
        fut.busy_charge = busy_charge
        fut.resolve(None, time=t)
    for seq, ranks, results, clocks, busys, sent, bsent, recvd, brecvd in (
        inbox["gate_results"]
    ):
        gate = ctx.gate_pending.pop(seq)
        ins = engine.instrument
        emit = ins.enabled
        alg = _ALGORITHMS[gate.kind]
        by_rank = {e.rank: e for e in gate.entries}
        resolutions = []
        for i, rank in enumerate(ranks):
            entry = by_rank[rank]
            task = entry.task
            task.clock = clocks[i]
            task.busy = busys[i]
            task.msgs_sent = sent[i]
            task.bytes_sent = bsent[i]
            task.msgs_received = recvd[i]
            task.bytes_received = brecvd[i]
            if emit:
                ins.span(rank, gate.kind, "coll", entry.clock0, clocks[i],
                         {"algorithm": alg, "comm": ctx.id, "size": ctx.size})
                ins.metrics.count("coll/calls", 1, rank=rank,
                                  op=gate.kind, t=clocks[i])
                ins.metrics.count("coll/time", clocks[i] - entry.clock0,
                                  rank=rank, op=gate.kind, t=clocks[i])
                ins.metrics.count("coll/fast_hits", 1, rank=rank,
                                  op=gate.kind, t=clocks[i])
            resolutions.append((entry.fut, results[i], clocks[i]))
        engine.wave_resolve(resolutions)


def _shard_worker(conn, shard_index: int, lo: int, hi: int, nprocs: int,
                  main, args, kwargs, cfg: SimConfig,
                  plan: FaultPlan | None,
                  rec_params: tuple | None) -> None:
    """Child process entry point (fork start method: ``main``/``args`` are
    inherited, never pickled).  Alternates run_ready waves with barrier
    exchanges until told to finish or abort.  A background heartbeat
    keeps the coordinator's supervision informed that this worker is
    alive even while a long wave computes."""
    import gc

    # Everything inherited from the parent is effectively immutable here;
    # moving it to the permanent generation keeps this worker's collector
    # from re-traversing the parent's heap on every GC pass.
    gc.freeze()
    hb: Heartbeat | None = None
    try:
        injector = injector_for(plan)
        if injector.active:
            injector.plan.validate(nprocs)
        ins: Instrument = NULL_INSTRUMENT
        if rec_params is not None:
            ins = Recorder(time_bucket=rec_params[0], max_events=rec_params[1],
                           granularity=rec_params[2])
        engine = Engine(network=cfg.network, instrument=ins, faults=injector,
                        matching=cfg.matching, collectives=cfg.collectives,
                        p2p=cfg.p2p)
        ctx = ShardCommContext(engine, nprocs, lo, hi)
        tasks: list[Task] = []
        for rank in range(lo, hi):
            task = Task(rank, None)  # type: ignore[arg-type]
            comm = ShardCommunicator(ctx, rank, task)
            from .launcher import RankContext  # local: avoid import cycle

            rctx = RankContext(comm, task)
            task.coro = main(rctx, *args, **kwargs)
            engine.adopt(task)
            tasks.append(task)
        hb = Heartbeat(conn, lambda: engine.steps).start()
        wave = 0
        while True:
            wave += 1
            shard_wave_hook(shard_index, wave)
            err: str | None = None
            try:
                engine.run_ready()
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                err = repr(exc)
            if ctx.hazard is not None:
                hb.send(("error", f"hazard:{ctx.hazard}"))
                return
            if err is None and any(
                t.state is TaskState.FAILED for t in tasks
            ):
                err = "rank-failed"
            if err is not None:
                hb.send(("error", err))
                return
            status = {
                "msgs": ctx.outbox,
                "replies": ctx.rdv_replies_out,
                "gates": [_gate_record(seq, g) for seq, g in ctx.gates_out],
                "done": all(t.state is TaskState.DONE for t in tasks),
                "resumes": engine.resumes,
            }
            ctx.outbox = []
            ctx.rdv_replies_out = []
            ctx.gates_out = []
            if not _safe_send(hb, ("status", status)):
                return
            cmd = conn.recv()
            if cmd[0] == "deliver":
                _apply_inbox(ctx, engine, cmd[1])
                continue
            if cmd[0] == "finish":
                shard_final_hook(shard_index)
                final = {
                    "ranks": list(range(lo, hi)),
                    "results": [t.result for t in tasks],
                    "clocks": [t.clock for t in tasks],
                    "busy": [t.busy for t in tasks],
                    "total_messages": engine.total_messages,
                    "total_bytes": engine.total_bytes,
                    "total_matches": engine.total_matches,
                    "steps": engine.steps,
                    "resumes": engine.resumes,
                    "collectives_fast": engine.collectives_fast,
                    "collectives_simulated": engine.collectives_simulated,
                    "p2p_simulated": engine.p2p_simulated,
                    "injected": dict(injector.injected)
                    if injector.active else None,
                    "obs": ins.snapshot({"shard": (lo, hi)})
                    if rec_params is not None else None,
                }
                _safe_send(hb, ("final", final))
                return
            return  # abort
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        return
    finally:
        if hb is not None:
            hb.stop()
        conn.close()


# -- coordinator --------------------------------------------------------------


class _Fallback(Exception):
    """Internal: abort sharded execution and rerun on the oracle."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _replay_gate(kind: str, root: int | None, entries: list[_RemoteEntry],
                 network) -> tuple:
    """Run the macro-collective replay over all shards' entries; returns
    (states-by-rank, messages, bytes).  Raises _Fallback if the replay
    fails (a raising reduction op — the oracle reproduces the exact
    error semantics)."""
    entries.sort(key=lambda e: e.rank)
    if kind == "barrier":
        sim: _MiniEngine | _BarrierReplay = _BarrierReplay(network, entries)
    else:
        sim = _MiniEngine(network, entries)
    sim.run()
    if sim.failure is not None:
        raise _Fallback("collective-raise")
    return sim.states, sim.total_messages, sim.total_bytes


def _coordinate(conns: Sequence, procs: Sequence, bounds: list[int],
                nprocs: int, cfg: SimConfig, recorder: Recorder | None):
    """Run the wave-barrier protocol to completion.

    Returns the merged result dict, or raises _Fallback when anything
    requires the oracle.  Every receive is supervised — wall-clock
    deadline plus heartbeat-gap detection — so a dead, stopped or wedged
    worker becomes a ``worker-died`` / ``worker-timeout`` /
    ``worker-hung`` fallback instead of hanging the coordinator forever.
    """
    from bisect import bisect_right

    nshards = len(conns)
    network = cfg.network

    def shard_of(rank: int) -> int:
        # bounds is the sorted block-partition fencepost list
        return bisect_right(bounds, rank) - 1
    # gates accumulating across shards: seq -> [kind, root, entries]
    gates: dict[int, list] = {}
    high_tags_routed: set[int] = set()
    replay_messages = 0
    replay_bytes = 0
    waves = 0
    while True:
        waves += 1
        statuses = []
        for conn, proc in zip(conns, procs):
            try:
                msg = recv_supervised(conn, proc, stage="wave")
            except WorkerTimeout as wt:
                raise _Fallback(wt.reason) from None
            if msg[0] == "error":
                raise _Fallback(msg[1])
            statuses.append(msg[1])
        inboxes: list[dict] = [
            {"msgs": [], "replies": [], "gate_results": []}
            for _ in range(nshards)
        ]
        routed = False
        for st in statuses:
            for rec in st["msgs"]:
                dest = rec[1]
                if rec[2] > MAX_USER_TAG:
                    high_tags_routed.add(rec[2])
                inboxes[shard_of(dest)]["msgs"].append(rec)
                routed = True
            for rep in st["replies"]:
                # pid = (src_world, ordinal): route back to the sender
                inboxes[shard_of(rep[0][0])]["replies"].append(rep)
                routed = True
            for g in st["gates"]:
                (seq, kind, root, ranks, clock0, busy0, sent0, bsent0,
                 recvd0, brecvd0, genargs) = g
                acc = gates.get(seq)
                if acc is None:
                    acc = gates[seq] = [kind, root, []]
                elif acc[0] != kind or acc[1] != root:
                    raise _Fallback("collective-mismatch")
                factory = _GEN_FACTORIES[kind]
                acc[2].extend(
                    _RemoteEntry(
                        ranks[i],
                        factory(ranks[i], nprocs, *genargs[i]),
                        clock0[i], busy0[i], sent0[i], bsent0[i],
                        recvd0[i], brecvd0[i],
                    )
                    for i in range(len(ranks))
                )
        for seq in sorted(s for s, acc in gates.items()
                          if len(acc[2]) == nprocs):
            kind, root, entries = gates.pop(seq)
            base = MAX_USER_TAG + 1024 + seq * _TAG_STRIDE
            if any(base <= t < base + _TAG_STRIDE for t in high_tags_routed):
                # A user (or tool) message crossed shards inside this
                # gate's private window; the single-process verdict scan
                # would have seen it, so ours is not trustworthy.
                raise _Fallback("tag-window")
            states, n_msgs, n_bytes = _replay_gate(kind, root, entries,
                                                   network)
            replay_messages += n_msgs
            replay_bytes += n_bytes
            for s in range(nshards):
                ranks = [e.rank for e in entries
                         if bounds[s] <= e.rank < bounds[s + 1]]
                if not ranks:
                    continue
                sts = [states[r] for r in ranks]
                inboxes[s]["gate_results"].append((
                    seq, ranks,
                    [st.result for st in sts],
                    [st.clock for st in sts],
                    [st.busy for st in sts],
                    [st.msgs_sent for st in sts],
                    [st.bytes_sent for st in sts],
                    [st.msgs_received for st in sts],
                    [st.bytes_received for st in sts],
                ))
                routed = True
        all_done = all(st["done"] for st in statuses)
        if all_done and not routed and not gates:
            break
        if not routed:
            # Nothing in flight, nothing delivered, ranks still blocked:
            # the program is deadlocked (or stuck in a half-joined
            # collective).  The oracle reruns to produce the exact
            # DeadlockError/diagnostic the single-process engine raises.
            raise _Fallback("stuck")
        for conn, inbox in zip(conns, inboxes):
            conn.send(("deliver", inbox))
    for conn in conns:
        conn.send(("finish",))
    finals = []
    for conn, proc in zip(conns, procs):
        try:
            # Supervised like every wave receive: a worker that wedges
            # while finalizing (or never reads a command) is torn down
            # within its deadline instead of hanging this recv forever.
            msg = recv_supervised(conn, proc, stage="final")
        except WorkerTimeout as wt:
            raise _Fallback(wt.reason) from None
        if msg[0] == "error":
            raise _Fallback(msg[1])
        finals.append(msg[1])
    return finals, replay_messages, replay_bytes, waves


def run_sharded(main, nprocs: int, args: tuple, kwargs: dict, cfg: SimConfig,
                *, instrument: Instrument = NULL_INSTRUMENT,
                faults: FaultPlan | FaultInjector | None = None):
    """Entry point from :func:`~repro.simmpi.launcher.run_spmd` for
    ``cfg.shards > 1``.  Falls back to the single-process engine (with the
    reason in ``extras["shard_fallback"]``) whenever the run is not
    shard-eligible, before or after forking."""
    from .launcher import _run_single  # circular at module import time

    def _single(reason: str | None):
        result = _run_single(main, nprocs, args, kwargs, cfg,
                             instrument=instrument, faults=faults)
        result.extras["shards"] = cfg.shards
        if reason is not None:
            result.extras["shard_fallback"] = reason
        return result

    nshards = min(cfg.shards, nprocs)
    if nshards <= 1:
        return _single("nprocs")
    if cfg.max_steps is not None:
        # The raw resume count differs between sharded and single-process
        # scheduling, so a budget trip cannot be reproduced bit-exactly.
        return _single("max-steps")
    if isinstance(faults, FaultInjector):
        # A caller-held injector instance accumulates counters we cannot
        # mutate from worker processes.
        if faults.active:
            return _single("injector-instance")
        plan: FaultPlan | None = None
    else:
        plan = faults
    if plan is not None and not plan.is_empty():
        if plan.crashes or plan.messages.drop_prob > 0.0:
            # Crashes and drops create LOST holes whose timeout-release
            # order is a property of the global engine loop.
            return _single("faults")
    recorder: Recorder | None = None
    if instrument is not NULL_INSTRUMENT and instrument.enabled:
        if isinstance(instrument, Recorder):
            recorder = instrument
        else:
            return _single("instrument")
    if "fork" not in multiprocessing.get_all_start_methods():
        return _single("platform")

    # Collect before forking: garbage left over from earlier runs in this
    # process would otherwise be duplicated into (and re-scanned by) every
    # worker — measured at 2-3x wall time on a post-benchmark heap.
    import gc

    gc.collect()
    mp = multiprocessing.get_context("fork")
    bounds = [(s * nprocs) // nshards for s in range(nshards + 1)]
    rec_params = (
        (recorder.metrics.time_bucket, recorder.max_events,
         recorder.granularity)
        if recorder is not None else None
    )
    conns = []
    procs = []
    fallback: str | None = None
    teardown = "clean"
    try:
        for s in range(nshards):
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(
                target=_shard_worker,
                args=(child_conn, s, bounds[s], bounds[s + 1], nprocs, main,
                      args, kwargs, cfg, plan, rec_params),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        try:
            finals, replay_messages, replay_bytes, waves = _coordinate(
                conns, procs, bounds, nprocs, cfg, recorder
            )
        except _Fallback as fb:
            fallback = fb.reason
            for conn in conns:
                try:
                    conn.send(("abort",))
                except (BrokenPipeError, OSError):
                    pass
    finally:
        for conn in conns:
            conn.close()
        # Bounded escalation: a worker that never reads ("abort",) — or
        # cannot, because it is SIGSTOPped — is still gone within the
        # grace budget.  SIGKILL is the only signal a stopped process
        # cannot defer.
        teardown = shutdown_workers(
            procs, grace=min(DEFAULT_TEARDOWN_GRACE, wave_deadline())
        )

    if fallback is not None:
        if fallback in ("worker-died", "worker-timeout", "worker-hung") \
                and instrument.enabled:
            instrument.metrics.count("resilience/shard_fallback", 1,
                                     op=fallback)
        result = _single(fallback)
        if teardown != "clean":
            result.extras["shard_teardown"] = teardown
        return result

    return _merge(finals, nprocs, cfg, replay_messages, replay_bytes, waves,
                  recorder, plan)


def _merge(finals: list[dict], nprocs: int, cfg: SimConfig,
           replay_messages: int, replay_bytes: int, waves: int,
           recorder: Recorder | None, plan: FaultPlan | None):
    from .launcher import SpmdResult

    results: list[Any] = [None] * nprocs
    clocks = [0.0] * nprocs
    busy = [0.0] * nprocs
    total_messages = replay_messages
    total_bytes = replay_bytes
    total_matches = 0
    steps = 0
    coll_fast = 0
    coll_sim = 0
    p2p_sim = 0
    injected: dict[str, int] = {}
    for final in finals:
        for i, rank in enumerate(final["ranks"]):
            results[rank] = final["results"][i]
            clocks[rank] = final["clocks"][i]
            busy[rank] = final["busy"][i]
        total_messages += final["total_messages"]
        total_bytes += final["total_bytes"]
        total_matches += final["total_matches"]
        steps += final["steps"]
        coll_fast += final["collectives_fast"]
        coll_sim += final["collectives_simulated"]
        p2p_sim += final["p2p_simulated"]
        if final["injected"] is not None:
            for k, v in final["injected"].items():
                injected[k] = injected.get(k, 0) + v
    if recorder is not None:
        snaps = [f["obs"] for f in finals if f["obs"] is not None]
        _merge_obs(recorder, snaps)
    fault_summary: dict[str, int] = {}
    if plan is not None and not plan.is_empty():
        fault_summary = dict(injected)
        fault_summary["failed_ranks"] = 0
    return SpmdResult(
        results=results,
        clocks=clocks,
        busy_times=busy,
        total_messages=total_messages,
        total_bytes=total_bytes,
        extras={"shards": len(finals), "waves": waves},
        engine_steps=steps,
        messages_matched=total_matches,
        failed_ranks=(),
        fault_summary=fault_summary,
        collectives_fast=coll_fast,
        collectives_simulated=coll_sim,
        p2p_fast=0,
        p2p_simulated=p2p_sim,
    )


def _merge_obs(recorder: Recorder, snaps: list[ObsData]) -> None:
    """Merge per-shard span streams into the caller's recorder in
    virtual-time order (start time, rank as tie-break).  Per-event
    content is identical to a single-process run; only the stream order
    and the scheduler park/wake bookkeeping differ (documented in
    docs/PERF.md)."""
    spans = [s for snap in snaps for s in snap.spans]
    instants = [i for snap in snaps for i in snap.instants]
    spans.sort(key=lambda s: (s.start, s.rank))
    instants.sort(key=lambda i: (i.ts, i.rank))
    for s in spans:
        recorder.span(s.rank, s.name, s.cat, s.start, s.end, s.args)
    for i in instants:
        recorder.instant(i.rank, i.name, i.cat, i.ts, i.args)
    for snap in snaps:
        recorder.metrics.merge(snap.metrics)
