"""Conservative-PDES sharding: the engine partitioned over processes.

``run_spmd(..., config=SimConfig(shards=S))`` splits the world's ranks
into ``S`` contiguous blocks, each advanced by an unmodified
single-process :class:`~repro.simmpi.engine.Engine` in a forked worker.
Workers alternate between *waves* — :meth:`Engine.run_ready` drains every
runnable task until all owned ranks are parked on cross-shard futures —
and a barrier exchange through the coordinator (this process), which
routes cross-shard point-to-point messages, rendezvous completions and
macro-collective gate traffic.  Lookahead is implicit: a rank only parks
when its next event depends on a remote shard, and everything it produced
before parking carries final virtual timestamps (the LogGP model charges
costs at post time), so delivering at the barrier can never violate
causality — the classic conservative-PDES argument.

**Parallel gate replay.**  Fast-path collective gates are *not* replayed
by the coordinator: once every rank's columnar record has arrived, the
coordinator forwards the complete gate to a deterministic owner shard
(round-robin by collective sequence number), which runs the same
bit-exact replay the single-process engine uses
(:func:`~repro.simmpi.collectives._run_replay`), resolves its own ranks
immediately and ships the foreign ranks' completion columns back through
the coordinator.  Independent gates land on different owners, so replay
work scales with the shard count instead of serializing in one process.

**Bit-identity contract.**  A sharded run returns *bit-identical* virtual
clocks, busy times, results and communication totals to ``shards=1``.
This falls out of two properties:

* per-rank virtual state depends only on the rank's program order and on
  which message matched which receive — never on global scheduling order;
* every matching decision the sharded run makes is interleaving-invariant:
  exact-source receives (including ``ANY_TAG``) reduce to per-sender-pair
  FIFO matching, ``ANY_SOURCE`` receives are *held* until global
  quiescence and fired only when exactly one candidate sender exists
  (single source + per-pair FIFO pins the oracle's choice; a whole-run
  backstop hazard catches any later competing sender), and anything else
  order-sensitive is a *hazard* (below).

**Hazards and the oracle.**  Any construct whose outcome could depend on
cross-shard scheduling — an ``ANY_SOURCE`` receive racing multiple
senders, ``probe``, communicator ``split``/``dup``, a user tag colliding
with a collective's private tag window, an unpicklable payload — aborts
the shards and transparently reruns the whole program on the
single-process engine, which *is* the oracle: results and exceptions are
exact by construction.  Errors, deadlocks and collective mismatches take
the same route so their diagnostics match ``shards=1`` verbatim.  The
fallback reason is recorded in ``SpmdResult.extras["shard_fallback"]``;
sharding is purely an optimization and never changes observable
behaviour.

**Fault plans.**  Delay/duplicate message faults, degraded links and
compute noise are shard-safe: every draw keys on (seed, kind, endpoints,
per-sender ordinal), so it lands identically wherever it is evaluated.
Fault-timeout releases of orphaned operations are arbitrated by the
coordinator at global quiescence (the global minimum release key across
shards reproduces the oracle's release order exactly).  Crash plans are
shard-safe as long as no cross-shard traffic touches a crash-armed
shard — such traffic, and message *drops* anywhere, still require the
oracle (LOST holes on arbitrary edges are global engine state).

Set ``REPRO_SHARD_PROFILE=1`` to record a per-run wall-clock breakdown
(gate replay vs cross-shard forwarding vs barrier wait) in
``SpmdResult.extras["shard_profile"]``; it is also emitted as
``shard/*`` metrics when a recorder is attached.

See docs/PERF.md ("Sharded engine") for the design discussion and the
cases where ``shards > 1`` loses.
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from bisect import bisect_right
from operator import attrgetter
from time import perf_counter
from typing import Any, Sequence

from ..faults.injector import LOST, FaultInjector, injector_for
from ..faults.plan import FaultPlan
from ..obs.instrument import NULL_INSTRUMENT, Instrument, ObsData, Recorder
from ..resilience.hostfaults import (
    shard_final_hook,
    shard_replay_hook,
    shard_wave_hook,
)
from ..resilience.supervise import (
    DEFAULT_TEARDOWN_GRACE,
    Heartbeat,
    WorkerTimeout,
    recv_supervised,
    shutdown_workers,
    wave_deadline,
)
from .collectives import (
    _ALGORITHMS,
    _CollGate,
    _GateEntry,
    _run_replay,
    Communicator,
)
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    CommContext,
    MAX_USER_TAG,
    Message,
    PendingRecv,
    Request,
)
from .datatypes import payload_nbytes
from .engine import Engine, Task, TaskState
from .errors import CollectiveMismatchError, PatternMismatchError
from .futures import SimFuture
from .patterns import NeighborPattern, _P2PGate
from .simconfig import SimConfig

_TAG_STRIDE = 4096  # collectives._TAG_STRIDE (kept in sync by a test)

#: arm the per-wave wall-clock breakdown (coordinator + workers)
ENV_PROFILE = "REPRO_SHARD_PROFILE"


def _profiling() -> bool:
    return os.environ.get(ENV_PROFILE, "") not in ("", "0")


class ShardHazard(Exception):
    """Raised inside a worker when the program uses a construct the
    sharded engine cannot reproduce bit-identically; the run falls back
    to the single-process oracle."""


# -- shard-side communicator --------------------------------------------------


class ShardCommContext(CommContext):
    """World communicator context as seen by one shard.

    Rank numbering, mailboxes and collective sequence numbers cover the
    *whole* world (so they align exactly with the single-process run),
    but only ranks in ``[lo, hi)`` have live tasks here; traffic to the
    rest is queued in ``outbox`` for the coordinator to route.
    """

    def __init__(self, engine: Engine, nprocs: int, lo: int, hi: int,
                 shard_index: int = 0, bounds: Sequence[int] | None = None,
                 armed: frozenset = frozenset()) -> None:
        super().__init__(engine, range(nprocs))
        self.lo = lo
        self.hi = hi
        self.owned_count = hi - lo
        self.shard_index = shard_index
        #: sorted block-partition fencepost list for the whole world
        self.bounds = list(bounds) if bounds is not None else [0, nprocs]
        #: shards holding a plan-armed crash rank; any cross-shard traffic
        #: touching one of them is a hazard (LOST holes are global state)
        self.armed_shards = {self.shard_of(r) for r in armed}
        self.self_armed = shard_index in self.armed_shards
        #: set to a reason string the moment a hazard is detected; checked
        #: at every wave boundary (an active fault injector would swallow
        #: the exception as a partial failure, so the flag is the backstop)
        self.hazard: str | None = None
        #: cross-shard messages produced this wave
        self.outbox: list[tuple] = []
        #: rendezvous sender futures awaiting a remote completion,
        #: keyed by (src_world, sender ordinal)
        self.rdv_waiting: dict[tuple[int, int], SimFuture] = {}
        #: rendezvous completions produced this wave (we are the receiver)
        self.rdv_replies_out: list[tuple] = []
        #: locally-complete collective gates awaiting the global replay
        self.gates_out: list[tuple[int, _CollGate]] = []
        self.gate_pending: dict[int, _CollGate] = {}
        #: owner-replay completion columns for foreign ranks, this wave
        self.gate_results_out: list[tuple] = []
        #: held ANY_SOURCE receives: rank -> (tag, post_time, future, task)
        self.wild_held: dict[int, tuple] = {}
        #: quiescent-drain resolutions: rank -> [(tag, matched_src)]
        self.wild_resolved: dict[int, list] = {}
        #: wall-clock profile accumulators (armed via REPRO_SHARD_PROFILE)
        self.profile = False
        self.replay_s = 0.0

    def owns(self, world_rank: int) -> bool:
        return self.lo <= world_rank < self.hi

    def shard_of(self, rank: int) -> int:
        return bisect_right(self.bounds, rank) - 1

    def flag_hazard(self, reason: str) -> None:
        if self.hazard is None:
            self.hazard = reason

    def deliver(self, mbox, msg: Message) -> None:
        hits = self.wild_resolved.get(msg.dest) if self.wild_resolved \
            else None
        if hits is not None and msg.tag <= MAX_USER_TAG and any(
            (t == ANY_TAG or t == msg.tag) and src != msg.src
            for t, src in hits
        ):
            # Backstop for the quiescent drain: a message the drained
            # wildcard could have matched arrives from a *different*
            # sender, so the oracle might have chosen it instead.  Any
            # competing send the oracle performs is divergence-independent
            # up to that send, so it necessarily happens in this run too
            # and trips this flag before finals are produced.
            self.flag_hazard("wildcard-race")
        super().deliver(mbox, msg)


class ShardCommunicator(Communicator):
    """World communicator bound to a rank owned by this shard.

    Intra-shard traffic uses the inherited implementation unchanged.
    Cross-shard sends replicate ``Comm.isend``'s exact arithmetic locally
    (all sender-side costs are charged at post time) and queue a record
    for the coordinator; cross-shard receives simply park in the local
    mailbox until the barrier delivers the message.  ``ANY_SOURCE``
    receives are held for the coordinator's quiescent drain.  Anything
    order-sensitive beyond that raises :class:`ShardHazard`.
    """

    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> Request:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        if ctx.owns(dest):
            return super().isend(dest, payload, tag=tag, size=size)
        self._check_peer(dest, "destination")
        self._check_tag(tag, recv=False)
        if ctx.armed_shards and (
            ctx.self_armed or ctx.shard_of(dest) in ctx.armed_shards
        ):
            # Crash islands: a message into (or out of) a crash-armed
            # shard would need the global failed set and purge semantics.
            ctx.flag_hazard("fault-cross-shard")
            raise ShardHazard(
                "cross-shard traffic touching a crash-armed shard is not "
                "shard-safe; the run falls back to the single-process engine"
            )
        nbytes = payload_nbytes(payload) if size is None else int(size)
        net = self.net
        task = self.task
        engine = self.engine
        task.msgs_sent += 1
        task.bytes_sent += nbytes
        engine.total_messages += 1
        engine.total_bytes += nbytes
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count("p2p/bytes_sent", nbytes, rank=self.rank,
                              op="send", t=task.clock)
            ins.metrics.count("p2p/messages", 1, rank=self.rank,
                              op="send", t=task.clock)
        fut = SimFuture(kind="isend", src=self.rank, dest=dest, tag=tag,
                        comm=ctx.id, post_time=task.clock)
        ordinal = task.msgs_sent  # after increment: matches Comm.isend
        inj = engine.faults
        if net.eager(nbytes):
            task.charge(net.o_send + net.transfer_time(nbytes))
            latency = net.latency
            if inj.active:
                latency *= inj.link_factors(self.rank, dest)[0]
                extra = inj.message_delay(self.rank, dest, ordinal)
                if extra is None:  # pragma: no cover - drops are pre-filtered
                    ctx.flag_hazard("message-drop")
                    raise ShardHazard("message drop in a sharded run")
                latency += extra
                if extra and ins.enabled:
                    ins.instant(self.rank, "msg_delayed", "fault", task.clock,
                                {"dest": dest, "tag": tag, "extra": extra})
                    ins.metrics.count("fault/messages_delayed", 1,
                                      rank=self.rank, t=task.clock)
            ctx.outbox.append((self.rank, dest, tag, payload, nbytes,
                               task.clock + latency, False, None))
            fut.resolve(None, time=task.clock)
        else:
            task.charge(net.o_send)  # posting cost is paid now
            pid = (self.rank, ordinal)
            ctx.rdv_waiting[pid] = fut
            ctx.outbox.append((self.rank, dest, tag, payload, nbytes,
                               task.clock, True, pid))
        return Request(fut, task, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        if self.rank in ctx.wild_held:
            # A receive posted while an ANY_SOURCE receive is held could
            # steal the message the oracle hands the wildcard.
            ctx.flag_hazard("wildcard-mixed")
            raise ShardHazard(
                "receive posted while recv(ANY_SOURCE) is outstanding"
            )
        if source != ANY_SOURCE:
            if (ctx.armed_shards and 0 <= source < ctx.size
                    and not ctx.owns(source)
                    and (ctx.self_armed
                         or ctx.shard_of(source) in ctx.armed_shards)):
                # The oracle resolves a receive from a dead peer with LOST
                # immediately at post time; whether a *remote* peer is
                # dead is not local knowledge.
                ctx.flag_hazard("fault-cross-shard")
                raise ShardHazard(
                    "cross-shard receive touching a crash-armed shard is "
                    "not shard-safe"
                )
            return super().irecv(source, tag)
        if self.engine.faults.active:
            # Wildcard matching consults arrival order *and* the failed
            # set; under an active plan the quiescent drain cannot
            # reproduce the oracle's combination of both.
            ctx.flag_hazard("wildcard-faults")
            raise ShardHazard(
                "recv(ANY_SOURCE) under an active fault plan is not "
                "shard-safe"
            )
        mbox = ctx.mailbox(self.rank)
        if mbox.has_pending():
            # An exact receive already pending on this rank could race
            # the held wildcard for the same message.
            ctx.flag_hazard("wildcard-mixed")
            raise ShardHazard(
                "recv(ANY_SOURCE) posted while exact receives are pending"
            )
        self._check_tag(tag, recv=True)
        task = self.task
        fut = SimFuture(kind="irecv", src=None, dest=self.rank, tag=tag,
                        comm=ctx.id, post_time=task.clock)
        # Hold the receive instead of posting it: the coordinator fires it
        # at global quiescence, when exactly one candidate sender exists
        # (single source + per-pair FIFO then pins the oracle's choice),
        # and falls back otherwise.  See docs/PERF.md "Sharded engine".
        ctx.wild_held[self.rank] = (tag, task.clock, fut, task)
        return Request(fut, task, "irecv")

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict | None:
        # A probe observes in-flight state that may live on another shard.
        self.context.flag_hazard("probe")
        raise ShardHazard("probe() is not shard-safe")

    async def split(self, color: int, key: int | None = None):
        # Sub-communicator contexts are built on rank 0 and broadcast as
        # in-process objects; they cannot cross process boundaries.
        self.context.flag_hazard("split")
        raise ShardHazard("split()/dup() are not shard-safe")

    async def dup(self) -> "Communicator":
        self.context.flag_hazard("split")
        raise ShardHazard("split()/dup() are not shard-safe")

    # -- collectives ---------------------------------------------------

    def _consult_gate(self, kind: str, root: int | None) -> _CollGate | None:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        seq = ctx.coll_seq[self.rank]
        gate = ctx._gates.get(seq)
        if gate is None:
            reason = self._fallback_reason(seq)
            if reason == "tag-window":
                # A divergent per-shard verdict would desynchronise the
                # collective across shards; make it a whole-run hazard.
                ctx.flag_hazard("tag-window")
                raise ShardHazard(
                    "pending traffic in a collective tag window"
                )
            # Every other verdict input (knobs, instrument granularity,
            # static fault plan) is identical in all shards, so each shard
            # independently computes the same fast/simulated decision.
            gate = _CollGate(kind, root, reason, ctx.owned_count)
            ctx._gates[seq] = gate
        elif gate.kind != kind or gate.root != root:
            raise CollectiveMismatchError(
                f"rank {self.rank} called {kind}(root={root}) as collective "
                f"#{seq} but other ranks are in "
                f"{gate.kind}(root={gate.root})"
            )
        gate.consulted += 1
        if gate.consulted == ctx.owned_count:
            del ctx._gates[seq]
        if gate.reason is None:
            return gate
        engine = self.engine
        engine.collectives_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "coll/fallbacks", 1, rank=self.rank,
                op=f"{kind}:{gate.reason}", t=self.task.clock,
            )
        return None

    # -- declared p2p patterns -----------------------------------------

    def _p2p_fallback_reason(self) -> str | None:
        # The p2p gate needs every participant's entry inside one engine,
        # which a shard never has: declared exchanges always drive their
        # message-level ops here (bit-identical in virtual time by the
        # macro-p2p contract; only the fast/simulated instance counters
        # differ from shards=1).  With a recorder attached that counter
        # difference would also surface as p2p/fallbacks metrics the
        # single-process run does not emit, so obs parity requires the
        # oracle.
        if self.engine.p2p != "fast":
            return "disabled"
        if self.engine.instrument.enabled:
            self.context.flag_hazard("p2p-patterns")
            raise ShardHazard(
                "declared p2p patterns under instrumentation are not "
                "shard-safe; the run falls back to the single-process engine"
            )
        return "sharded"

    def _consult_p2p_gate(self, pattern: NeighborPattern) -> None:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        seq = ctx.p2p_seq[self.rank]
        ctx.p2p_seq[self.rank] = seq + 1
        gate = ctx._p2p_gates.get(seq)
        if gate is None:
            # Cross-shard pattern mismatches at the same seq are caught by
            # the message-level drive itself (a mismatched exchange
            # deadlocks, and the "stuck" fallback reruns on the oracle,
            # which raises the exact PatternMismatchError).
            gate = _P2PGate(pattern, seq, self._p2p_fallback_reason(),
                            ctx.owned_count)
            ctx._p2p_gates[seq] = gate
        elif gate.key != pattern.key:
            raise PatternMismatchError(
                f"rank {self.rank} called exchange({pattern.name!r}) as p2p "
                f"instance #{seq} but other ranks are in {gate.name!r}"
            )
        gate.consulted += 1
        if gate.consulted == ctx.owned_count:
            del ctx._p2p_gates[seq]
        engine = self.engine
        engine.p2p_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "p2p/fallbacks", 1, rank=self.world_rank(self.rank),
                op=f"{pattern.name}:{gate.reason}", t=self.task.clock,
            )
        return None

    async def _join_fast(self, gate: _CollGate, genargs: tuple) -> Any:
        ctx: ShardCommContext = self.context  # type: ignore[assignment]
        task = self.task
        seq = ctx.coll_seq[self.rank]
        ctx.coll_seq[self.rank] = seq + 1
        task.collectives += 1
        self.engine.collectives_fast += 1
        fut = SimFuture(kind="coll", tag=seq, dest=self.rank, comm=ctx.id,
                        post_time=task.clock)
        # No generator: the owner shard rebuilds schedules lazily from the
        # (picklable) genargs tuple iff its replay takes the generator path.
        gate.entries.append(_GateEntry(self.rank, task, fut, None, genargs))
        if len(gate.entries) == gate.expected:
            ctx.gates_out.append((seq, gate))
            ctx.gate_pending[seq] = gate
        result = await fut
        task.advance_to(fut.time)
        return result


# -- wire format helpers ------------------------------------------------------


_entry_rank = attrgetter("rank")


def _gate_record(seq: int, gate: _CollGate) -> tuple:
    """Columnar encoding of one shard's entries for gate ``seq``.  Typed
    arrays pickle as raw buffers: at P=65536 that is the difference
    between shipping the numeric columns as bytes and as boxed objects.

    Sorts ``gate.entries`` in place: chunks are rank-sorted on the wire,
    and the owner shard replays straight over its own (then-sorted)
    entry list without re-permuting."""
    gate.entries.sort(key=_entry_rank)
    es = gate.entries
    return (
        seq, gate.kind, gate.root,
        array("q", [e.rank for e in es]),
        array("d", [e.clock0 for e in es]),
        array("d", [e.busy0 for e in es]),
        array("q", [e.sent0 for e in es]),
        array("q", [e.bytes_sent0 for e in es]),
        array("q", [e.recvd0 for e in es]),
        array("q", [e.bytes_recvd0 for e in es]),
        [e.genargs for e in es],
    )


class _RemoteEntry:
    """Owner-shard stand-in for a _GateEntry: exactly the attributes the
    replay's _RankState snapshot (and its lazy generator construction)
    reads."""

    __slots__ = ("rank", "gen", "genargs", "clock0", "busy0", "sent0",
                 "bytes_sent0", "recvd0", "bytes_recvd0")

    def __init__(self, rank, genargs, clock0, busy0, sent0, bytes_sent0,
                 recvd0, bytes_recvd0) -> None:
        self.rank = rank
        self.gen = None  # built by _run_replay iff the generator path runs
        self.genargs = genargs
        self.clock0 = clock0
        self.busy0 = busy0
        self.sent0 = sent0
        self.bytes_sent0 = bytes_sent0
        self.recvd0 = recvd0
        self.bytes_recvd0 = bytes_recvd0


def _safe_send(hb: Heartbeat, obj) -> bool:
    """Send ``obj``, degrading to an error status on pickle failure.

    ``Connection.send`` pickles the full object before writing any bytes,
    so a failed attempt leaves the pipe clean and the fallback status can
    still go through.  Sends go through the heartbeat's lock so beat
    frames never interleave with protocol frames.
    """
    try:
        hb.send(obj)
        return True
    except Exception as exc:  # noqa: BLE001 - unpicklable payload/result
        hb.send(("error", f"pickle:{type(exc).__name__}"))
        return False


# -- shard worker -------------------------------------------------------------


def _result_columns(states: list) -> tuple:
    """Columnar encoding of replayed _RankStates (sorted by caller)."""
    return (
        array("q", [st.rank for st in states]),
        [st.result for st in states],
        array("d", [st.clock for st in states]),
        array("d", [st.busy for st in states]),
        array("q", [st.msgs_sent for st in states]),
        array("q", [st.bytes_sent for st in states]),
        array("q", [st.msgs_received for st in states]),
        array("q", [st.bytes_received for st in states]),
    )


def _apply_gate_results(ctx: ShardCommContext, engine: Engine, seq: int,
                        ranks, results, clocks, busys, sent, bsent,
                        recvd, brecvd) -> None:
    """Resolve this shard's entries for gate ``seq`` from replayed
    columns; bulk-advance exactly like _CollGate.complete."""
    gate = ctx.gate_pending.pop(seq)
    ins = engine.instrument
    emit = ins.enabled
    alg = _ALGORITHMS[gate.kind]
    by_rank = {e.rank: e for e in gate.entries}
    resolutions = []
    for i, rank in enumerate(ranks):
        entry = by_rank[rank]
        task = entry.task
        task.clock = clocks[i]
        task.busy = busys[i]
        task.msgs_sent = sent[i]
        task.bytes_sent = bsent[i]
        task.msgs_received = recvd[i]
        task.bytes_received = brecvd[i]
        if emit:
            ins.span(rank, gate.kind, "coll", entry.clock0, clocks[i],
                     {"algorithm": alg, "comm": ctx.id, "size": ctx.size})
            ins.metrics.count("coll/calls", 1, rank=rank,
                              op=gate.kind, t=clocks[i])
            ins.metrics.count("coll/time", clocks[i] - entry.clock0,
                              rank=rank, op=gate.kind, t=clocks[i])
            ins.metrics.count("coll/fast_hits", 1, rank=rank,
                              op=gate.kind, t=clocks[i])
        resolutions.append((entry.fut, results[i], clocks[i]))
    engine.wave_resolve(resolutions)


def _apply_gate_states(ctx: ShardCommContext, engine: Engine, seq: int,
                       states: dict) -> None:
    """Owner-side twin of :func:`_apply_gate_results`: resolve this
    shard's entries for gate ``seq`` straight from the replay's state
    dict, with no columnar round-trip."""
    gate = ctx.gate_pending.pop(seq)
    ins = engine.instrument
    emit = ins.enabled
    alg = _ALGORITHMS[gate.kind]
    resolutions = []
    for entry in gate.entries:
        st = states[entry.rank]
        task = entry.task
        task.clock = st.clock
        task.busy = st.busy
        task.msgs_sent = st.msgs_sent
        task.bytes_sent = st.bytes_sent
        task.msgs_received = st.msgs_received
        task.bytes_received = st.bytes_received
        if emit:
            ins.span(entry.rank, gate.kind, "coll", entry.clock0, st.clock,
                     {"algorithm": alg, "comm": ctx.id, "size": ctx.size})
            ins.metrics.count("coll/calls", 1, rank=entry.rank,
                              op=gate.kind, t=st.clock)
            ins.metrics.count("coll/time", st.clock - entry.clock0,
                              rank=entry.rank, op=gate.kind, t=st.clock)
            ins.metrics.count("coll/fast_hits", 1, rank=entry.rank,
                              op=gate.kind, t=st.clock)
        resolutions.append((entry.fut, st.result, st.clock))
    engine.wave_resolve(resolutions)


def _replay_gate_job(ctx: ShardCommContext, engine: Engine, job: tuple) -> None:
    """Owner-shard replay of one complete gate.

    ``job`` carries only the *foreign* shards' chunks, pre-sorted by the
    coordinator; this shard's own entries are spliced in from the local
    gate (``_gate_record`` left them rank-sorted), so the merged entry
    list is globally rank-sorted without a permutation pass.  After the
    bit-exact replay the owned ranks resolve in place and each foreign
    chunk's completion columns queue for the coordinator as one
    per-destination-shard record."""
    seq, kind, root, chunks = job
    shard_replay_hook(ctx.shard_index)
    t0 = perf_counter() if ctx.profile else 0.0
    local = ctx.gate_pending[seq].entries
    own_first = local[0].rank
    entries: list = []
    spliced = False
    for ch in chunks:
        if not spliced and ch[0][0] > own_first:
            entries.extend(local)
            spliced = True
        ranks, clock0, busy0, sent0, bsent0, recvd0, brecvd0, genargs = ch
        entries.extend(
            _RemoteEntry(ranks[i], genargs[i], clock0[i], busy0[i],
                         sent0[i], bsent0[i], recvd0[i], brecvd0[i])
            for i in range(len(ranks))
        )
    if not spliced:
        entries.extend(local)
    sim = _run_replay(kind, root, engine.network, entries, len(entries))
    if sim.failure is not None:
        # A raising reduction op: the oracle rerun reproduces the exact
        # error semantics (which rank raises, at what clock).
        ctx.flag_hazard("collective-raise")
        return
    # Replay traffic is attributed to the owner shard; _merge sums the
    # per-shard engine totals, matching the single-process accounting.
    engine.total_messages += sim.total_messages
    engine.total_bytes += sim.total_bytes
    states = sim.states
    for ch in chunks:
        ctx.gate_results_out.append(
            (seq, *_result_columns([states[r] for r in ch[0]]))
        )
    _apply_gate_states(ctx, engine, seq, states)
    if ctx.profile:
        ctx.replay_s += perf_counter() - t0


def _drain_wildcard(ctx: ShardCommContext, rank: int) -> None:
    """Fire a held ANY_SOURCE receive against its (single-sender) mailbox.

    The coordinator only issues a drain at global quiescence with exactly
    one candidate source, where per-pair FIFO pins the oracle's choice;
    the completion time ``max(post_time + o_recv, arrival)`` computed by
    ``fire_match`` is identical to both oracle paths (immediate match at
    post and parked fire)."""
    tag, post_time, fut, task = ctx.wild_held.pop(rank)
    msg = ctx.mailbox(rank).match_msg(ANY_SOURCE, tag)
    if msg is None:  # pragma: no cover - the coordinator saw a candidate
        ctx.flag_hazard("wildcard-race")
        return
    ctx.wild_resolved.setdefault(rank, []).append((tag, msg.src))
    ctx.fire_match(PendingRecv(ANY_SOURCE, tag, post_time, fut, task), msg)


def _apply_inbox(ctx: ShardCommContext, engine: Engine, tasks: list[Task],
                 inbox: dict) -> None:
    """Apply one wave's deliveries.  Message records from one sender arrive
    in its program order (per-pair FIFO is all exact-source matching needs);
    gate jobs replay on this shard; gate results bulk-advance exactly like
    _CollGate.complete."""
    for src, dest, tag, payload, nbytes, t, rdv, pid in inbox["msgs"]:
        mbox = ctx.mailbox(dest)
        if rdv:
            proxy = SimFuture(kind="isend", src=src, dest=dest, tag=tag,
                              comm=ctx.id, post_time=t)
            proxy.add_done_callback(
                lambda f, pid=pid: ctx.rdv_replies_out.append(
                    (pid, f.time, f.busy_charge, f.value is LOST)
                )
            )
            msg = Message(src=src, dest=dest, tag=tag, payload=payload,
                          nbytes=nbytes, arrival=0.0, rendezvous=True,
                          send_ready=t, sender_future=proxy)
        else:
            msg = Message(src=src, dest=dest, tag=tag, payload=payload,
                          nbytes=nbytes, arrival=t)
        ctx.deliver(mbox, msg)
    for pid, t, busy_charge, lost in inbox["replies"]:
        fut = ctx.rdv_waiting.pop(pid)
        if fut.done:
            # Already released by a fault timeout: the oracle's fire_match
            # skips a done sender future the same way.
            continue
        fut.busy_charge = busy_charge
        fut.resolve(LOST if lost else None, time=t)
    for job in inbox["gate_jobs"]:
        _replay_gate_job(ctx, engine, job)
        if ctx.hazard is not None:
            return
    for rec in inbox["gate_results"]:
        _apply_gate_results(ctx, engine, *rec)
    for rank in inbox["drain"]:
        _drain_wildcard(ctx, rank)
        if ctx.hazard is not None:
            return
    victim = inbox["release"]
    if victim is not None:
        engine.release_orphan(tasks[victim - ctx.lo])


def _shard_worker(conn, shard_index: int, bounds: list[int], nprocs: int,
                  main, args, kwargs, cfg: SimConfig,
                  plan: FaultPlan | None,
                  rec_params: tuple | None) -> None:
    """Child process entry point (fork start method: ``main``/``args`` are
    inherited, never pickled).  Alternates run_ready waves with barrier
    exchanges until told to finish or abort.  A background heartbeat
    keeps the coordinator's supervision informed that this worker is
    alive even while a long wave computes."""
    import gc

    # Everything inherited from the parent is effectively immutable here;
    # moving it to the permanent generation takes the parent's heap off
    # every traversal a collection would make.  Collection is then
    # switched off for the worker's whole life: nothing allocated during
    # the task-graph build below can be garbage (it is all reachable
    # from the engine) ...
    gc.freeze()
    gc.disable()
    hb: Heartbeat | None = None
    try:
        lo, hi = bounds[shard_index], bounds[shard_index + 1]
        injector = injector_for(plan)
        if injector.active:
            injector.plan.validate(nprocs)
        armed = (frozenset(c.rank for c in plan.crashes)
                 if plan is not None else frozenset())
        ins: Instrument = NULL_INSTRUMENT
        if rec_params is not None:
            ins = Recorder(time_bucket=rec_params[0], max_events=rec_params[1],
                           granularity=rec_params[2])
        engine = Engine(network=cfg.network, instrument=ins, faults=injector,
                        matching=cfg.matching, collectives=cfg.collectives,
                        p2p=cfg.p2p)
        ctx = ShardCommContext(engine, nprocs, lo, hi,
                               shard_index=shard_index, bounds=bounds,
                               armed=armed)
        ctx.profile = _profiling()
        tasks: list[Task] = []
        for rank in range(lo, hi):
            task = Task(rank, None)  # type: ignore[arg-type]
            comm = ShardCommunicator(ctx, rank, task)
            from .launcher import RankContext  # local: avoid import cycle

            rctx = RankContext(comm, task)
            task.coro = main(rctx, *args, **kwargs)
            engine.adopt(task)
            tasks.append(task)
        # ... and collection never resumes: wave-protocol garbage
        # (columnar records, remote entries, unpickled inboxes) is
        # acyclic, so plain refcounting reclaims it as each wave ends;
        # the only thing cyclic collection could add is re-scanning those
        # young objects on every threshold crossing — at P=65536 that
        # re-scan is the single-process engine's dominant cost.  Sound
        # ONLY because the worker is one-shot: any cyclic garbage is
        # bounded by one run and the process exits right after.
        hb = Heartbeat(conn, lambda: engine.steps).start()
        wave = 0
        while True:
            wave += 1
            shard_wave_hook(shard_index, wave)
            err: str | None = None
            try:
                engine.run_ready()
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                err = repr(exc)
            if ctx.hazard is not None:
                hb.send(("error", f"hazard:{ctx.hazard}"))
                return
            if err is None:
                bad = {t.rank for t in tasks if t.state is TaskState.FAILED}
                if bad and not (injector.active and bad <= armed):
                    # Unplanned failures need the oracle's global partial-
                    # failure bookkeeping; plan-armed crashes are handled
                    # locally (cross-shard coupling is hazarded at the op).
                    err = "rank-failed"
            if err is not None:
                hb.send(("error", err))
                return
            blocked: tuple | None = None
            if injector.active:
                cand = engine._orphan_candidate()
                if cand is not None:
                    blocked = engine._orphan_key(cand)
            status = {
                "msgs": ctx.outbox,
                "replies": ctx.rdv_replies_out,
                "gates": [_gate_record(seq, g) for seq, g in ctx.gates_out],
                "gate_results": ctx.gate_results_out,
                "wild": [
                    (rank,
                     len(ctx.mailbox(rank).wild_candidate_sources(held[0])))
                    for rank, held in sorted(ctx.wild_held.items())
                ],
                "blocked": blocked,
                "done": all(t.state is TaskState.DONE
                            or t.state is TaskState.FAILED for t in tasks),
                "resumes": engine.resumes,
            }
            if ctx.profile:
                status["replay_s"] = ctx.replay_s
                ctx.replay_s = 0.0
            ctx.outbox = []
            ctx.rdv_replies_out = []
            ctx.gates_out = []
            ctx.gate_results_out = []
            if not _safe_send(hb, ("status", status)):
                return
            cmd = conn.recv()
            if cmd[0] == "deliver":
                _apply_inbox(ctx, engine, tasks, cmd[1])
                continue
            if cmd[0] == "finish":
                shard_final_hook(shard_index)
                final = {
                    "ranks": list(range(lo, hi)),
                    "results": [t.result for t in tasks],
                    "clocks": [t.clock for t in tasks],
                    "busy": [t.busy for t in tasks],
                    "total_messages": engine.total_messages,
                    "total_bytes": engine.total_bytes,
                    "total_matches": engine.total_matches,
                    "steps": engine.steps,
                    "resumes": engine.resumes,
                    "collectives_fast": engine.collectives_fast,
                    "collectives_simulated": engine.collectives_simulated,
                    "p2p_simulated": engine.p2p_simulated,
                    "injected": dict(injector.injected)
                    if injector.active else None,
                    "failed": sorted(injector.failed)
                    if injector.active else None,
                    "obs": ins.snapshot({"shard": (lo, hi)})
                    if rec_params is not None else None,
                }
                _safe_send(hb, ("final", final))
                return
            return  # abort
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        return
    finally:
        if hb is not None:
            hb.stop()
        conn.close()


# -- coordinator --------------------------------------------------------------


class _Fallback(Exception):
    """Internal: abort sharded execution and rerun on the oracle."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _coordinate(conns: Sequence, procs: Sequence, bounds: list[int],
                nprocs: int, cfg: SimConfig, plan: FaultPlan | None,
                profile: bool):
    """Run the wave-barrier protocol to completion.

    Returns ``(finals, waves, profile-dict-or-None)``, or raises
    _Fallback when anything requires the oracle.  Every receive is
    supervised — wall-clock deadline plus heartbeat-gap detection — and
    every send is wrapped, so a dead, stopped or wedged worker (including
    one that dies mid-gate-replay) becomes a ``worker-died`` /
    ``worker-timeout`` / ``worker-hung`` fallback instead of hanging the
    coordinator forever.
    """
    nshards = len(conns)

    def shard_of(rank: int) -> int:
        # bounds is the sorted block-partition fencepost list
        return bisect_right(bounds, rank) - 1

    def send(conn, frame) -> None:
        try:
            conn.send(frame)
        except (BrokenPipeError, OSError):
            # The worker died between its status and this delivery.
            raise _Fallback("worker-died") from None

    # gates accumulating across shards: seq -> [kind, root, rank_count,
    # chunks], one rank-sorted columnar chunk per contributing shard
    # (shards ship a chunk only once their whole block has joined).
    gates: dict[int, list] = {}
    high_tags_routed: set[int] = set()
    # outstanding per-destination-shard result records from dispatched
    # owner replays; termination waits for all of them to route back
    results_in_flight = 0
    waves = 0
    arming = plan is not None and not plan.is_empty()
    prof = ({"waves": 0, "barrier_wait_s": 0.0, "forward_s": 0.0,
             "gate_replay_s": 0.0} if profile else None)
    while True:
        waves += 1
        t0 = perf_counter() if profile else 0.0
        statuses = []
        for conn, proc in zip(conns, procs):
            try:
                msg = recv_supervised(conn, proc, stage="wave")
            except WorkerTimeout as wt:
                raise _Fallback(wt.reason) from None
            if msg[0] == "error":
                raise _Fallback(msg[1])
            statuses.append(msg[1])
        t1 = perf_counter() if profile else 0.0
        inboxes: list[dict] = [
            {"msgs": [], "replies": [], "gate_jobs": [], "gate_results": [],
             "drain": [], "release": None}
            for _ in range(nshards)
        ]
        routed = False
        for st in statuses:
            for rec in st["msgs"]:
                dest = rec[1]
                if rec[2] > MAX_USER_TAG:
                    high_tags_routed.add(rec[2])
                inboxes[shard_of(dest)]["msgs"].append(rec)
                routed = True
            for rep in st["replies"]:
                # pid = (src_world, ordinal): route back to the sender
                inboxes[shard_of(rep[0][0])]["replies"].append(rep)
                routed = True
            for g in st["gates"]:
                seq, kind, root = g[0], g[1], g[2]
                acc = gates.get(seq)
                if acc is None:
                    gates[seq] = [kind, root, len(g[3]), [g[3:]]]
                elif acc[0] != kind or acc[1] != root:
                    raise _Fallback("collective-mismatch")
                else:
                    acc[2] += len(g[3])
                    acc[3].append(g[3:])
            for res in st["gate_results"]:
                # One foreign chunk of an owner-shard replay came back;
                # chunks are per-destination-shard, so routing is a
                # single lookup on the first rank.
                results_in_flight -= 1
                inboxes[shard_of(res[1][0])]["gate_results"].append(res)
                routed = True
        for seq in sorted(s for s, acc in gates.items()
                          if acc[2] == nprocs):
            kind, root, _, chunks = gates.pop(seq)
            base = MAX_USER_TAG + 1024 + seq * _TAG_STRIDE
            if any(base <= t < base + _TAG_STRIDE for t in high_tags_routed):
                # A user (or tool) message crossed shards inside this
                # gate's private window; the single-process verdict scan
                # would have seen it, so ours is not trustworthy.
                raise _Fallback("tag-window")
            # Round-robin ownership: deterministic under any arrival
            # interleaving, and independent gates land on distinct shards
            # so replay work scales with the shard count.  The owner's
            # own chunk never leaves its process: ship only the foreign
            # chunks, pre-sorted by first rank (contiguous blocks, so
            # that is global rank order).
            owner = seq % nshards
            chunks.sort(key=lambda ch: ch[0][0])
            job = [ch for ch in chunks if shard_of(ch[0][0]) != owner]
            inboxes[owner]["gate_jobs"].append((seq, kind, root, job))
            results_in_flight += len(job)
            routed = True
        all_done = all(st["done"] for st in statuses)
        if all_done and not routed and not gates and not results_in_flight:
            break
        if not routed:
            # Global quiescence with ranks still blocked: arbitrate the
            # decisions that need a whole-world view before declaring the
            # program stuck.
            held = [(s, rank, n) for s, st in enumerate(statuses)
                    for rank, n in st["wild"]]
            if held:
                if any(n >= 2 for _, _, n in held):
                    # Two candidate senders: the oracle's pick depends on
                    # global arrival order, which sharding lost.
                    raise _Fallback("wildcard-race")
                for s, rank, n in held:
                    if n == 1:
                        inboxes[s]["drain"].append(rank)
                        routed = True
            if not routed and arming:
                # Fault-timeout release: the global minimum (post_time,
                # rank) candidate is exactly the orphan the oracle's
                # engine loop would release next.
                cands = [st["blocked"] for st in statuses
                         if st["blocked"] is not None]
                if cands:
                    rank = min(cands)[1]
                    inboxes[shard_of(rank)]["release"] = rank
                    routed = True
            if not routed:
                # Nothing in flight, nothing deliverable, ranks still
                # blocked: the program is deadlocked (or stuck in a
                # half-joined collective).  The oracle reruns to produce
                # the exact DeadlockError/diagnostic the single-process
                # engine raises.
                raise _Fallback("stuck")
        for conn, inbox in zip(conns, inboxes):
            send(conn, ("deliver", inbox))
        if profile:
            prof["barrier_wait_s"] += t1 - t0
            prof["forward_s"] += perf_counter() - t1
            prof["gate_replay_s"] += sum(st.get("replay_s", 0.0)
                                         for st in statuses)
    for conn in conns:
        send(conn, ("finish",))
    finals = []
    for conn, proc in zip(conns, procs):
        try:
            # Supervised like every wave receive: a worker that wedges
            # while finalizing (or never reads a command) is torn down
            # within its deadline instead of hanging this recv forever.
            msg = recv_supervised(conn, proc, stage="final")
        except WorkerTimeout as wt:
            raise _Fallback(wt.reason) from None
        if msg[0] == "error":
            raise _Fallback(msg[1])
        finals.append(msg[1])
    if profile:
        prof["waves"] = waves
        prof["gate_replay_s"] += sum(f.get("replay_s", 0.0) for f in finals)
    return finals, waves, prof


def run_sharded(main, nprocs: int, args: tuple, kwargs: dict, cfg: SimConfig,
                *, instrument: Instrument = NULL_INSTRUMENT,
                faults: FaultPlan | FaultInjector | None = None):
    """Entry point from :func:`~repro.simmpi.launcher.run_spmd` for
    ``cfg.shards > 1``.  Falls back to the single-process engine (with the
    reason in ``extras["shard_fallback"]``) whenever the run is not
    shard-eligible, before or after forking."""
    from .launcher import _run_single  # circular at module import time

    def _single(reason: str | None):
        result = _run_single(main, nprocs, args, kwargs, cfg,
                             instrument=instrument, faults=faults)
        result.extras["shards"] = cfg.shards
        if reason is not None:
            result.extras["shard_fallback"] = reason
        return result

    nshards = min(cfg.shards, nprocs)
    if nshards <= 1:
        return _single("nprocs")
    if cfg.max_steps is not None:
        # The raw resume count differs between sharded and single-process
        # scheduling, so a budget trip cannot be reproduced bit-exactly.
        return _single("max-steps")
    if isinstance(faults, FaultInjector):
        # A caller-held injector instance accumulates counters we cannot
        # mutate from worker processes.
        if faults.active:
            return _single("injector-instance")
        plan: FaultPlan | None = None
    else:
        plan = faults
    if plan is not None and not plan.is_empty():
        if plan.messages.drop_prob > 0.0:
            # Drops create LOST holes on arbitrary edges; their
            # timeout-release order is global engine state no static
            # hazard check can bound.
            return _single("faults")
        if plan.crashes and instrument is not NULL_INSTRUMENT \
                and instrument.enabled:
            # op_timeout instants embed the *global* failed set, which no
            # single shard knows.  Crash plans without a recorder stay
            # eligible: crashes fire inside their own shard and any
            # cross-shard coupling is hazarded at the offending op.
            return _single("faults")
    recorder: Recorder | None = None
    if instrument is not NULL_INSTRUMENT and instrument.enabled:
        if isinstance(instrument, Recorder):
            recorder = instrument
        else:
            return _single("instrument")
    if "fork" not in multiprocessing.get_all_start_methods():
        return _single("platform")

    # Keep the collector off for the coordination window: every wave
    # unpickles thousands of tracked objects (gate columns, genargs
    # tuples) and each threshold collection re-scans the whole long-lived
    # parent heap.  The garbage is bounded by wave traffic and reclaimed
    # by the first collection after re-enable.  No pre-fork collect: the
    # workers freeze the inherited heap and never collect, so parent
    # garbage is neither re-scanned nor COW-touched in the children, and
    # a full pass over a post-benchmark heap costs more than it saves.
    import gc

    gc_was_enabled = gc.isenabled()
    gc.disable()
    mp = multiprocessing.get_context("fork")
    bounds = [(s * nprocs) // nshards for s in range(nshards + 1)]
    profile = _profiling()
    rec_params = (
        (recorder.metrics.time_bucket, recorder.max_events,
         recorder.granularity)
        if recorder is not None else None
    )
    conns = []
    procs = []
    fallback: str | None = None
    teardown = "clean"
    prof = None
    try:
        for s in range(nshards):
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(
                target=_shard_worker,
                args=(child_conn, s, bounds, nprocs, main,
                      args, kwargs, cfg, plan, rec_params),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        try:
            finals, waves, prof = _coordinate(
                conns, procs, bounds, nprocs, cfg, plan, profile
            )
        except _Fallback as fb:
            fallback = fb.reason
            for conn in conns:
                try:
                    conn.send(("abort",))
                except (BrokenPipeError, OSError):
                    pass
    finally:
        if gc_was_enabled:
            gc.enable()
        for conn in conns:
            conn.close()
        # Bounded escalation: a worker that never reads ("abort",) — or
        # cannot, because it is SIGSTOPped — is still gone within the
        # grace budget.  SIGKILL is the only signal a stopped process
        # cannot defer.
        teardown = shutdown_workers(
            procs, grace=min(DEFAULT_TEARDOWN_GRACE, wave_deadline())
        )

    if fallback is not None:
        if fallback in ("worker-died", "worker-timeout", "worker-hung") \
                and instrument.enabled:
            instrument.metrics.count("resilience/shard_fallback", 1,
                                     op=fallback)
        result = _single(fallback)
        if teardown != "clean":
            result.extras["shard_teardown"] = teardown
        return result

    return _merge(finals, nprocs, cfg, waves, prof, recorder, plan)


def _merge(finals: list[dict], nprocs: int, cfg: SimConfig, waves: int,
           prof: dict | None, recorder: Recorder | None,
           plan: FaultPlan | None):
    from .launcher import SpmdResult

    results: list[Any] = [None] * nprocs
    clocks = [0.0] * nprocs
    busy = [0.0] * nprocs
    total_messages = 0
    total_bytes = 0
    total_matches = 0
    steps = 0
    coll_fast = 0
    coll_sim = 0
    p2p_sim = 0
    injected: dict[str, int] = {}
    failed: set[int] = set()
    for final in finals:
        for i, rank in enumerate(final["ranks"]):
            results[rank] = final["results"][i]
            clocks[rank] = final["clocks"][i]
            busy[rank] = final["busy"][i]
        total_messages += final["total_messages"]
        total_bytes += final["total_bytes"]
        total_matches += final["total_matches"]
        steps += final["steps"]
        coll_fast += final["collectives_fast"]
        coll_sim += final["collectives_simulated"]
        p2p_sim += final["p2p_simulated"]
        if final["injected"] is not None:
            for k, v in final["injected"].items():
                injected[k] = injected.get(k, 0) + v
        if final["failed"]:
            failed.update(final["failed"])
    if recorder is not None:
        snaps = [f["obs"] for f in finals if f["obs"] is not None]
        _merge_obs(recorder, snaps)
    extras: dict[str, Any] = {"shards": len(finals), "waves": waves}
    if prof is not None:
        extras["shard_profile"] = prof
        if recorder is not None:
            for key in ("barrier_wait_s", "forward_s", "gate_replay_s"):
                recorder.metrics.count(f"shard/{key}", prof[key])
    failed_ranks = tuple(sorted(failed))
    fault_summary: dict[str, int] = {}
    if plan is not None and not plan.is_empty():
        fault_summary = dict(injected)
        fault_summary["failed_ranks"] = len(failed_ranks)
    return SpmdResult(
        results=results,
        clocks=clocks,
        busy_times=busy,
        total_messages=total_messages,
        total_bytes=total_bytes,
        extras=extras,
        engine_steps=steps,
        messages_matched=total_matches,
        failed_ranks=failed_ranks,
        fault_summary=fault_summary,
        collectives_fast=coll_fast,
        collectives_simulated=coll_sim,
        p2p_fast=0,
        p2p_simulated=p2p_sim,
    )


def _merge_obs(recorder: Recorder, snaps: list[ObsData]) -> None:
    """Merge per-shard span streams into the caller's recorder in
    virtual-time order (start time, rank as tie-break).  Per-event
    content is identical to a single-process run; only the stream order
    and the scheduler park/wake bookkeeping differ (documented in
    docs/PERF.md)."""
    spans = [s for snap in snaps for s in snap.spans]
    instants = [i for snap in snaps for i in snap.instants]
    spans.sort(key=lambda s: (s.start, s.rank))
    instants.sort(key=lambda i: (i.ts, i.rank))
    for s in spans:
        recorder.span(s.rank, s.name, s.cat, s.start, s.end, s.args)
    for i in instants:
        recorder.instant(i.rank, i.name, i.cat, i.ts, i.args)
    for snap in snaps:
        recorder.metrics.merge(snap.metrics)
