"""Deterministic discrete-event engine driving rank coroutines.

Every simulated MPI rank is an ``async def`` coroutine.  The engine runs
tasks from a FIFO ready queue; a task runs until it awaits a
:class:`~repro.simmpi.futures.SimFuture` that is not yet resolved, at which
point it parks and the next ready task runs.  All cross-task interaction
(message matching, collective voting) happens through futures, so execution
order — and therefore every virtual timestamp — is fully deterministic.

Virtual time is *per rank*: each task owns a ``clock`` that only the rank's
own operations advance.  Causality between ranks is enforced at the moment a
communication operation completes (see :mod:`repro.simmpi.comm`).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Coroutine

from ..obs.instrument import NULL_INSTRUMENT, Instrument
from .errors import DeadlockError, TaskFailedError
from .futures import SimFuture
from .timing import NetworkModel, QDR_CLUSTER


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One simulated rank: a coroutine plus its virtual clock and stats."""

    __slots__ = (
        "rank",
        "coro",
        "clock",
        "busy",
        "state",
        "blocked_on",
        "result",
        "error",
        "msgs_sent",
        "bytes_sent",
        "msgs_received",
        "bytes_received",
        "collectives",
        "logical_stack",
    )

    def __init__(self, rank: int, coro: Coroutine[Any, Any, Any]) -> None:
        self.rank = rank
        self.coro = coro
        self.clock = 0.0
        #: virtual time spent actively computing/copying (vs waiting);
        #: the busy/slack split drives the DVFS energy model
        self.busy = 0.0
        self.state = TaskState.READY
        self.blocked_on: SimFuture | None = None
        self.result: Any = None
        self.error: BaseException | None = None
        self.msgs_sent = 0
        self.bytes_sent = 0
        self.msgs_received = 0
        self.bytes_received = 0
        self.collectives = 0
        # Logical call frames pushed by workloads (see RankContext.frame);
        # consumed by the tracer's stack-signature walker.
        self.logical_stack: list[str] = []

    def advance_to(self, time: float | None) -> None:
        """Move the clock forward to ``time`` (never backward).

        The skipped span is *waiting*, not work — it does not count as busy.
        """
        if time is not None and time > self.clock:
            self.clock = time

    def charge(self, dt: float) -> None:
        """Advance the clock by active work (counts toward busy time)."""
        self.clock += dt
        self.busy += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task rank={self.rank} {self.state.value} t={self.clock:.3e}>"


class Engine:
    """FIFO scheduler over rank tasks with deadlock detection."""

    def __init__(
        self,
        network: NetworkModel = QDR_CLUSTER,
        max_steps: int | None = None,
        instrument: Instrument = NULL_INSTRUMENT,
    ) -> None:
        self.network = network
        self.tasks: list[Task] = []
        self._ready: deque[Task] = deque()
        self._current: Task | None = None
        self._steps = 0
        self._max_steps = max_steps
        # Global communication counters (all comms, all ranks).
        self.total_messages = 0
        self.total_bytes = 0
        self._next_comm_id = 0
        #: observability event bus; the default is the zero-cost no-op, and
        #: no emission ever advances a virtual clock, so instrumented and
        #: uninstrumented runs are bit-identical in virtual time
        self.instrument = instrument

    # -- task management ---------------------------------------------------

    def spawn(self, rank: int, coro: Coroutine[Any, Any, Any]) -> Task:
        task = Task(rank, coro)
        self.adopt(task)
        return task

    def adopt(self, task: Task) -> None:
        """Register an externally constructed task and make it runnable."""
        self.tasks.append(task)
        self._ready.append(task)

    def alloc_comm_id(self) -> int:
        self._next_comm_id += 1
        return self._next_comm_id

    @property
    def current_task(self) -> Task:
        if self._current is None:
            raise RuntimeError("no task is currently running")
        return self._current

    # -- scheduling --------------------------------------------------------

    def _wake(self, task: Task, fut: SimFuture) -> None:
        assert task.state == TaskState.BLOCKED
        task.state = TaskState.READY
        task.blocked_on = None
        self._ready.append(task)
        ins = self.instrument
        if ins.enabled:
            ins.instant(task.rank, "wake", "sched", task.clock,
                        {"on": fut.label})

    def _park(self, task: Task, fut: SimFuture) -> None:
        task.state = TaskState.BLOCKED
        task.blocked_on = fut
        fut.add_done_callback(lambda _f, t=task: self._wake(t, _f))

    def run(self) -> None:
        """Drive all tasks to completion.

        Raises :class:`TaskFailedError` if any rank raised, and
        :class:`DeadlockError` if unfinished tasks remain with an empty ready
        queue (classic message-matching deadlock).
        """
        ins = self.instrument
        while self._ready:
            task = self._ready.popleft()
            if task.state != TaskState.READY:  # pragma: no cover - invariant
                continue
            task.state = TaskState.RUNNING
            self._current = task
            stretch_start = task.clock
            try:
                while True:
                    self._steps += 1
                    if self._max_steps is not None and self._steps > self._max_steps:
                        raise RuntimeError(
                            f"engine exceeded max_steps={self._max_steps}"
                        )
                    fut = task.coro.send(None)
                    if not isinstance(fut, SimFuture):
                        raise TypeError(
                            f"rank {task.rank} yielded {type(fut).__name__}; "
                            "only SimFuture awaitables are supported"
                        )
                    if fut.done:
                        # Resolved while we were getting here; loop and let
                        # the coroutine pick the value up immediately.
                        continue
                    self._park(task, fut)
                    if ins.enabled:
                        ins.span(task.rank, "run", "sched", stretch_start,
                                 task.clock, {"until": "park"})
                        ins.instant(task.rank, "park", "sched", task.clock,
                                    {"on": fut.label})
                    break
            except StopIteration as stop:
                task.state = TaskState.DONE
                task.result = stop.value
                if ins.enabled:
                    ins.span(task.rank, "run", "sched", stretch_start,
                             task.clock, {"until": "done"})
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                task.state = TaskState.FAILED
                task.error = exc
                self._current = None
                self._close_unfinished()
                raise TaskFailedError(task.rank, exc) from exc
            finally:
                if self._current is task:
                    self._current = None

        unfinished = [t for t in self.tasks if t.state not in (TaskState.DONE,)]
        if unfinished:
            detail = [
                f"rank {t.rank}: blocked on "
                f"{(t.blocked_on.label if t.blocked_on else '<not started>')!s}"
                for t in unfinished
            ]
            raise DeadlockError(detail)

    def _close_unfinished(self) -> None:
        """Abandon remaining tasks after a fatal error (suppresses the
        'coroutine was never awaited' warnings for ranks that never ran)."""
        for t in self.tasks:
            if t.state in (TaskState.READY, TaskState.BLOCKED) and t.coro is not None:
                t.coro.close()
                t.state = TaskState.FAILED

    # -- results -----------------------------------------------------------

    def results(self) -> list[Any]:
        """Per-rank return values (tasks sorted by rank)."""
        return [t.result for t in sorted(self.tasks, key=lambda t: t.rank)]

    def clocks(self) -> list[float]:
        """Final virtual clocks per rank."""
        return [t.clock for t in sorted(self.tasks, key=lambda t: t.rank)]

    def busy_times(self) -> list[float]:
        """Per-rank active (non-waiting) virtual time."""
        return [t.busy for t in sorted(self.tasks, key=lambda t: t.rank)]

    def max_clock(self) -> float:
        return max((t.clock for t in self.tasks), default=0.0)
