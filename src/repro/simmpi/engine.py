"""Deterministic discrete-event engine driving rank coroutines.

Every simulated MPI rank is an ``async def`` coroutine.  The engine runs
tasks from a FIFO ready queue; a task runs until it awaits a
:class:`~repro.simmpi.futures.SimFuture` that is not yet resolved, at which
point it parks and the next ready task runs.  All cross-task interaction
(message matching, collective voting) happens through futures, so execution
order — and therefore every virtual timestamp — is fully deterministic.

Virtual time is *per rank*: each task owns a ``clock`` that only the rank's
own operations advance.  Causality between ranks is enforced at the moment a
communication operation completes (see :mod:`repro.simmpi.comm`).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Coroutine

from ..faults.injector import LOST, NULL_INJECTOR, FaultInjector
from ..obs.instrument import NULL_INSTRUMENT, Instrument
from .errors import (
    DeadlockError,
    EngineLimitError,
    RankCrashedError,
    TaskFailedError,
)
from .futures import SimFuture
from .timing import NetworkModel, QDR_CLUSTER


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One simulated rank: a coroutine plus its virtual clock and stats."""

    __slots__ = (
        "rank",
        "coro",
        "clock",
        "busy",
        "state",
        "blocked_on",
        "result",
        "error",
        "msgs_sent",
        "bytes_sent",
        "msgs_received",
        "bytes_received",
        "collectives",
        "logical_stack",
        "gate_wake",
    )

    def __init__(self, rank: int, coro: Coroutine[Any, Any, Any]) -> None:
        self.rank = rank
        self.coro = coro
        self.clock = 0.0
        #: virtual time spent actively computing/copying (vs waiting);
        #: the busy/slack split drives the DVFS energy model
        self.busy = 0.0
        self.state = TaskState.READY
        self.blocked_on: SimFuture | None = None
        self.result: Any = None
        self.error: BaseException | None = None
        self.msgs_sent = 0
        self.bytes_sent = 0
        self.msgs_received = 0
        self.bytes_received = 0
        self.collectives = 0
        # Logical call frames pushed by workloads (see RankContext.frame);
        # consumed by the tracer's stack-signature walker.
        self.logical_stack: list[str] = []
        #: set when this task was woken by a macro-collective gate; its next
        #: dispatch is bookkept as part of the collective's bulk advance
        #: rather than as an individual scheduler step
        self.gate_wake = False

    def advance_to(self, time: float | None) -> None:
        """Move the clock forward to ``time`` (never backward).

        The skipped span is *waiting*, not work — it does not count as busy.
        """
        if time is not None and time > self.clock:
            self.clock = time

    def charge(self, dt: float) -> None:
        """Advance the clock by active work (counts toward busy time)."""
        self.clock += dt
        self.busy += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task rank={self.rank} {self.state.value} t={self.clock:.3e}>"


class Engine:
    """FIFO scheduler over rank tasks with deadlock detection."""

    def __init__(
        self,
        network: NetworkModel = QDR_CLUSTER,
        max_steps: int | None = None,
        instrument: Instrument = NULL_INSTRUMENT,
        faults: FaultInjector = NULL_INJECTOR,
        matching: str = "indexed",
        collectives: str = "fast",
        p2p: str = "fast",
    ) -> None:
        if matching not in ("indexed", "linear"):
            raise ValueError(
                f"matching must be 'indexed' or 'linear', got {matching!r}"
            )
        if collectives not in ("fast", "simulated"):
            raise ValueError(
                "collectives must be 'fast' or 'simulated', "
                f"got {collectives!r}"
            )
        if p2p not in ("fast", "simulated"):
            raise ValueError(
                f"p2p must be 'fast' or 'simulated', got {p2p!r}"
            )
        self.network = network
        #: mailbox implementation for every CommContext built on this engine:
        #: "indexed" (per-(src, tag) lanes, the default) or "linear" (the
        #: reference FIFO-scan oracle used by equivalence tests)
        self.matching = matching
        #: collective execution policy: "fast" (closed-form macro
        #: collectives where eligible, per-message fallback otherwise) or
        #: "simulated" (always per-message).  Both are bit-identical in
        #: virtual time and results; "fast" is the default.
        self.collectives = collectives
        #: declared-p2p execution policy: "fast" (macro gate replay of
        #: eligible NeighborPattern exchanges, per-message fallback
        #: otherwise) or "simulated" (always per-message).  Both are
        #: bit-identical in virtual time; "fast" is the default.
        self.p2p = p2p
        #: per-rank collective calls served by the closed-form fast path /
        #: routed to the message-level algorithms
        self.collectives_fast = 0
        self.collectives_simulated = 0
        #: per-rank declared-pattern exchanges resolved by the p2p gate /
        #: driven through the message-level mailbox path
        self.p2p_fast = 0
        self.p2p_simulated = 0
        self.tasks: list[Task] = []
        self._sorted_tasks: list[Task] | None = None
        self._ready: deque[Task] = deque()
        self._current: Task | None = None
        self._steps = 0
        self._resumes = 0
        self._in_wave = False
        self._max_steps = max_steps
        # Global communication counters (all comms, all ranks).
        self.total_messages = 0
        self.total_bytes = 0
        #: point-to-point matches actually fired (send paired with receive)
        self.total_matches = 0
        self._next_comm_id = 0
        #: observability event bus; the default is the zero-cost no-op, and
        #: no emission ever advances a virtual clock, so instrumented and
        #: uninstrumented runs are bit-identical in virtual time
        self.instrument = instrument
        #: fault-injection oracle; the default (and any empty plan) is
        #: inactive, making every fault hook a single attribute check
        self.faults = faults
        #: communicator contexts, registered at construction so a crash can
        #: purge the dead rank's pending receives from every mailbox
        self._contexts: list[Any] = []

    @property
    def failed_ranks(self) -> set[int]:
        """World ranks parked as FAILED (crashed or raised under faults)."""
        return self.faults.failed

    # -- task management ---------------------------------------------------

    def spawn(self, rank: int, coro: Coroutine[Any, Any, Any]) -> Task:
        task = Task(rank, coro)
        self.adopt(task)
        return task

    def adopt(self, task: Task) -> None:
        """Register an externally constructed task and make it runnable."""
        self.tasks.append(task)
        self._sorted_tasks = None
        self._ready.append(task)

    @property
    def steps(self) -> int:
        """Scheduler work units executed so far.

        Every coroutine resume counts as one step *except* the dispatch of
        a task woken by a macro-collective bulk advance: the whole wave was
        computed in closed form during the waking rank's step, so the
        O(1) re-entries it queues are accounted to that step rather than
        inflating the count with P-1 bookkeeping resumes.  The raw resume
        count (which the ``max_steps`` budget is enforced against) stays
        available as :attr:`resumes`.
        """
        return self._steps

    @property
    def resumes(self) -> int:
        """Raw coroutine resume count (every ``coro.send``, no exclusions);
        the ``max_steps`` runaway guard is enforced against this."""
        return self._resumes

    def alloc_comm_id(self) -> int:
        self._next_comm_id += 1
        return self._next_comm_id

    @property
    def current_task(self) -> Task:
        if self._current is None:
            raise RuntimeError("no task is currently running")
        return self._current

    # -- scheduling --------------------------------------------------------

    def _wake(self, task: Task, fut: SimFuture) -> None:
        if task.state is not TaskState.BLOCKED:
            # A message can still match a rank that crashed (or was
            # abandoned) while its receive was pending; there is nobody
            # left to wake.
            return
        task.state = TaskState.READY
        task.blocked_on = None
        if self._in_wave:
            task.gate_wake = True
        self._ready.append(task)
        ins = self.instrument
        if ins.enabled:
            ins.instant(task.rank, "wake", "sched", task.clock,
                        {"on": fut.label})

    def wave_resolve(self, resolutions) -> None:
        """Resolve ``(future, value, time)`` triples as one *bulk advance*.

        Used by the macro-collective fast path: every task woken here is
        flagged so its re-entry dispatch is charged to the waking step (see
        :attr:`steps`).  Wakes still go through the ordinary ready queue, so
        crash checks, instrumentation and exception handling are untouched.
        Futures already resolved externally (a fault-timeout release) are
        skipped.
        """
        self._in_wave = True
        try:
            for fut, value, time in resolutions:
                fut.try_resolve(value, time=time)
        finally:
            self._in_wave = False

    def _park(self, task: Task, fut: SimFuture) -> None:
        task.state = TaskState.BLOCKED
        task.blocked_on = fut
        fut.add_done_callback(lambda _f, t=task: self._wake(t, _f))

    def run(self) -> None:
        """Drive all tasks to completion.

        Without fault injection this fail-fasts: :class:`TaskFailedError`
        if any rank raised, :class:`DeadlockError` if unfinished tasks
        remain with an empty ready queue (classic message-matching
        deadlock), :class:`EngineLimitError` — attributed to no rank — when
        the ``max_steps`` budget trips.

        With an active :class:`~repro.faults.FaultInjector` the engine has
        *partial-failure semantics*: a crashed (or raising) rank parks as
        ``FAILED`` while its siblings keep running, and operations orphaned
        by the failure are released with :data:`~repro.faults.LOST` after
        the plan's virtual-time ``op_timeout`` instead of deadlocking.
        """
        inj = self.faults
        while True:
            self.run_ready()
            if not (inj.active and self._release_one_orphan()):
                break

        unfinished = [
            t for t in self.tasks
            if t.state not in (TaskState.DONE, TaskState.FAILED)
        ]
        if unfinished:
            raise DeadlockError(self._deadlock_detail(unfinished))

    def run_ready(self) -> None:
        """Drive the ready queue until it drains (one conservative wave).

        This is :meth:`run` without the orphan-release loop and the
        deadlock check: the sharded engine (see
        :mod:`repro.simmpi.sharded`) calls it once per wave barrier and
        resolves cross-shard futures between calls, while :meth:`run`
        wraps it for the single-process case.  Error semantics are
        identical to :meth:`run`.
        """
        ins = self.instrument
        inj = self.faults
        while self._ready:
            task = self._ready.popleft()
            if task.state != TaskState.READY:  # pragma: no cover - invariant
                continue
            if inj.active and inj.crash_due(task.rank, task.clock):
                self._crash(task)
                continue
            task.state = TaskState.RUNNING
            self._current = task
            stretch_start = task.clock
            skip_count = task.gate_wake
            task.gate_wake = False
            try:
                while True:
                    self._resumes += 1
                    if skip_count:
                        skip_count = False
                    else:
                        self._steps += 1
                    if (
                        self._max_steps is not None
                        and self._resumes > self._max_steps
                    ):
                        raise EngineLimitError(
                            self._max_steps, self._resumes
                        )
                    fut = task.coro.send(None)
                    if not isinstance(fut, SimFuture):
                        raise TypeError(
                            f"rank {task.rank} yielded {type(fut).__name__}; "
                            "only SimFuture awaitables are supported"
                        )
                    if fut.done:
                        # Resolved while we were getting here; loop and let
                        # the coroutine pick the value up immediately.
                        continue
                    self._park(task, fut)
                    if ins.enabled:
                        ins.span(task.rank, "run", "sched", stretch_start,
                                 task.clock, {"until": "park"})
                        ins.instant(task.rank, "park", "sched", task.clock,
                                    {"on": fut.label})
                    break
            except StopIteration as stop:
                task.state = TaskState.DONE
                task.result = stop.value
                if ins.enabled:
                    ins.span(task.rank, "run", "sched", stretch_start,
                             task.clock, {"until": "done"})
            except EngineLimitError:
                # The step budget is a property of the run, not of the
                # rank that happened to be scheduled when it tripped:
                # do not wrap, do not blame.
                task.state = TaskState.READY
                self._current = None
                self._close_unfinished()
                raise
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                task.state = TaskState.FAILED
                task.error = exc
                self._current = None
                if inj.active:
                    # Partial failure: record the casualty, keep the
                    # survivors running; orphaned peers are released by
                    # the op_timeout below.
                    inj.failed.add(task.rank)
                    self._purge_pending(task)
                    if ins.enabled:
                        ins.instant(task.rank, "rank_failed", "fault",
                                    task.clock, {"error": repr(exc)})
                        ins.metrics.count("fault/rank_failures", 1,
                                          rank=task.rank, t=task.clock)
                    continue
                self._close_unfinished()
                raise TaskFailedError(task.rank, exc) from exc
            finally:
                if self._current is task:
                    self._current = None


    # -- fault handling ----------------------------------------------------

    def _crash(self, task: Task) -> None:
        """Park ``task`` as FAILED per the fault plan; siblings keep going."""
        inj = self.faults
        task.state = TaskState.FAILED
        task.error = RankCrashedError(task.rank, task.clock)
        if task.coro is not None:
            task.coro.close()
        inj.mark_failed(task.rank)
        self._purge_pending(task)
        ins = self.instrument
        if ins.enabled:
            ins.instant(task.rank, "crash", "fault", task.clock,
                        {"scheduled_at": inj.crash_time(task.rank)})
            ins.metrics.count("fault/crashes", 1, rank=task.rank,
                              t=task.clock)

    def _purge_pending(self, task: Task) -> None:
        """Sever the dead rank from every communicator it participates in:

        * its own posted receives are dropped (later sends must not match a
          receiver that no longer exists);
        * live peers' pending receives *naming it as the source* are
          released with ``LOST`` — nothing can arrive from a dead rank, and
          all its pre-crash sends were structurally delivered at post time,
          so the match state is final;
        * rendezvous offers parked in its mailbox have their senders
          released (the payload goes into the void, like the dead-dest
          send path).

        Operations posted *after* the crash are handled at post time by the
        dead-source/dead-dest checks in :mod:`repro.simmpi.comm`; this
        sweep covers everything that was already in flight.  Membership and
        receive lookup go through the precomputed ``local_of`` map and the
        indexed pending lanes, so the sweep costs O(in-flight operations
        naming the dead rank), not O(P · mailboxes).
        """
        for ctx in self._contexts:
            local = ctx.local_of.get(task.rank)
            if local is None:
                continue
            dead_mbox = ctx._mailboxes[local]
            for mbox in ctx._mailboxes.values():
                if mbox is dead_mbox:
                    continue
                for p in mbox.release_pending_from(local):
                    p.future.resolve(LOST, time=p.task.clock)
            # The dead rank's own posted receives vanish with it: later
            # sends must not match a receiver that no longer exists.
            dead_mbox.clear_pending()
            for msg in dead_mbox.drain_messages():
                if msg.sender_future is not None and not msg.sender_future.done:
                    t = (
                        msg.sender_task.clock
                        if msg.sender_task is not None
                        else None
                    )
                    # Only rendezvous offers still have a live sender future
                    # (eager sends complete at post time).  The payload is
                    # gone with the receiver, so the sender observes LOST —
                    # the same hole sentinel every other fault release uses —
                    # rather than a None indistinguishable from delivery.
                    msg.sender_future.resolve(LOST, time=t)

    def _release_one_orphan(self) -> bool:
        """Virtual-time timeout: when no task can run but blocked tasks
        remain, release the one blocked on the earliest-posted operation
        (ties broken by rank) with ``LOST`` at ``clock + op_timeout``.
        Returns True when something was released.

        This is the bounded-retry backstop that guarantees fault-injected
        runs always complete: every release makes progress, so the run
        terminates as long as the rank programs do.
        """
        victim = self._orphan_candidate()
        if victim is None:
            return False
        self.release_orphan(victim)
        return True

    @staticmethod
    def _orphan_key(t: Task) -> tuple[float, int]:
        # Earliest *posted* operation first — timeout order follows
        # virtual-time causality, with rank only as the deterministic
        # tie-break.  Futures without post metadata (synthetic waits)
        # fall back to the task clock.
        fut = t.blocked_on
        post = fut.post_time if fut is not None and fut.post_time is not None else t.clock
        return (post, t.rank)

    def _orphan_candidate(self) -> Task | None:
        """The task the next op-timeout would release, or None.  Exposed
        separately so the sharded coordinator can arbitrate the *global*
        minimum across shards before any worker releases anything."""
        blocked = [t for t in self.tasks if t.state is TaskState.BLOCKED]
        if not blocked:
            return None
        return min(blocked, key=self._orphan_key)

    def release_orphan(self, victim: Task) -> None:
        """Release ``victim`` with ``LOST`` at ``clock + op_timeout``."""
        fut = victim.blocked_on
        assert fut is not None and not fut.done
        release_t = victim.clock + self.faults.plan.op_timeout
        self.faults.injected["timeout"] += 1
        ins = self.instrument
        if ins.enabled:
            ins.instant(victim.rank, "op_timeout", "fault", release_t,
                        {"orphaned": fut.label,
                         "failed_ranks": sorted(self.faults.failed)})
            ins.metrics.count("fault/timeouts", 1, rank=victim.rank,
                              t=release_t)
        fut.resolve(LOST, time=release_t)

    def _deadlock_detail(self, unfinished: list[Task]) -> list[str]:
        """One line per stuck rank; ops orphaned by a crashed peer say so.

        Attribution reads the structured ``SimFuture`` metadata (kind and
        world-rank peer), never the label text: substring-matching rank
        digits against a formatted label misfires once ranks reach double
        digits (``src=1`` is a prefix of ``src=12``) and breaks silently
        whenever the label format drifts.
        """
        failed = self.faults.failed if self.faults.active else set()
        detail = []
        for t in unfinished:
            fut = t.blocked_on
            label = fut.label if fut is not None else "<not started>"
            peer: int | None = None
            if fut is not None and failed:
                if fut.kind == "irecv":
                    peer = fut.src  # None for ANY_SOURCE: unattributable
                elif fut.kind == "isend":
                    peer = fut.dest
            if peer is not None and peer in failed:
                label += f" [orphaned by crash of rank {peer}]"
            detail.append(f"rank {t.rank}: blocked on {label}")
        return detail

    def _close_unfinished(self) -> None:
        """Abandon remaining tasks after a fatal error (suppresses the
        'coroutine was never awaited' warnings for ranks that never ran)."""
        for t in self.tasks:
            if t.state in (TaskState.READY, TaskState.BLOCKED) and t.coro is not None:
                t.coro.close()
                t.state = TaskState.FAILED

    # -- results -----------------------------------------------------------

    def _by_rank(self) -> list[Task]:
        # Sorted once and cached (invalidated by adopt): the per-call sort
        # made every results()/clocks()/busy_times() lookup O(P log P).
        if self._sorted_tasks is None:
            self._sorted_tasks = sorted(self.tasks, key=lambda t: t.rank)
        return self._sorted_tasks

    def results(self) -> list[Any]:
        """Per-rank return values (tasks sorted by rank)."""
        return [t.result for t in self._by_rank()]

    def clocks(self) -> list[float]:
        """Final virtual clocks per rank."""
        return [t.clock for t in self._by_rank()]

    def busy_times(self) -> list[float]:
        """Per-rank active (non-waiting) virtual time."""
        return [t.busy for t in self._by_rank()]

    def max_clock(self) -> float:
        return max((t.clock for t in self.tasks), default=0.0)
