"""Exception hierarchy for the simulated MPI runtime.

The simulator is deterministic, so every error here indicates a genuine
program bug (mismatched collectives, deadlock, bad arguments) rather than a
transient runtime condition.
"""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all simulated-MPI errors."""


class DeadlockError(SimMPIError):
    """Raised when no task can make progress but unfinished tasks remain.

    The message lists every blocked rank and the operation it is blocked on,
    mirroring the diagnostics a real MPI debugger would produce.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = "\n  ".join(blocked) if blocked else "(no detail)"
        super().__init__(f"deadlock: no runnable task; blocked ranks:\n  {detail}")

    def __reduce__(self):
        return (type(self), (self.blocked,))


class CommunicatorError(SimMPIError):
    """Invalid communicator usage (rank out of range, bad color/key, ...)."""


class MatchingError(SimMPIError):
    """Invalid message-matching arguments (bad tag, bad source...)."""


class TaskFailedError(SimMPIError):
    """A rank's program raised an exception; wraps the original error."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")

    def __reduce__(self):
        # Exceptions with non-args __init__ signatures don't survive
        # pickling by default — and these cross the worker-pool boundary,
        # where an unpicklable exception masquerades as a pool crash.
        return (type(self), (self.rank, self.original))


class CollectiveMismatchError(SimMPIError):
    """Ranks disagreed on a collective's parameters (e.g. different roots)."""


class PatternMismatchError(SimMPIError):
    """Ranks joined one declared-p2p exchange with different patterns.

    ``Communicator.exchange`` is collective over the communicator; every
    rank of one instance must present a :class:`~.patterns.NeighborPattern`
    with the same content key (name, size, per-rank op scripts)."""


class EngineLimitError(SimMPIError):
    """The engine exceeded a configured resource limit (``max_steps``).

    Deliberately *not* a :class:`TaskFailedError`: hitting the step budget
    is a property of the whole run (or of the budget), not the fault of
    whichever rank happened to be scheduled when the counter tripped.
    """

    def __init__(self, limit: int, steps: int):
        self.limit = limit
        self.steps = steps
        super().__init__(
            f"engine exceeded max_steps={limit} (after {steps} scheduler "
            "steps); no rank is at fault — raise the budget or check for a "
            "livelock"
        )

    def __reduce__(self):
        return (type(self), (self.limit, self.steps))


class RankCrashedError(SimMPIError):
    """A rank was killed by an injected :class:`~repro.faults.CrashFault`.

    Recorded as the crashed task's ``error``; never raised into sibling
    ranks — under fault injection the engine keeps scheduling survivors.
    """

    def __init__(self, rank: int, time: float):
        self.rank = rank
        self.time = time
        super().__init__(f"rank {rank} crashed at t={time:.6g} (injected fault)")

    def __reduce__(self):
        return (type(self), (self.rank, self.time))
