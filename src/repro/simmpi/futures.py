"""Awaitable primitives for the deterministic virtual-time scheduler.

A :class:`SimFuture` is the only thing a rank coroutine ever yields to the
engine.  It carries both a value and a *virtual completion time*; when the
engine resumes the waiting task it advances the task's clock to
``max(task.clock, future.time)``, which is how causality (e.g. a receive
finishing no earlier than the matching send's arrival) propagates through
the simulation.
"""

from __future__ import annotations

from typing import Any, Callable, Generator


class SimFuture:
    """A one-shot future resolved by the engine or by another task.

    Attributes:
        done: whether :meth:`resolve` has been called.
        value: payload delivered to the awaiter.
        time: virtual time at which the awaited operation completed.  ``None``
            means "no time constraint" (the awaiter keeps its own clock).
        label: human-readable description used in deadlock reports.
    """

    __slots__ = ("done", "value", "time", "label", "_callbacks")

    def __init__(self, label: str = "") -> None:
        self.done = False
        self.value: Any = None
        self.time: float | None = None
        self.label = label
        self._callbacks: list[Callable[[SimFuture], None]] = []

    def resolve(self, value: Any = None, time: float | None = None) -> None:
        """Mark the future complete, waking any awaiting task."""
        if self.done:
            raise RuntimeError(f"future {self.label!r} resolved twice")
        self.done = True
        self.value = value
        self.time = time
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def try_resolve(self, value: Any = None, time: float | None = None) -> bool:
        """Resolve unless already done; returns whether this call won.

        Fault injection creates benign races on a single future — a
        virtual-time timeout can release an operation that a late message
        later tries to complete for real — so racing resolvers use this
        instead of :meth:`resolve` (which treats double resolution as a
        programming error).
        """
        if self.done:
            return False
        self.resolve(value, time)
        return True

    def add_done_callback(self, cb: Callable[[SimFuture], None]) -> None:
        if self.done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self.done:
            yield self
        if not self.done:  # pragma: no cover - engine invariant
            raise RuntimeError(f"future {self.label!r} resumed before resolution")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<SimFuture {self.label!r} {state}>"


async def gather(*awaitables: Any) -> list[Any]:
    """Await several awaitables sequentially, returning their values.

    In the simulator awaiting in sequence is equivalent to true concurrent
    completion *within one task* because each await simply advances the
    task's clock to the max of the completion times.
    """
    return [await aw for aw in awaitables]
