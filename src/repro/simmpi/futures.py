"""Awaitable primitives for the deterministic virtual-time scheduler.

A :class:`SimFuture` is the only thing a rank coroutine ever yields to the
engine.  It carries both a value and a *virtual completion time*; when the
engine resumes the waiting task it advances the task's clock to
``max(task.clock, future.time)``, which is how causality (e.g. a receive
finishing no earlier than the matching send's arrival) propagates through
the simulation.

Point-to-point futures additionally carry *structured metadata* —
``kind`` (``"isend"``/``"irecv"``), world-rank ``src``/``dest``, ``tag``,
communicator id and virtual ``post_time``.  Diagnostics (deadlock reports,
orphan attribution, op-timeout victim selection) read these fields directly
instead of parsing a label string, and the human-readable label is built
lazily from them so the hot path never formats a string.
"""

from __future__ import annotations

from typing import Any, Callable, Generator


class SimFuture:
    """A one-shot future resolved by the engine or by another task.

    Attributes:
        done: whether :meth:`resolve` has been called.
        value: payload delivered to the awaiter.
        time: virtual time at which the awaited operation completed.  ``None``
            means "no time constraint" (the awaiter keeps its own clock).
        kind: ``"isend"`` / ``"irecv"`` for point-to-point futures, else None.
        src: world rank of the sender (``None`` for an ANY_SOURCE receive).
        dest: world rank of the destination / receiver.
        tag: message tag (``-1`` for an ANY_TAG receive).
        comm: communicator context id.
        post_time: virtual time at which the operation was posted.
        label: human-readable description used in deadlock reports; derived
            from the structured metadata unless set explicitly.
    """

    __slots__ = (
        "done",
        "value",
        "time",
        "kind",
        "src",
        "dest",
        "tag",
        "comm",
        "post_time",
        "busy_charge",
        "_label",
        "_callbacks",
    )

    def __init__(
        self,
        label: str = "",
        *,
        kind: str | None = None,
        src: int | None = None,
        dest: int | None = None,
        tag: int | None = None,
        comm: int | None = None,
        post_time: float | None = None,
    ) -> None:
        self.done = False
        self.value: Any = None
        self.time: float | None = None
        self.kind = kind
        self.src = src
        self.dest = dest
        self.tag = tag
        self.comm = comm
        self.post_time = post_time
        # Busy time the owning task must absorb when it waits on this
        # future (a rendezvous sender's payload-streaming cost).  Charged
        # at the wait so every rank accumulates busy in program order —
        # which is what lets the collective fast path replay it bitwise.
        self.busy_charge = 0.0
        self._label = label
        # Lazily allocated: most futures get exactly one callback (the
        # parked task's wake) or none, so the empty list per future was
        # pure allocation overhead at large P.
        self._callbacks: list[Callable[[SimFuture], None]] | None = None

    @property
    def label(self) -> str:
        if self._label:
            return self._label
        if self.kind == "isend":
            return (
                f"isend {self.src}->{self.dest} tag={self.tag} "
                f"comm={self.comm}"
            )
        if self.kind == "irecv":
            src = -1 if self.src is None else self.src
            return (
                f"irecv src={src} rank={self.dest} tag={self.tag} "
                f"comm={self.comm}"
            )
        if self.kind == "coll":
            # A macro-collective gate future; ``tag`` carries the
            # communicator-local collective sequence number.
            return f"coll rank={self.dest} seq={self.tag} comm={self.comm}"
        if self.kind == "p2p":
            # A declared-pattern gate future; ``tag`` carries the
            # communicator-local exchange sequence number.
            return f"p2p-gate rank={self.dest} seq={self.tag} comm={self.comm}"
        return self._label

    @label.setter
    def label(self, value: str) -> None:
        self._label = value

    def resolve(self, value: Any = None, time: float | None = None) -> None:
        """Mark the future complete, waking any awaiting task."""
        if self.done:
            raise RuntimeError(f"future {self.label!r} resolved twice")
        self.done = True
        self.value = value
        self.time = time
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def try_resolve(self, value: Any = None, time: float | None = None) -> bool:
        """Resolve unless already done; returns whether this call won.

        Fault injection creates benign races on a single future — a
        virtual-time timeout can release an operation that a late message
        later tries to complete for real — so racing resolvers use this
        instead of :meth:`resolve` (which treats double resolution as a
        programming error).
        """
        if self.done:
            return False
        self.resolve(value, time)
        return True

    def add_done_callback(self, cb: Callable[[SimFuture], None]) -> None:
        if self.done:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self.done:
            yield self
        if not self.done:  # pragma: no cover - engine invariant
            raise RuntimeError(f"future {self.label!r} resumed before resolution")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<SimFuture {self.label!r} {state}>"


async def gather(*awaitables: Any) -> list[Any]:
    """Await several awaitables sequentially, returning their values.

    In the simulator awaiting in sequence is equivalent to true concurrent
    completion *within one task* because each await simply advances the
    task's clock to the max of the completion times.
    """
    return [await aw for aw in awaitables]
