"""Process topologies: radix trees for reductions, Cartesian grids for
workloads.

ScalaTrace performs its inter-node trace compression as a reduction over a
*radix tree rooted at rank 0*; Chameleon reuses the same tree restricted to
the elected lead ranks.  The helpers here define that tree shape once so the
tracer, the clustering layer and the tests all agree on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence


class RadixTree:
    """A k-ary tree over ``0..size-1`` rooted at 0 (heap numbering).

    ``parent(r) = (r - 1) // k`` and ``children(r) = k*r+1 .. k*r+k``; with
    ``k == 2`` this is the classic binary radix tree used by ScalaTrace's
    reduction.  The tree can also be built over an arbitrary *ordered member
    list* (Chameleon's Top-K leads): positions in the list follow heap
    numbering and are mapped back to real ranks.
    """

    def __init__(self, members: Sequence[int] | int, arity: int = 2) -> None:
        if arity < 2:
            raise ValueError("arity must be >= 2")
        if isinstance(members, int):
            if members <= 0:
                raise ValueError("tree must have at least one member")
            members = range(members)
        self._members = list(members)
        if len(self._members) == 0:
            raise ValueError("tree must have at least one member")
        if len(set(self._members)) != len(self._members):
            raise ValueError("duplicate ranks in tree member list")
        self.arity = arity
        self._pos = {rank: i for i, rank in enumerate(self._members)}

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def root(self) -> int:
        """The real rank acting as the tree root."""
        return self._members[0]

    def __contains__(self, rank: int) -> bool:
        return rank in self._pos

    def members(self) -> list[int]:
        return list(self._members)

    def parent(self, rank: int) -> int | None:
        """Real rank of the parent, or ``None`` for the root."""
        pos = self._pos[rank]
        if pos == 0:
            return None
        return self._members[(pos - 1) // self.arity]

    def children(self, rank: int) -> list[int]:
        """Real ranks of the children (possibly empty)."""
        pos = self._pos[rank]
        first = self.arity * pos + 1
        return [
            self._members[i]
            for i in range(first, min(first + self.arity, len(self._members)))
        ]

    def depth(self, rank: int) -> int:
        """Number of edges between ``rank`` and the root."""
        d = 0
        pos = self._pos[rank]
        while pos > 0:
            pos = (pos - 1) // self.arity
            d += 1
        return d

    def height(self) -> int:
        """Maximum depth over all members (0 for a singleton tree)."""
        return self.depth(self._members[-1])

    def levels(self) -> Iterator[list[int]]:
        """Yield members level by level from the leaves up to the root.

        This is the order a tree reduction consumes nodes in: every node in
        level *d* has all of its children in levels > *d* already merged.
        """
        by_depth: dict[int, list[int]] = {}
        for r in self._members:
            by_depth.setdefault(self.depth(r), []).append(r)
        for d in sorted(by_depth, reverse=True):
            yield by_depth[d]


@dataclass(frozen=True)
class Grid2D:
    """A 2-D Cartesian process grid (row-major rank ordering)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def coords(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        return divmod(rank, self.cols)

    def rank(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coords ({row},{col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def neighbor(self, rank: int, drow: int, dcol: int) -> int | None:
        """Rank of the neighbor at the given offset, or None off the edge."""
        row, col = self.coords(rank)
        nrow, ncol = row + drow, col + dcol
        if 0 <= nrow < self.rows and 0 <= ncol < self.cols:
            return self.rank(nrow, ncol)
        return None

    def north(self, rank: int) -> int | None:
        return self.neighbor(rank, -1, 0)

    def south(self, rank: int) -> int | None:
        return self.neighbor(rank, 1, 0)

    def west(self, rank: int) -> int | None:
        return self.neighbor(rank, 0, -1)

    def east(self, rank: int) -> int | None:
        return self.neighbor(rank, 0, 1)


@dataclass(frozen=True)
class Grid3D:
    """A 3-D Cartesian process grid (x fastest, then y, then z)."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0 or self.nz <= 0:
            raise ValueError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.nx * self.ny * self.nz

    def coords(self, rank: int) -> tuple[int, int, int]:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        z, rem = divmod(rank, self.nx * self.ny)
        y, x = divmod(rem, self.nx)
        return (x, y, z)

    def rank(self, x: int, y: int, z: int) -> int:
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            raise ValueError(
                f"coords ({x},{y},{z}) outside {self.nx}x{self.ny}x{self.nz}"
            )
        return (z * self.ny + y) * self.nx + x

    def neighbor(self, rank: int, dx: int, dy: int, dz: int) -> int | None:
        """Rank at the given offset, or None past the boundary."""
        x, y, z = self.coords(rank)
        nx, ny, nz = x + dx, y + dy, z + dz
        if 0 <= nx < self.nx and 0 <= ny < self.ny and 0 <= nz < self.nz:
            return self.rank(nx, ny, nz)
        return None

    def face_neighbors(self, rank: int) -> list[int]:
        """The up-to-6 face-adjacent ranks."""
        out = []
        for d in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1),
                  (0, 0, -1)):
            n = self.neighbor(rank, *d)
            if n is not None:
                out.append(n)
        return out


def cube_grid(size: int) -> Grid3D:
    """The k x k x k grid for a perfect-cube ``size`` (LULESH requires it)."""
    k = round(size ** (1 / 3))
    for candidate in (k - 1, k, k + 1):
        if candidate > 0 and candidate**3 == size:
            return Grid3D(candidate, candidate, candidate)
    raise ValueError(f"size {size} is not a perfect cube")


def square_grid(size: int) -> Grid2D:
    """The nearest-to-square 2-D factorization of ``size`` ranks.

    NPB LU/SP/BT and POP all decompose onto (close to) square grids; this
    picks ``rows = the largest factor <= sqrt(size)``.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    rows = int(math.isqrt(size))
    while rows > 1 and size % rows != 0:
        rows -= 1
    return Grid2D(rows, size // rows)


def hypercube_neighbors(rank: int, size: int) -> list[int]:
    """Neighbors of ``rank`` in the hypercube over the next power of two.

    Only neighbors < ``size`` are returned, which is the peer set used by
    dissemination-style algorithms on non-power-of-two communicators.
    """
    if not (0 <= rank < size):
        raise ValueError("rank outside communicator")
    out = []
    bit = 1
    while bit < size:
        peer = rank ^ bit
        if peer < size:
            out.append(peer)
        bit <<= 1
    return out


def binomial_children(rank: int, size: int, root: int = 0) -> list[int]:
    """Children of ``rank`` in a binomial broadcast tree rooted at ``root``.

    Standard construction on the rotated rank ``v = (rank - root) mod size``:
    node ``v`` owns children ``v | bit`` for each bit above ``v``'s lowest
    set bit (or all bits if ``v == 0``).
    """
    if not (0 <= rank < size):
        raise ValueError("rank outside communicator")
    v = (rank - root) % size
    children = []
    bit = 1
    while bit < size:
        if v & (bit - 1) == v and v | bit != v:
            child = v | bit
            if child < size:
                children.append((child + root) % size)
        bit <<= 1
    return children


def binomial_parent(rank: int, size: int, root: int = 0) -> int | None:
    """Parent of ``rank`` in the binomial tree, or None for the root."""
    if not (0 <= rank < size):
        raise ValueError("rank outside communicator")
    v = (rank - root) % size
    if v == 0:
        return None
    # clear the highest set bit: node v joined the tree in the round that
    # set that bit, receiving from v without it
    parent = v - (1 << (v.bit_length() - 1))
    return (parent + root) % size
