"""Point-to-point communication with MPI matching semantics.

Implements blocking/non-blocking send/recv over the virtual-time engine:

* **Matching** follows MPI rules: a receive names ``(source, tag)`` where
  either may be a wildcard; messages between a sender/receiver pair on the
  same communicator are non-overtaking.
* **Eager protocol** (payload <= ``eager_threshold``): the send completes
  locally after the buffer copy; the message arrives ``latency`` later.
* **Rendezvous protocol** (large payloads): the sender blocks until the
  matching receive is posted; the wire transfer starts at the later of the
  two parties being ready.  This models the synchronizing behaviour that
  makes shipping large trace payloads up a reduction tree expensive —
  exactly the cost Chameleon's clustering is designed to avoid.

Matching state lives in per-destination mailboxes.  The default
:class:`Mailbox` indexes queued messages and posted receives by exact
``(src, tag)`` — one deque per class, so the collective-dominated traffic
that scales with P matches in O(1) — plus a *wildcard overflow lane*
holding user-tag messages in arrival order for ``ANY_SOURCE``/``ANY_TAG``
receives.  Every message and receive carries a mailbox-local sequence
number, and every lookup breaks ties by it, so the index produces exactly
the match a linear FIFO scan of one arrival queue would (the pre-index
implementation is preserved as :class:`LinearMailbox` and asserted
equivalent by a randomized-traffic property test).

Every rank holds its own :class:`Comm` view (rank, size, bound task) of a
shared :class:`CommContext` (mailboxes, membership).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..faults.injector import LOST
from .datatypes import payload_nbytes
from .engine import Engine, Task
from .errors import CommunicatorError, MatchingError
from .futures import SimFuture

ANY_SOURCE = -1
ANY_TAG = -1

#: Tags above this are reserved for internal collective plumbing.
MAX_USER_TAG = 1 << 20

#: Compact a lazy-deletion lane when it holds this many dead entries and
#: they outnumber the live ones.
_COMPACT_THRESHOLD = 64


@dataclass(slots=True)
class Message:
    """An in-flight message (eager: buffered; rendezvous: an offer)."""

    src: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float  # eager: absolute arrival time of the payload
    rendezvous: bool = False
    send_ready: float = 0.0  # rendezvous: when the sender became ready
    sender_future: SimFuture | None = None  # rendezvous: wakes the sender
    sender_task: Task | None = None  # rendezvous: busy-time accounting
    seq: int = -1  # mailbox-local arrival order (set on enqueue)
    consumed: bool = False  # matched via another lane; skip on scan


@dataclass(slots=True)
class PendingRecv:
    src: int
    tag: int
    post_time: float
    future: SimFuture
    task: Task
    seq: int = -1  # mailbox-local post order (set on enqueue)


def _tag_matches(want: int, have: int) -> bool:
    if want == ANY_TAG:
        # Wildcards only see user-level traffic: tags above MAX_USER_TAG
        # belong to collective plumbing and tool (tracer) messages, which
        # real MPI isolates in separate communicator contexts.
        return have <= MAX_USER_TAG
    return want == have


def _src_matches(want: int, have: int) -> bool:
    return want == ANY_SOURCE or want == have


class Mailbox:
    """Per-(context, destination) matching state, indexed by ``(src, tag)``.

    Queued messages live in one deque per exact ``(src, tag)`` class; a
    user-tag message is additionally referenced from the wildcard overflow
    lane (``_wild``).  Exact receives match against the head of their class
    lane in O(1); wildcard receives scan the overflow lane in arrival
    order.  Because MPI matching classes are disjoint by ``(src, tag)``,
    the head of a class lane is always the earliest live message of that
    class, and sequence numbers arbitrate between lanes — the chosen match
    is bit-identical to a linear FIFO scan.

    Lazy deletion: a message matched through its class lane stays in the
    overflow lane flagged ``consumed`` until a scan skips past it or the
    lane compacts; a message matched through the overflow lane is provably
    at the head of its class lane (earlier same-class messages would have
    matched the same wildcard first) and is removed eagerly.

    Posted receives mirror the same structure: exact receives in per-class
    lanes, receives naming any wildcard in ``_pending_wild``.  Receives
    released by fault timeouts (``future.done``) are dropped lazily.
    """

    __slots__ = (
        "_seq",
        "_lanes",
        "_wild",
        "_wild_dead",
        "_pending_lanes",
        "_pending_wild",
        "_pending_count",
    )

    def __init__(self) -> None:
        self._seq = 0
        self._lanes: dict[tuple[int, int], deque[Message]] = {}
        self._wild: deque[Message] = deque()
        self._wild_dead = 0
        self._pending_lanes: dict[tuple[int, int], deque[PendingRecv]] = {}
        self._pending_wild: deque[PendingRecv] = deque()
        self._pending_count = 0

    # -- queued messages ---------------------------------------------------

    def push_msg(self, msg: Message) -> None:
        msg.seq = self._seq
        self._seq += 1
        key = (msg.src, msg.tag)
        lane = self._lanes.get(key)
        if lane is None:
            self._lanes[key] = lane = deque()
        lane.append(msg)
        if msg.tag <= MAX_USER_TAG:
            self._wild.append(msg)

    def _pop_wild_heads(self) -> None:
        wild = self._wild
        while wild and wild[0].consumed:
            wild.popleft()
            self._wild_dead -= 1

    def _compact_wild(self) -> None:
        if (
            self._wild_dead > _COMPACT_THRESHOLD
            and self._wild_dead * 2 > len(self._wild)
        ):
            self._wild = deque(m for m in self._wild if not m.consumed)
            self._wild_dead = 0

    def _take_exact(self, key: tuple[int, int]) -> Message | None:
        lane = self._lanes.get(key)
        if not lane:
            return None
        msg = lane.popleft()
        if not lane:
            del self._lanes[key]
        # The message stays in the overflow lane (if user-tagged) until a
        # scan or compaction drops it.
        if msg.tag <= MAX_USER_TAG:
            msg.consumed = True
            self._wild_dead += 1
            self._compact_wild()
        return msg

    def _find_wild(self, source: int, tag: int, remove: bool) -> Message | None:
        self._pop_wild_heads()
        for i, msg in enumerate(self._wild):
            if msg.consumed:
                continue
            if _src_matches(source, msg.src) and _tag_matches(tag, msg.tag):
                if remove:
                    del self._wild[i]
                    # Provably at the head of its class lane: any earlier
                    # same-class message would have matched this wildcard.
                    key = (msg.src, msg.tag)
                    lane = self._lanes[key]
                    popped = lane.popleft()
                    assert popped is msg
                    if not lane:
                        del self._lanes[key]
                return msg
        return None

    def _find_high_tag_any_source(
        self, tag: int, remove: bool
    ) -> Message | None:
        # ANY_SOURCE with an exact above-user tag: not in the overflow lane
        # (plumbing tags are wildcard-invisible), so arbitrate between the
        # heads of every class lane carrying that tag.  Cold path: no
        # built-in caller ever posts it, but the semantics must hold.
        best: Message | None = None
        best_key: tuple[int, int] | None = None
        for key, lane in self._lanes.items():
            if key[1] != tag or not lane:
                continue
            head = lane[0]
            if best is None or head.seq < best.seq:
                best, best_key = head, key
        if best is not None and remove:
            assert best_key is not None
            lane = self._lanes[best_key]
            lane.popleft()
            if not lane:
                del self._lanes[best_key]
        return best

    def match_msg(self, source: int, tag: int) -> Message | None:
        """Remove and return the earliest queued message matching the
        receive's ``(source, tag)`` filters, or None."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            return self._take_exact((source, tag))
        if source != ANY_SOURCE or tag <= MAX_USER_TAG:
            return self._find_wild(source, tag, remove=True)
        return self._find_high_tag_any_source(tag, remove=True)

    def peek_msg(self, source: int, tag: int) -> Message | None:
        """Like :meth:`match_msg` but non-destructive (``probe``)."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            lane = self._lanes.get((source, tag))
            return lane[0] if lane else None
        if source != ANY_SOURCE or tag <= MAX_USER_TAG:
            return self._find_wild(source, tag, remove=False)
        return self._find_high_tag_any_source(tag, remove=False)

    def drain_messages(self) -> list[Message]:
        """Remove and return every queued message in arrival order."""
        out = [m for lane in self._lanes.values() for m in lane]
        out.sort(key=lambda m: m.seq)
        self._lanes.clear()
        self._wild.clear()
        self._wild_dead = 0
        return out

    # -- posted receives ---------------------------------------------------

    def push_pending(self, p: PendingRecv) -> None:
        p.seq = self._seq
        self._seq += 1
        self._pending_count += 1
        if p.src != ANY_SOURCE and p.tag != ANY_TAG:
            key = (p.src, p.tag)
            lane = self._pending_lanes.get(key)
            if lane is None:
                self._pending_lanes[key] = lane = deque()
            lane.append(p)
        else:
            self._pending_wild.append(p)

    def match_pending(
        self, msg: Message, faults_active: bool = False
    ) -> PendingRecv | None:
        """Remove and return the earliest live posted receive matching
        ``msg``, or None.  Receives already released by a fault timeout
        (``future.done``) are skipped and garbage-collected lazily."""
        key = (msg.src, msg.tag)
        exact: PendingRecv | None = None
        lane = self._pending_lanes.get(key)
        if lane:
            while lane and lane[0].future.done:
                lane.popleft()
                self._pending_count -= 1
            if lane:
                exact = lane[0]
            else:
                del self._pending_lanes[key]
                lane = None
        wild_at = -1
        wild: PendingRecv | None = None
        pw = self._pending_wild
        while pw and pw[0].future.done:
            pw.popleft()
            self._pending_count -= 1
        for i, p in enumerate(pw):
            if p.future.done:
                continue
            if _src_matches(p.src, msg.src) and _tag_matches(p.tag, msg.tag):
                wild, wild_at = p, i
                break
        if exact is not None and (wild is None or exact.seq < wild.seq):
            assert lane is not None
            lane.popleft()
            if not lane:
                del self._pending_lanes[key]
            self._pending_count -= 1
            return exact
        if wild is not None:
            del pw[wild_at]
            self._pending_count -= 1
            return wild
        return None

    def has_pending(self) -> bool:
        return self._pending_count > 0

    def has_queued(self) -> bool:
        """Any undelivered queued message?  Empty class lanes are always
        deleted, so the lane dict doubles as the live-message indicator."""
        return bool(self._lanes)

    def wild_candidate_sources(self, tag: int) -> set[int]:
        """Distinct sources of live queued messages an ``(ANY_SOURCE,
        tag)`` receive could match right now.  The sharded engine's
        quiescent-drain probe: with exactly one candidate source the match
        is interleaving-invariant (per-pair FIFO) and safe to fire."""
        srcs: set[int] = set()
        for msg in self._wild:
            if not msg.consumed and _tag_matches(tag, msg.tag):
                srcs.add(msg.src)
        return srcs

    def has_wild_pending(self) -> bool:
        """Any live posted receive that could match by wildcard (the
        overflow pending lane also carries ANY_SOURCE exact-high-tag
        receives; counting them too only errs on the safe side)."""
        return any(not p.future.done for p in self._pending_wild)

    def has_tag_window(self, lo: int, hi: int) -> bool:
        """Any queued message or live posted receive with an exact tag in
        ``[lo, hi)``?  The macro-collective eligibility probe: a collective
        may only bypass the mailbox when nothing could observe its private
        tag window.  ``ANY_TAG`` receives never can (wildcards are blind to
        tags above ``MAX_USER_TAG``), so only exact tags are consulted."""
        for _src, tag in self._lanes:
            if lo <= tag < hi:
                return True
        for _src, tag in self._pending_lanes:
            if lo <= tag < hi:
                return True
        for p in self._pending_wild:
            # ANY_SOURCE receives with an exact high tag land here.
            if not p.future.done and lo <= p.tag < hi:
                return True
        return False

    def clear_pending(self) -> None:
        """Drop every posted receive (the owning rank is gone)."""
        self._pending_lanes.clear()
        self._pending_wild.clear()
        self._pending_count = 0

    def release_pending_from(self, src: int) -> list[PendingRecv]:
        """Remove and return live posted receives naming ``src`` exactly
        (wildcard receives can still be fed by other senders), post order."""
        out: list[PendingRecv] = []
        dead_keys = [k for k in self._pending_lanes if k[0] == src]
        for key in dead_keys:
            for p in self._pending_lanes.pop(key):
                self._pending_count -= 1
                if not p.future.done:
                    out.append(p)
        if any(p.src == src for p in self._pending_wild):
            keep: deque[PendingRecv] = deque()
            for p in self._pending_wild:
                if p.src == src:
                    self._pending_count -= 1
                    if not p.future.done:
                        out.append(p)
                else:
                    keep.append(p)
            self._pending_wild = keep
        out.sort(key=lambda p: p.seq)
        return out


class LinearMailbox:
    """The pre-index reference implementation: one FIFO arrival queue and
    one FIFO pending queue, matched by linear scan.

    Kept (a) as executable documentation of the matching semantics and
    (b) as the oracle for the randomized equivalence test in
    ``tests/simmpi/test_mailbox_matching.py``.  Select it with
    ``run_spmd(..., matching="linear")``.
    """

    __slots__ = ("queued", "pending", "_seq")

    def __init__(self) -> None:
        self.queued: deque[Message] = deque()
        self.pending: deque[PendingRecv] = deque()
        self._seq = 0

    # -- queued messages ---------------------------------------------------

    def push_msg(self, msg: Message) -> None:
        msg.seq = self._seq
        self._seq += 1
        self.queued.append(msg)

    def match_msg(self, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(self.queued):
            if _src_matches(source, msg.src) and _tag_matches(tag, msg.tag):
                del self.queued[i]
                return msg
        return None

    def peek_msg(self, source: int, tag: int) -> Message | None:
        for msg in self.queued:
            if _src_matches(source, msg.src) and _tag_matches(tag, msg.tag):
                return msg
        return None

    def drain_messages(self) -> list[Message]:
        out = list(self.queued)
        self.queued.clear()
        return out

    def wild_candidate_sources(self, tag: int) -> set[int]:
        """See :meth:`Mailbox.wild_candidate_sources`."""
        srcs: set[int] = set()
        for msg in self.queued:
            if msg.tag <= MAX_USER_TAG and _tag_matches(tag, msg.tag):
                srcs.add(msg.src)
        return srcs

    # -- posted receives ---------------------------------------------------

    def push_pending(self, p: PendingRecv) -> None:
        p.seq = self._seq
        self._seq += 1
        self.pending.append(p)

    def match_pending(
        self, msg: Message, faults_active: bool = False
    ) -> PendingRecv | None:
        if faults_active and any(p.future.done for p in self.pending):
            # Prune receives already released by a fault timeout so they
            # cannot steal messages from live receives.
            self.pending = deque(p for p in self.pending if not p.future.done)
        for i, p in enumerate(self.pending):
            if _src_matches(p.src, msg.src) and _tag_matches(p.tag, msg.tag):
                del self.pending[i]
                return p
        return None

    def has_pending(self) -> bool:
        return bool(self.pending)

    def has_queued(self) -> bool:
        return bool(self.queued)

    def has_wild_pending(self) -> bool:
        return any(
            not p.future.done and (p.src == ANY_SOURCE or p.tag == ANY_TAG)
            for p in self.pending
        )

    def has_tag_window(self, lo: int, hi: int) -> bool:
        return any(lo <= m.tag < hi for m in self.queued) or any(
            not p.future.done and lo <= p.tag < hi for p in self.pending
        )

    def clear_pending(self) -> None:
        self.pending.clear()

    def release_pending_from(self, src: int) -> list[PendingRecv]:
        out: list[PendingRecv] = []
        keep: deque[PendingRecv] = deque()
        for p in self.pending:
            if p.src == src and not p.future.done:
                out.append(p)
            elif p.src == src:
                continue
            else:
                keep.append(p)
        self.pending = keep
        return out


MAILBOX_KINDS = {"indexed": Mailbox, "linear": LinearMailbox}


class _LazyMailboxes(dict):
    """Mailboxes materialized on first touch.

    A pure-collective run at P=65536 never routes a point-to-point
    message, so eagerly building P mailboxes per communicator is wasted
    allocation; unmaterialized entries behave as (and are) empty
    mailboxes.  Iteration (``values()`` in the crash sweep and the
    tag-window scan) only visits materialized entries, which is correct
    because an untouched mailbox holds neither messages nor pendings.
    """

    __slots__ = ("_factory",)

    def __init__(self, factory) -> None:
        super().__init__()
        self._factory = factory

    def __missing__(self, key):
        mbox = self._factory()
        self[key] = mbox
        return mbox


class CommContext:
    """State shared by all ranks of one communicator."""

    def __init__(self, engine: Engine, ranks: Sequence[int]) -> None:
        self.engine = engine
        self.id = engine.alloc_comm_id()
        self.ranks = list(ranks)
        #: world rank -> local rank, precomputed so membership tests and
        #: crash sweeps never pay an O(P) ``list.index`` scan
        self.local_of: dict[int, int] = {
            world: i for i, world in enumerate(self.ranks)
        }
        self._mailboxes: dict[int, Any] = _LazyMailboxes(
            MAILBOX_KINDS[engine.matching]
        )
        # Per-rank collective sequence numbers; SPMD programs call
        # collectives in the same order so these align across ranks and give
        # each collective instance a private tag window.
        self.coll_seq: dict[int, int] = {i: 0 for i in range(len(self.ranks))}
        # Macro-collective gates keyed by collective sequence number: the
        # first rank to reach sequence N decides fast-vs-simulated for that
        # instance, later arrivals join (fast) or follow the verdict
        # (simulated).  Entries are removed once every rank has consulted.
        self._gates: dict[int, Any] = {}
        # Per-rank declared-p2p sequence numbers and their gates, the p2p
        # mirror of coll_seq/_gates: every rank calls exchange() in the
        # same order, so sequence N names one pattern instance.
        self.p2p_seq: dict[int, int] = {i: 0 for i in range(len(self.ranks))}
        self._p2p_gates: dict[int, Any] = {}
        # Registered so a rank crash can purge its pending receives from
        # every communicator it participates in.
        engine._contexts.append(self)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def mailbox(self, local_rank: int):
        return self._mailboxes[local_rank]

    # -- matching internals --------------------------------------------
    #
    # Delivery and match firing live on the context (not the sending
    # Comm): the sharded engine applies remotely-originated messages to a
    # mailbox with no sender-side Comm object in this process.

    def deliver(self, mbox, msg: "Message") -> None:
        """Offer a message to the destination mailbox, matching if possible."""
        pending = mbox.match_pending(msg, self.engine.faults.active)
        if pending is not None:
            self.fire_match(pending, msg)
            return
        mbox.push_msg(msg)

    def fire_match(self, pending: "PendingRecv", msg: "Message") -> None:
        """Compute completion times and resolve both sides' futures."""
        net = self.engine.network
        inj = self.engine.faults
        if inj.active and pending.future.done:
            # The receiver was already released by a fault timeout; consume
            # the message and free a still-waiting rendezvous sender.
            if (
                msg.rendezvous
                and msg.sender_future is not None
                and not msg.sender_future.done
            ):
                msg.sender_future.resolve(LOST, time=msg.send_ready)
            return
        self.engine.total_matches += 1
        if msg.rendezvous:
            latency = net.latency
            transfer = net.transfer_time(msg.nbytes)
            if inj.active:
                lat_f, bw_f = inj.link_factors(
                    self.ranks[msg.src], self.ranks[msg.dest]
                )
                latency *= lat_f
                transfer *= bw_f
            start = max(msg.send_ready, pending.post_time + net.o_recv)
            done_send = start + transfer
            done_recv = start + latency + transfer
            assert msg.sender_future is not None
            if not msg.sender_future.done:
                # Streaming the payload is active work for the sender, but
                # the charge lands when the sender *waits* on the request:
                # busy then accumulates strictly in each rank's program
                # order, independent of global scheduling (the collective
                # fast path relies on this to replay busy times bitwise).
                msg.sender_future.busy_charge = transfer
                msg.sender_future.resolve(None, time=done_send)
        else:
            done_recv = max(pending.post_time + net.o_recv, msg.arrival)
        pending.task.msgs_received += 1
        pending.task.bytes_received += msg.nbytes
        # Like the rendezvous sender's transfer above, the receiver's
        # o_recv overhead is deferred to Request.wait so busy accumulates
        # in program order regardless of when the match fires — without
        # this, a non-blocking receive completed mid-compute would charge
        # o_recv at a schedule-dependent point, breaking shard-vs-single
        # bitwise busy equality.
        pending.future.busy_charge = net.o_recv
        ins = self.engine.instrument
        if ins.enabled:
            # One span per delivered message on the *receiver's* lane, from
            # the receive post to completion: the wait/latency view the
            # paper's rendezvous-cost argument is about.
            wsrc = self.ranks[msg.src]
            wdest = self.ranks[msg.dest]
            cat = "p2p" if msg.tag <= MAX_USER_TAG else "p2p.tool"
            ins.span(
                wdest,
                f"recv<-{wsrc}",
                cat,
                pending.post_time,
                done_recv,
                {
                    "src": wsrc,
                    "tag": msg.tag,
                    "nbytes": msg.nbytes,
                    "rendezvous": msg.rendezvous,
                    "comm": self.id,
                },
            )
            ins.metrics.count("p2p/bytes_received", msg.nbytes, rank=wdest,
                              op="recv", t=done_recv)
            ins.metrics.observe("p2p/recv_latency",
                                max(done_recv - pending.post_time, 0.0),
                                rank=wdest)
        pending.future.resolve(msg, time=done_recv)


def _status_of(msg: Message) -> dict:
    return {"source": msg.src, "tag": msg.tag, "nbytes": msg.nbytes}


class Request:
    """Handle for a non-blocking operation (isend/irecv).

    Receive requests resolve with the raw :class:`Message`; :meth:`wait`
    unwraps it to the payload and advances the caller's clock to the
    operation's completion time.
    """

    __slots__ = ("_future", "_task", "_kind")

    def __init__(self, future: SimFuture, task: Task, kind: str) -> None:
        self._future = future
        self._task = task
        self._kind = kind

    @property
    def done(self) -> bool:
        return self._future.done

    async def wait(self) -> Any:
        value = await self._future
        self._task.advance_to(self._future.time)
        charge = self._future.busy_charge
        if charge:
            self._future.busy_charge = 0.0
            self._task.busy += charge
        if isinstance(value, Message):
            return value.payload
        return value

    async def wait_with_status(self) -> tuple[Any, dict]:
        value = await self._future
        self._task.advance_to(self._future.time)
        charge = self._future.busy_charge
        if charge:
            self._future.busy_charge = 0.0
            self._task.busy += charge
        if isinstance(value, Message):
            return value.payload, _status_of(value)
        if self._kind == "irecv":
            # Fault release: the receive was resolved with LOST (dead
            # source or op_timeout) so no sender metadata survives.
            return value, {"source": -1, "tag": -1, "nbytes": 0}
        raise MatchingError("wait_with_status is only valid on receives")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request {self._kind} done={self.done}>"


async def wait_all(requests: Sequence[Request]) -> list[Any]:
    """Wait for every request, returning their payloads in order."""
    return [await r.wait() for r in requests]


class Comm:
    """A rank's view of a communicator; all methods are awaitable."""

    def __init__(self, context: CommContext, rank: int, task: Task) -> None:
        if not (0 <= rank < context.size):
            raise CommunicatorError(
                f"rank {rank} outside communicator of size {context.size}"
            )
        self.context = context
        self.rank = rank
        self.task = task

    # -- introspection -------------------------------------------------

    @property
    def size(self) -> int:
        return self.context.size

    @property
    def engine(self) -> Engine:
        return self.context.engine

    @property
    def net(self):
        return self.context.engine.network

    def world_rank(self, local_rank: int) -> int:
        """Translate a rank in this communicator to a world rank."""
        return self.context.ranks[local_rank]

    # -- validation ------------------------------------------------------

    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MatchingError(
                f"{what} rank {peer} outside communicator of size {self.size}"
            )

    def _check_tag(self, tag: int, recv: bool) -> None:
        if recv and tag == ANY_TAG:
            return
        if tag < 0:
            raise MatchingError(f"negative tag {tag}")

    # -- point to point ----------------------------------------------------

    async def send(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> None:
        """Blocking standard-mode send (eager or rendezvous by size)."""
        req = self.isend(dest, payload, tag=tag, size=size)
        await req.wait()

    async def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload.

        Skips the status construction of :meth:`recv_with_status` — on the
        collective-heavy benchmarks that dict was a measurable share of the
        per-message allocation cost.
        """
        req = self.irecv(source, tag)
        return await req.wait()

    async def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, dict]:
        """Blocking receive returning ``(payload, status)``.

        ``status`` carries ``source``, ``tag`` and ``nbytes`` like
        ``MPI_Status`` so wildcard receivers can learn the actual sender.
        """
        req = self.irecv(source, tag)
        return await req.wait_with_status()

    async def sendrecv(
        self,
        dest: int,
        payload: Any = None,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        size: int | None = None,
    ) -> Any:
        """Combined send+recv (deadlock-free like ``MPI_Sendrecv``)."""
        sreq = self.isend(dest, payload, tag=sendtag, size=size)
        rreq = self.irecv(source, recvtag)
        value = await rreq.wait()
        await sreq.wait()
        return value

    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> Request:
        """Non-blocking send.

        Eager sends complete immediately (buffered); rendezvous sends
        complete when the matching receive is posted.  The local overhead is
        charged at post time either way, mirroring real ``MPI_Isend``.
        """
        self._check_peer(dest, "destination")
        self._check_tag(tag, recv=False)
        nbytes = payload_nbytes(payload) if size is None else int(size)
        net = self.net
        task = self.task
        ranks = self.context.ranks
        mbox = self.context.mailbox(dest)
        task.msgs_sent += 1
        task.bytes_sent += nbytes
        self.engine.total_messages += 1
        self.engine.total_bytes += nbytes

        ins = self.engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "p2p/bytes_sent", nbytes, rank=ranks[self.rank],
                op="send", t=task.clock,
            )
            ins.metrics.count(
                "p2p/messages", 1, rank=ranks[self.rank],
                op="send", t=task.clock,
            )

        fut = SimFuture(kind="isend", src=ranks[self.rank], dest=ranks[dest],
                        tag=tag, comm=self.context.id, post_time=task.clock)
        inj = self.engine.faults
        if inj.active and ranks[dest] in inj.failed:
            # Dead destination: the send completes locally and the payload
            # goes into the void — matching real MPI, where delivery to a
            # failed process is undetectable without an FT protocol.  This
            # also keeps rendezvous senders from stalling on a receive that
            # will never be posted.
            task.charge(net.o_send)
            if ins.enabled:
                wsrc = ranks[self.rank]
                ins.instant(wsrc, "dead_dest", "fault", task.clock,
                            {"dest": ranks[dest], "tag": tag,
                             "nbytes": nbytes})
                ins.metrics.count("fault/dead_dest_sends", 1, rank=wsrc,
                                  t=task.clock)
            fut.resolve(None, time=task.clock)
            return Request(fut, task, "isend")
        if net.eager(nbytes):
            task.charge(net.o_send + net.transfer_time(nbytes))
            latency = net.latency
            inj = self.engine.faults
            if inj.active:
                wsrc = ranks[self.rank]
                wdest = ranks[dest]
                latency *= inj.link_factors(wsrc, wdest)[0]
                extra = inj.message_delay(wsrc, wdest, task.msgs_sent)
                if extra is None:
                    # Permanently lost past the retransmission budget: the
                    # eager send still completes locally (buffered), but
                    # the payload never arrives — the receiver is released
                    # with LOST by the engine's op_timeout.
                    if ins.enabled:
                        ins.instant(wsrc, "msg_lost", "fault", task.clock,
                                    {"dest": wdest, "tag": tag,
                                     "nbytes": nbytes})
                        ins.metrics.count("fault/messages_lost", 1,
                                          rank=wsrc, t=task.clock)
                    fut.resolve(None, time=task.clock)
                    return Request(fut, task, "isend")
                latency += extra
                if extra and ins.enabled:
                    ins.instant(wsrc, "msg_delayed", "fault", task.clock,
                                {"dest": wdest, "tag": tag, "extra": extra})
                    ins.metrics.count("fault/messages_delayed", 1,
                                      rank=wsrc, t=task.clock)
            msg = Message(
                src=self.rank,
                dest=dest,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                arrival=task.clock + latency,
            )
            self._deliver(mbox, msg)
            fut.resolve(None, time=task.clock)
        else:
            task.charge(net.o_send)  # posting cost is paid now
            send_ready = task.clock
            msg = Message(
                src=self.rank,
                dest=dest,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                arrival=0.0,
                rendezvous=True,
                send_ready=send_ready,
                sender_future=fut,
                sender_task=task,
            )
            self._deliver(mbox, msg)
        return Request(fut, task, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``await req.wait()`` returns the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        self._check_tag(tag, recv=True)
        task = self.task
        ranks = self.context.ranks
        mbox = self.context.mailbox(self.rank)
        fut = SimFuture(
            kind="irecv",
            src=None if source == ANY_SOURCE else ranks[source],
            dest=ranks[self.rank],
            tag=tag,
            comm=self.context.id,
            post_time=task.clock,
        )

        msg = mbox.match_msg(source, tag)
        if msg is not None:
            self._fire_match(
                PendingRecv(source, tag, task.clock, fut, task), msg
            )
            return Request(fut, task, "irecv")
        inj = self.engine.faults
        if (
            inj.active
            and source != ANY_SOURCE
            and ranks[source] in inj.failed
        ):
            # The named peer is dead and nothing from it is queued: the
            # message can never arrive (all sends structurally deliver at
            # post time, so the queue state is complete).  Release the
            # receive immediately with a LOST hole.
            ins = self.engine.instrument
            if ins.enabled:
                wdest = ranks[self.rank]
                ins.instant(wdest, "dead_source", "fault", task.clock,
                            {"src": ranks[source], "tag": tag})
                ins.metrics.count("fault/dead_source_recvs", 1, rank=wdest,
                                  t=task.clock)
            fut.resolve(LOST, time=task.clock)
            return Request(fut, task, "irecv")
        mbox.push_pending(PendingRecv(source, tag, task.clock, fut, task))
        return Request(fut, task, "irecv")

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict | None:
        """Non-blocking probe: status of the first matching queued message."""
        mbox = self.context.mailbox(self.rank)
        msg = mbox.peek_msg(source, tag)
        return None if msg is None else _status_of(msg)

    # -- matching internals --------------------------------------------

    def _deliver(self, mbox, msg: Message) -> None:
        self.context.deliver(mbox, msg)

    def _fire_match(self, pending: PendingRecv, msg: Message) -> None:
        self.context.fire_match(pending, msg)
