"""Point-to-point communication with MPI matching semantics.

Implements blocking/non-blocking send/recv over the virtual-time engine:

* **Matching** follows MPI rules: a receive names ``(source, tag)`` where
  either may be a wildcard; messages between a sender/receiver pair on the
  same communicator are non-overtaking (FIFO scan of the arrival queue).
* **Eager protocol** (payload <= ``eager_threshold``): the send completes
  locally after the buffer copy; the message arrives ``latency`` later.
* **Rendezvous protocol** (large payloads): the sender blocks until the
  matching receive is posted; the wire transfer starts at the later of the
  two parties being ready.  This models the synchronizing behaviour that
  makes shipping large trace payloads up a reduction tree expensive —
  exactly the cost Chameleon's clustering is designed to avoid.

Every rank holds its own :class:`Comm` view (rank, size, bound task) of a
shared :class:`CommContext` (mailboxes, membership).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..faults.injector import LOST
from .datatypes import payload_nbytes
from .engine import Engine, Task
from .errors import CommunicatorError, MatchingError
from .futures import SimFuture

ANY_SOURCE = -1
ANY_TAG = -1

#: Tags above this are reserved for internal collective plumbing.
MAX_USER_TAG = 1 << 20


@dataclass
class Message:
    """An in-flight message (eager: buffered; rendezvous: an offer)."""

    src: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float  # eager: absolute arrival time of the payload
    rendezvous: bool = False
    send_ready: float = 0.0  # rendezvous: when the sender became ready
    sender_future: SimFuture | None = None  # rendezvous: wakes the sender
    sender_task: Task | None = None  # rendezvous: busy-time accounting


@dataclass
class PendingRecv:
    src: int
    tag: int
    post_time: float
    future: SimFuture
    task: Task


@dataclass
class Mailbox:
    """Per-(context, destination) matching state."""

    queued: deque[Message] = field(default_factory=deque)
    pending: deque[PendingRecv] = field(default_factory=deque)


class CommContext:
    """State shared by all ranks of one communicator."""

    def __init__(self, engine: Engine, ranks: Sequence[int]) -> None:
        self.engine = engine
        self.id = engine.alloc_comm_id()
        self.ranks = list(ranks)
        self._mailboxes: dict[int, Mailbox] = {
            i: Mailbox() for i in range(len(self.ranks))
        }
        # Per-rank collective sequence numbers; SPMD programs call
        # collectives in the same order so these align across ranks and give
        # each collective instance a private tag window.
        self.coll_seq: dict[int, int] = {i: 0 for i in range(len(self.ranks))}
        # Registered so a rank crash can purge its pending receives from
        # every communicator it participates in.
        engine._contexts.append(self)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def mailbox(self, local_rank: int) -> Mailbox:
        return self._mailboxes[local_rank]


def _tag_matches(want: int, have: int) -> bool:
    if want == ANY_TAG:
        # Wildcards only see user-level traffic: tags above MAX_USER_TAG
        # belong to collective plumbing and tool (tracer) messages, which
        # real MPI isolates in separate communicator contexts.
        return have <= MAX_USER_TAG
    return want == have


def _src_matches(want: int, have: int) -> bool:
    return want == ANY_SOURCE or want == have


def _status_of(msg: Message) -> dict:
    return {"source": msg.src, "tag": msg.tag, "nbytes": msg.nbytes}


class Request:
    """Handle for a non-blocking operation (isend/irecv).

    Receive requests resolve with the raw :class:`Message`; :meth:`wait`
    unwraps it to the payload and advances the caller's clock to the
    operation's completion time.
    """

    __slots__ = ("_future", "_task", "_kind")

    def __init__(self, future: SimFuture, task: Task, kind: str) -> None:
        self._future = future
        self._task = task
        self._kind = kind

    @property
    def done(self) -> bool:
        return self._future.done

    async def wait(self) -> Any:
        value = await self._future
        self._task.advance_to(self._future.time)
        if isinstance(value, Message):
            return value.payload
        return value

    async def wait_with_status(self) -> tuple[Any, dict]:
        value = await self._future
        self._task.advance_to(self._future.time)
        if isinstance(value, Message):
            return value.payload, _status_of(value)
        if self._kind == "irecv":
            # Fault release: the receive was resolved with LOST (dead
            # source or op_timeout) so no sender metadata survives.
            return value, {"source": -1, "tag": -1, "nbytes": 0}
        raise MatchingError("wait_with_status is only valid on receives")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request {self._kind} done={self.done}>"


async def wait_all(requests: Sequence[Request]) -> list[Any]:
    """Wait for every request, returning their payloads in order."""
    return [await r.wait() for r in requests]


class Comm:
    """A rank's view of a communicator; all methods are awaitable."""

    def __init__(self, context: CommContext, rank: int, task: Task) -> None:
        if not (0 <= rank < context.size):
            raise CommunicatorError(
                f"rank {rank} outside communicator of size {context.size}"
            )
        self.context = context
        self.rank = rank
        self.task = task

    # -- introspection -------------------------------------------------

    @property
    def size(self) -> int:
        return self.context.size

    @property
    def engine(self) -> Engine:
        return self.context.engine

    @property
    def net(self):
        return self.context.engine.network

    def world_rank(self, local_rank: int) -> int:
        """Translate a rank in this communicator to a world rank."""
        return self.context.ranks[local_rank]

    # -- validation ------------------------------------------------------

    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MatchingError(
                f"{what} rank {peer} outside communicator of size {self.size}"
            )

    def _check_tag(self, tag: int, recv: bool) -> None:
        if recv and tag == ANY_TAG:
            return
        if tag < 0:
            raise MatchingError(f"negative tag {tag}")

    # -- point to point ----------------------------------------------------

    async def send(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> None:
        """Blocking standard-mode send (eager or rendezvous by size)."""
        req = self.isend(dest, payload, tag=tag, size=size)
        await req.wait()

    async def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        payload, _status = await self.recv_with_status(source, tag)
        return payload

    async def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, dict]:
        """Blocking receive returning ``(payload, status)``.

        ``status`` carries ``source``, ``tag`` and ``nbytes`` like
        ``MPI_Status`` so wildcard receivers can learn the actual sender.
        """
        req = self.irecv(source, tag)
        return await req.wait_with_status()

    async def sendrecv(
        self,
        dest: int,
        payload: Any = None,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        size: int | None = None,
    ) -> Any:
        """Combined send+recv (deadlock-free like ``MPI_Sendrecv``)."""
        sreq = self.isend(dest, payload, tag=sendtag, size=size)
        rreq = self.irecv(source, recvtag)
        value = await rreq.wait()
        await sreq.wait()
        return value

    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None
    ) -> Request:
        """Non-blocking send.

        Eager sends complete immediately (buffered); rendezvous sends
        complete when the matching receive is posted.  The local overhead is
        charged at post time either way, mirroring real ``MPI_Isend``.
        """
        self._check_peer(dest, "destination")
        self._check_tag(tag, recv=False)
        nbytes = payload_nbytes(payload) if size is None else int(size)
        net = self.net
        task = self.task
        mbox = self.context.mailbox(dest)
        task.msgs_sent += 1
        task.bytes_sent += nbytes
        self.engine.total_messages += 1
        self.engine.total_bytes += nbytes

        ins = self.engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "p2p/bytes_sent", nbytes, rank=self.world_rank(self.rank),
                op="send", t=task.clock,
            )
            ins.metrics.count(
                "p2p/messages", 1, rank=self.world_rank(self.rank),
                op="send", t=task.clock,
            )

        fut = SimFuture(label=f"isend {self.rank}->{dest} tag={tag} comm={self.context.id}")
        inj = self.engine.faults
        if inj.active and self.context.ranks[dest] in inj.failed:
            # Dead destination: the send completes locally and the payload
            # goes into the void — matching real MPI, where delivery to a
            # failed process is undetectable without an FT protocol.  This
            # also keeps rendezvous senders from stalling on a receive that
            # will never be posted.
            task.charge(net.o_send)
            if ins.enabled:
                wsrc = self.context.ranks[self.rank]
                ins.instant(wsrc, "dead_dest", "fault", task.clock,
                            {"dest": self.context.ranks[dest], "tag": tag,
                             "nbytes": nbytes})
                ins.metrics.count("fault/dead_dest_sends", 1, rank=wsrc,
                                  t=task.clock)
            fut.resolve(None, time=task.clock)
            return Request(fut, task, "isend")
        if net.eager(nbytes):
            task.charge(net.o_send + net.transfer_time(nbytes))
            latency = net.latency
            inj = self.engine.faults
            if inj.active:
                wsrc = self.context.ranks[self.rank]
                wdest = self.context.ranks[dest]
                latency *= inj.link_factors(wsrc, wdest)[0]
                extra = inj.message_delay(wsrc, wdest, task.msgs_sent)
                if extra is None:
                    # Permanently lost past the retransmission budget: the
                    # eager send still completes locally (buffered), but
                    # the payload never arrives — the receiver is released
                    # with LOST by the engine's op_timeout.
                    if ins.enabled:
                        ins.instant(wsrc, "msg_lost", "fault", task.clock,
                                    {"dest": wdest, "tag": tag,
                                     "nbytes": nbytes})
                        ins.metrics.count("fault/messages_lost", 1,
                                          rank=wsrc, t=task.clock)
                    fut.resolve(None, time=task.clock)
                    return Request(fut, task, "isend")
                latency += extra
                if extra and ins.enabled:
                    ins.instant(wsrc, "msg_delayed", "fault", task.clock,
                                {"dest": wdest, "tag": tag, "extra": extra})
                    ins.metrics.count("fault/messages_delayed", 1,
                                      rank=wsrc, t=task.clock)
            msg = Message(
                src=self.rank,
                dest=dest,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                arrival=task.clock + latency,
            )
            self._deliver(mbox, msg)
            fut.resolve(None, time=task.clock)
        else:
            task.charge(net.o_send)  # posting cost is paid now
            send_ready = task.clock
            msg = Message(
                src=self.rank,
                dest=dest,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                arrival=0.0,
                rendezvous=True,
                send_ready=send_ready,
                sender_future=fut,
                sender_task=task,
            )
            self._deliver(mbox, msg)
        return Request(fut, task, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``await req.wait()`` returns the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        self._check_tag(tag, recv=True)
        task = self.task
        mbox = self.context.mailbox(self.rank)
        fut = SimFuture(label=f"irecv src={source} rank={self.rank} tag={tag} comm={self.context.id}")

        msg = self._match_queued(mbox, source, tag)
        if msg is not None:
            self._fire_match(
                PendingRecv(source, tag, task.clock, fut, task), msg
            )
            return Request(fut, task, "irecv")
        inj = self.engine.faults
        if (
            inj.active
            and source != ANY_SOURCE
            and self.context.ranks[source] in inj.failed
        ):
            # The named peer is dead and nothing from it is queued: the
            # message can never arrive (all sends structurally deliver at
            # post time, so the queue state is complete).  Release the
            # receive immediately with a LOST hole.
            ins = self.engine.instrument
            if ins.enabled:
                wdest = self.context.ranks[self.rank]
                ins.instant(wdest, "dead_source", "fault", task.clock,
                            {"src": self.context.ranks[source], "tag": tag})
                ins.metrics.count("fault/dead_source_recvs", 1, rank=wdest,
                                  t=task.clock)
            fut.resolve(LOST, time=task.clock)
            return Request(fut, task, "irecv")
        mbox.pending.append(PendingRecv(source, tag, task.clock, fut, task))
        return Request(fut, task, "irecv")

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict | None:
        """Non-blocking probe: status of the first matching queued message."""
        mbox = self.context.mailbox(self.rank)
        for msg in mbox.queued:
            if _src_matches(source, msg.src) and _tag_matches(tag, msg.tag):
                return _status_of(msg)
        return None

    # -- matching internals --------------------------------------------

    @staticmethod
    def _match_queued(mbox: Mailbox, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(mbox.queued):
            if _src_matches(source, msg.src) and _tag_matches(tag, msg.tag):
                del mbox.queued[i]
                return msg
        return None

    def _deliver(self, mbox: Mailbox, msg: Message) -> None:
        """Offer a message to the destination mailbox, matching if possible."""
        if self.engine.faults.active and any(
            p.future.done for p in mbox.pending
        ):
            # Prune receives already released by a fault timeout so they
            # cannot steal messages from live receives.
            mbox.pending = deque(
                p for p in mbox.pending if not p.future.done
            )
        for i, pending in enumerate(mbox.pending):
            if _src_matches(pending.src, msg.src) and _tag_matches(
                pending.tag, msg.tag
            ):
                del mbox.pending[i]
                self._fire_match(pending, msg)
                return
        mbox.queued.append(msg)

    def _fire_match(self, pending: PendingRecv, msg: Message) -> None:
        """Compute completion times and resolve both sides' futures."""
        net = self.net
        inj = self.engine.faults
        if inj.active and pending.future.done:
            # The receiver was already released by a fault timeout; consume
            # the message and free a still-waiting rendezvous sender.
            if (
                msg.rendezvous
                and msg.sender_future is not None
                and not msg.sender_future.done
            ):
                msg.sender_future.resolve(LOST, time=msg.send_ready)
            return
        if msg.rendezvous:
            latency = net.latency
            transfer = net.transfer_time(msg.nbytes)
            if inj.active:
                lat_f, bw_f = inj.link_factors(
                    self.context.ranks[msg.src], self.context.ranks[msg.dest]
                )
                latency *= lat_f
                transfer *= bw_f
            start = max(msg.send_ready, pending.post_time + net.o_recv)
            done_send = start + transfer
            done_recv = start + latency + transfer
            assert msg.sender_future is not None
            if msg.sender_task is not None:
                # streaming the payload is active work for the sender
                msg.sender_task.busy += transfer
            if not msg.sender_future.done:
                msg.sender_future.resolve(None, time=done_send)
        else:
            done_recv = max(pending.post_time + net.o_recv, msg.arrival)
        pending.task.msgs_received += 1
        pending.task.bytes_received += msg.nbytes
        pending.task.busy += net.o_recv
        ins = self.engine.instrument
        if ins.enabled:
            # One span per delivered message on the *receiver's* lane, from
            # the receive post to completion: the wait/latency view the
            # paper's rendezvous-cost argument is about.
            wsrc = self.context.ranks[msg.src]
            wdest = self.context.ranks[msg.dest]
            cat = "p2p" if msg.tag <= MAX_USER_TAG else "p2p.tool"
            ins.span(
                wdest,
                f"recv<-{wsrc}",
                cat,
                pending.post_time,
                done_recv,
                {
                    "src": wsrc,
                    "tag": msg.tag,
                    "nbytes": msg.nbytes,
                    "rendezvous": msg.rendezvous,
                    "comm": self.context.id,
                },
            )
            ins.metrics.count("p2p/bytes_received", msg.nbytes, rank=wdest,
                              op="recv", t=done_recv)
            ins.metrics.observe("p2p/recv_latency",
                                max(done_recv - pending.post_time, 0.0),
                                rank=wdest)
        pending.future.resolve(msg, time=done_recv)
