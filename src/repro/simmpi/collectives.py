"""Collective operations: closed-form macro fast path + message-level path.

Each collective is implemented with the classic algorithm an MPI library
would use, so its virtual-time cost has the right shape automatically:

* ``barrier``      — dissemination, ``ceil(log2 P)`` rounds
* ``bcast``        — binomial tree, ``ceil(log2 P)`` rounds
* ``reduce``       — binomial tree (leaves fold upward)
* ``allreduce``    — reduce + bcast
* ``gather``       — binomial tree with growing segments
* ``scatter``      — binomial tree with shrinking segments
* ``allgather``    — ring, ``P - 1`` steps
* ``alltoall``     — pairwise exchange, ``P - 1`` steps
* ``scan``         — linear chain
* ``split``/``dup``— communicator construction via gather + bcast

Every collective instance claims a private tag window derived from the
caller's per-communicator collective sequence number; SPMD programs call
collectives in the same order on every rank, which keeps the windows
aligned (the same assumption a real MPI library makes about matching
collective calls).

**Two execution paths.**  The *simulated* path (``_*_sim`` methods) spawns
one real message per schedule edge through the Mailbox — every send/recv is
an engine-visible operation.  The *macro fast path* evaluates the very same
schedule (:mod:`repro.simmpi.schedules`) in closed form: the first rank to
reach a collective opens a :class:`_CollGate`, later ranks join it, and the
last arrival replays all ranks' algorithm bodies through an in-step
*mini-engine* (:class:`_MiniEngine`) that performs the LogGP arithmetic of
:mod:`repro.simmpi.comm` with the identical floating-point operation order —
then bulk-advances every participant's clock in one scheduler step.  Both
paths produce bit-identical virtual clocks, busy times and results; the
fast path just never touches the Mailbox and never parks a task per round.

A collective is *eligible* for the fast path only when nothing outside the
gate could observe the difference: no armed fault intersects the
participants, no pending receive could match the collective's private tag
window, matching is ``"indexed"`` and instrumentation (if any) asks for
``"span"`` granularity.  Anything else falls back to the simulated path —
per rank *and* per instance, with the verdict cached on the gate so all
participants always agree.  See docs/PERF.md ("Macro-collectives").
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Any, Callable, Sequence

from ..faults.injector import LOST
from .comm import Comm, CommContext, MAX_USER_TAG
from .datatypes import payload_nbytes
from .errors import CollectiveMismatchError, PatternMismatchError
from .futures import SimFuture
from .patterns import (
    NeighborPattern,
    RUN_SIM,
    _P2PEntry,
    _P2PGate,
    resolve_p2p_gate,
)
from .schedules import binomial_children, binomial_parent, binomial_subtree

# -- reduction operators -----------------------------------------------------

#: lazily imported numpy module (MAX/MIN only need it for array payloads;
#: importing per fold step made every reduce pay the sys.modules lookup)
_np = None


def _numpy():
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


def _numpy_or_none():
    """Like :func:`_numpy` but degrades to ``None`` when numpy is absent
    (the vectorized replays then fall back to the generator mini-engine)."""
    try:
        return _numpy()
    except ImportError:  # pragma: no cover - numpy ships with the toolchain
        return None


def SUM(a: Any, b: Any) -> Any:
    return a + b


def PROD(a: Any, b: Any) -> Any:
    return a * b


def MAX(a: Any, b: Any) -> Any:
    if hasattr(a, "shape") or hasattr(b, "shape"):
        return _numpy().maximum(a, b)
    return a if a >= b else b


def MIN(a: Any, b: Any) -> Any:
    if hasattr(a, "shape") or hasattr(b, "shape"):
        return _numpy().minimum(a, b)
    return a if a <= b else b


def LOR(a: Any, b: Any) -> Any:
    return bool(a) or bool(b)


def LAND(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def BOR(a: Any, b: Any) -> Any:
    return a | b


#: Tags per collective instance: room for log2(P) rounds plus ring steps.
_TAG_STRIDE = 4096

# Below this communicator size the vectorized replays lose to plain scalar
# loops on numpy call overhead; the scalar/generator paths stay bit-exact.
_VEC_MIN_SIZE = 16

#: display algorithm per gated (leaf) collective, matching the labels the
#: simulated path's ``_observed`` wrappers emit
_ALGORITHMS = {
    "barrier": "dissemination",
    "bcast": "binomial-tree",
    "reduce": "binomial-tree",
    "gather": "binomial-tree",
    "scatter": "binomial-tree",
    "allgather": "ring",
    "alltoall": "pairwise-exchange",
    "scan": "linear-chain",
}


def _observed(name: str, algorithm: str):
    """Wrap a collective so its whole execution becomes one span on the
    caller's lane (cat ``coll``), tagged with the algorithm the simulated
    MPI library would have used.  With the no-op instrument the wrapper is
    a single attribute check — virtual time is untouched either way."""

    def deco(fn):
        @functools.wraps(fn)
        async def wrapper(self: "Communicator", *args: Any, **kwargs: Any):
            ins = self.engine.instrument
            if not ins.enabled:
                return await fn(self, *args, **kwargs)
            t0 = self.task.clock
            result = await fn(self, *args, **kwargs)
            t1 = self.task.clock
            world = self.world_rank(self.rank)
            ins.span(
                world, name, "coll", t0, t1,
                {"algorithm": algorithm, "comm": self.context.id,
                 "size": self.size},
            )
            ins.metrics.count("coll/calls", 1, rank=world, op=name, t=t1)
            ins.metrics.count("coll/time", t1 - t0, rank=world, op=name, t=t1)
            return result

        return wrapper

    return deco


# -- macro fast path: schedule generators ------------------------------------
#
# One plain-Python generator per collective algorithm, mirroring the async
# ``_*_sim`` body op for op.  They yield mini-engine operations:
#
#   ("isend", dest, tagoff, payload, size)  -> handle (non-blocking)
#   ("send",  dest, tagoff, payload, size)  -> None   (isend + wait fused)
#   ("recv",  src, tagoff)                  -> payload
#   ("wait",  handle)                       -> None
#
# and return the rank's collective result.  The LOST branches of the
# simulated bodies are omitted: eligibility guarantees no fault can reach
# the mini-engine, so no hole can ever flow through it.


def _g_barrier(rank: int, size: int):
    round_no = 0
    dist = 1
    while dist < size:
        to = (rank + dist) % size
        frm = (rank - dist) % size
        sreq = yield ("isend", to, round_no, None, 0)
        yield ("recv", frm, round_no)
        if sreq is not _EAGER_DONE:  # waiting on eager sends is a no-op
            yield ("wait", sreq)
        dist <<= 1
        round_no += 1
    return None


def _g_bcast(rank: int, size: int, root: int, value: Any, nbytes: int | None):
    if size == 1:
        return value
    parent = binomial_parent(rank, size, root)
    if parent is not None:
        value = yield ("recv", parent, 0)
    for child in binomial_children(rank, size, root):
        yield ("send", child, 0, value, nbytes)
    return value


def _g_reduce(rank, size, root, value, op, nbytes):
    if size == 1:
        return value
    acc = value
    for child in reversed(binomial_children(rank, size, root)):
        child_val = yield ("recv", child, 0)
        acc = op(child_val, acc)
    parent = binomial_parent(rank, size, root)
    if parent is not None:
        yield ("send", parent, 0, acc, nbytes)
        return None
    return acc


def _g_gather(rank, size, root, value, nbytes):
    if size == 1:
        return [value]
    segment: dict[int, Any] = {rank: value}
    for child in reversed(binomial_children(rank, size, root)):
        child_seg = yield ("recv", child, 0)
        segment.update(child_seg)
    parent = binomial_parent(rank, size, root)
    if parent is not None:
        seg_size = None if nbytes is None else nbytes * len(segment)
        yield ("send", parent, 0, segment, seg_size)
        return None
    return [segment[r] for r in range(size)]


def _g_scatter(rank, size, root, values, nbytes):
    if size == 1:
        return values[0]
    parent = binomial_parent(rank, size, root)
    if parent is None:
        segment = {r: values[r] for r in range(size)}
    else:
        segment = yield ("recv", parent, 0)
    for child in binomial_children(rank, size, root):
        members = binomial_subtree(child, size, root)
        child_seg = {r: segment[r] for r in members if r in segment}
        seg_size = None if nbytes is None else nbytes * max(len(child_seg), 1)
        yield ("send", child, 0, child_seg, seg_size)
    return segment[rank]


def _g_allgather(rank, size, value, nbytes):
    out: list[Any] = [None] * size
    out[rank] = value
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_rank, carry = rank, value
    for step in range(size - 1):
        sreq = yield ("isend", right, step, (carry_rank, carry), nbytes)
        got = yield ("recv", left, step)
        if sreq is not _EAGER_DONE:
            yield ("wait", sreq)
        carry_rank, carry = got
        out[carry_rank] = carry
    return out


def _g_alltoall(rank, size, values, nbytes):
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        to = (rank + step) % size
        frm = (rank - step) % size
        sreq = yield ("isend", to, step, values[to], nbytes)
        out[frm] = yield ("recv", frm, step)
        if sreq is not _EAGER_DONE:
            yield ("wait", sreq)
    return out


def _g_scan(rank, size, value, op, nbytes):
    acc = value
    if rank > 0:
        prev = yield ("recv", rank - 1, 0)
        acc = op(prev, value)
    if rank < size - 1:
        yield ("send", rank + 1, 0, acc, nbytes)
    return acc


#: kind -> schedule-generator factory, called as ``factory(rank, size,
#: *genargs)``.  Dispatchers hand :meth:`Communicator._join_fast` the plain
#: ``genargs`` tuple instead of a live generator so a gate entry stays
#: picklable — the sharded engine ships entries to the coordinator process
#: and reconstructs the generators there from this same map.
_GEN_FACTORIES: dict[str, Callable[..., Any]] = {
    "barrier": _g_barrier,
    "bcast": _g_bcast,
    "reduce": _g_reduce,
    "gather": _g_gather,
    "scatter": _g_scatter,
    "allgather": _g_allgather,
    "alltoall": _g_alltoall,
    "scan": _g_scan,
}


# -- macro fast path: mini-engine --------------------------------------------


class _MiniFut:
    """Completion handle inside the mini-engine (mirrors SimFuture)."""

    __slots__ = ("done", "value", "time", "busy_charge", "waiter")

    def __init__(self) -> None:
        self.done = False
        self.value: Any = None
        self.time = 0.0
        self.busy_charge = 0.0
        self.waiter: "_RankState | None" = None


#: Shared pre-resolved handle for eager sends: their completion time equals
#: the sender's clock at post, so waiting on them never advances anything —
#: one immutable singleton replaces a _MiniFut allocation per eager message.
_EAGER_DONE = _MiniFut()
_EAGER_DONE.done = True
_EAGER_DONE.time = -1.0

# Mini messages are plain tuples (payload, nbytes, time, sender_fut):
# ``sender_fut`` is None for eager messages (``time`` is the arrival) and
# the sender's handle for rendezvous (``time`` is send_ready).


class _RankState:
    """One participant's replica of its Task state during the replay."""

    __slots__ = (
        "rank", "gen", "clock", "busy", "msgs_sent", "bytes_sent",
        "msgs_received", "bytes_received", "done", "result",
    )

    def __init__(self, entry: "_GateEntry") -> None:
        self.rank = entry.rank
        self.gen = entry.gen
        # Absolute values snapshotted at join time, so the float
        # accumulation chains continue exactly where the task left off.
        self.clock = entry.clock0
        self.busy = entry.busy0
        self.msgs_sent = entry.sent0
        self.bytes_sent = entry.bytes_sent0
        self.msgs_received = entry.recvd0
        self.bytes_received = entry.bytes_recvd0
        self.done = False
        self.result: Any = None


class _MiniEngine:
    """Replays one collective instance with the engine's exact semantics.

    The schedule generators are driven from a FIFO seeded in *gate-arrival
    order* — the order the ranks dispatched their first collective
    instruction, which is the order the real scheduler would have started
    the message-level bodies in.  Wakes append to the same FIFO, inline
    continuations replay the engine's resolved-future short-circuit, and
    every clock/busy/counters mutation copies the arithmetic (and operation
    order — float addition is not associative) of ``Comm.isend`` /
    ``Comm._fire_match``.  Under the eligibility rules every fault
    adjustment in those code paths is the identity, so skipping them here
    is bit-exact.
    """

    __slots__ = (
        "net", "states", "_order", "_queued", "_pending", "_ready",
        "total_messages", "total_bytes", "failed_state", "failure",
        "_o_send", "_o_recv", "_latency", "_eager_max", "_min_bytes",
        "_bandwidth",
    )

    def __init__(self, net, entries: list["_GateEntry"]) -> None:
        self.net = net
        # Hoisted NetworkModel constants: the replay arithmetic below uses
        # them in exactly the expressions comm.py/timing.py evaluate, just
        # without the attribute traffic.
        self._o_send = net.o_send
        self._o_recv = net.o_recv
        self._latency = net.latency
        self._eager_max = net.eager_threshold
        self._min_bytes = net.min_message_bytes
        self._bandwidth = net.bandwidth
        self.states: dict[int, _RankState] = {}
        self._order: list[_RankState] = []
        for e in entries:
            st = _RankState(e)
            self.states[e.rank] = st
            self._order.append(st)
        # (src, dest, tagoff) -> message / pending recv.  Collective recvs
        # are always exact (no wildcards) and every schedule uses each
        # (edge, tagoff) pair at most once per instance, so a key holds at
        # most one message and plain dict slots replace mailbox lanes.
        self._queued: dict[tuple[int, int, int], tuple] = {}
        self._pending: dict[tuple[int, int, int], tuple] = {}
        self._ready: deque = deque()
        self.total_messages = 0
        self.total_bytes = 0
        self.failed_state: _RankState | None = None
        self.failure: BaseException | None = None

    def run(self) -> None:
        ready = self._ready
        for st in self._order:
            ready.append((st, None, None))
        while ready:
            st, fut, value = ready.popleft()
            if fut is not None:
                # Request.wait's resume: advance to the completion time,
                # then absorb any deferred busy charge, in that order.
                if fut.time > st.clock:
                    st.clock = fut.time
                if fut.busy_charge:
                    st.busy += fut.busy_charge
                    fut.busy_charge = 0.0
            self._step(st, value)
            if self.failure is not None:
                return

    def _step(self, st: _RankState, value: Any) -> None:
        gen = st.gen
        send = gen.send
        queued = self._queued
        while True:
            try:
                op = send(value)
            except StopIteration as stop:
                st.result = stop.value
                st.done = True
                return
            except BaseException as exc:  # noqa: BLE001 - re-raised on owner
                self.failed_state = st
                self.failure = exc
                return
            code = op[0]
            if code == "recv":
                key = (op[1], st.rank, op[2])
                msg = queued.pop(key, None)
                if msg is None:
                    fut = _MiniFut()
                    fut.waiter = st
                    self._pending[key] = (st.clock, fut, st)
                    return
                # message already queued: fire and continue inline, like
                # irecv's immediate match + Request.wait short-circuit
                value = self._fire_recv(st, st.clock, msg)
                continue
            if code == "isend" or code == "send":
                fut = self._isend(st, op[1], op[2], op[3], op[4])
                if code == "isend":
                    value = fut
                    continue
            else:  # "wait"
                fut = op[1]
            if fut.done:
                # resolved-future short-circuit: continue inline, advancing
                # to the completion time exactly like Request.wait()
                if fut.time > st.clock:
                    st.clock = fut.time
                if fut.busy_charge:
                    st.busy += fut.busy_charge
                    fut.busy_charge = 0.0
                value = fut.value
            else:
                fut.waiter = st
                return

    # -- comm.py arithmetic replicas -----------------------------------

    def _isend(self, st: _RankState, dest: int, tagoff: int,
               payload: Any, size: int | None) -> _MiniFut:
        nbytes = payload_nbytes(payload) if size is None else int(size)
        st.msgs_sent += 1
        st.bytes_sent += nbytes
        self.total_messages += 1
        self.total_bytes += nbytes
        if nbytes <= self._eager_max:  # NetworkModel.eager
            # charge(eager_send_cost) == o_send + transfer_time, one sum
            mb = self._min_bytes
            dt = self._o_send + (nbytes if nbytes > mb else mb) / self._bandwidth
            st.clock += dt
            st.busy += dt
            self._deliver(st.rank, dest, tagoff,
                          (payload, nbytes, st.clock + self._latency, None))
            return _EAGER_DONE
        fut = _MiniFut()
        o_send = self._o_send
        st.clock += o_send  # posting cost is paid now
        st.busy += o_send
        self._deliver(st.rank, dest, tagoff, (payload, nbytes, st.clock, fut))
        return fut

    def _deliver(self, src: int, dest: int, tagoff: int, msg: tuple) -> None:
        key = (src, dest, tagoff)
        p = self._pending.pop(key, None)
        if p is not None:
            post_time, fut, rst = p
            self._fire(post_time, fut, rst, msg)
        else:
            self._queued[key] = msg

    def _fire_recv(self, st: _RankState, post_time: float,
                   msg: tuple) -> Any:
        """Fire a match whose receiver is the currently-running state:
        the _fire arithmetic fused with the receiver's inline resume
        (advance to ``done_recv``), skipping the future allocation."""
        payload, nbytes, msg_time, sfut = msg
        if sfut is not None:  # rendezvous: msg_time is send_ready
            mb = self._min_bytes
            transfer = (nbytes if nbytes > mb else mb) / self._bandwidth
            start = post_time + self._o_recv
            if msg_time > start:
                start = msg_time  # max(send_ready, post_time + o_recv)
            done_recv = start + self._latency + transfer
            sfut.done = True
            sfut.time = start + transfer
            sfut.busy_charge = transfer
            if sfut.waiter is not None:
                self._ready.append((sfut.waiter, sfut, None))
                sfut.waiter = None
        else:  # eager: msg_time is the arrival
            done_recv = post_time + self._o_recv
            if msg_time > done_recv:
                done_recv = msg_time  # max(post + o_recv, arrival)
        st.msgs_received += 1
        st.bytes_received += nbytes
        st.busy += self._o_recv
        if done_recv > st.clock:
            st.clock = done_recv
        return payload

    def _fire(self, post_time: float, fut: _MiniFut, rst: _RankState,
              msg: tuple) -> None:
        # Mirrors Comm._fire_match: sender resolution strictly before the
        # receiver's counters and resolution, so wake order (and therefore
        # every downstream float-accumulation order) matches the engine.
        payload, nbytes, msg_time, sfut = msg
        if sfut is not None:  # rendezvous: msg_time is send_ready
            mb = self._min_bytes
            transfer = (nbytes if nbytes > mb else mb) / self._bandwidth
            start = post_time + self._o_recv
            if msg_time > start:
                start = msg_time  # max(send_ready, post_time + o_recv)
            done_send = start + transfer
            done_recv = start + self._latency + transfer
            sfut.done = True
            sfut.time = done_send
            sfut.busy_charge = transfer
            if sfut.waiter is not None:
                self._ready.append((sfut.waiter, sfut, None))
                sfut.waiter = None
        else:  # eager: msg_time is the arrival
            done_recv = post_time + self._o_recv
            if msg_time > done_recv:
                done_recv = msg_time  # max(post + o_recv, arrival)
        rst.msgs_received += 1
        rst.bytes_received += nbytes
        rst.busy += self._o_recv
        fut.done = True
        fut.value = payload
        fut.time = done_recv
        if fut.waiter is not None:
            self._ready.append((fut.waiter, fut, payload))
            fut.waiter = None


class _BarrierReplay:
    """Generator-free replay of the dissemination barrier.

    The barrier is the highest-message-count collective (every rank sends
    every round) and carries no payloads, so its replay needs no futures,
    no tuples and no generators: just the FIFO discipline of
    :class:`_MiniEngine` over arrays.  Every float operation matches the
    generic replay (and therefore the simulated path) exactly — the
    per-message eager charge is a constant, precomputed with the same
    expression ``eager_send_cost(0)`` evaluates.
    """

    __slots__ = ("net", "states", "_entries", "total_messages",
                 "total_bytes", "failed_state", "failure")

    def __init__(self, net, entries: list["_GateEntry"]) -> None:
        self.net = net
        self._entries = entries
        self.states: dict[int, _RankState] = {
            e.rank: _RankState(e) for e in entries
        }
        self.total_messages = 0
        self.total_bytes = 0
        self.failed_state = None
        self.failure = None

    def run(self) -> None:
        size = len(self._entries)
        states = self.states
        net = self.net
        o_recv = net.o_recv
        latency = net.latency
        # constant per-message charge: eager_send_cost(0) bit-for-bit
        dt = net.o_send + net.transfer_time(0)
        nrounds = 0
        d = 1
        while d < size:
            nrounds += 1
            d <<= 1
        self.total_messages = size * nrounds
        if nrounds and size >= _VEC_MIN_SIZE:
            np = _numpy_or_none()
            if np is not None:
                self._run_vector(np, size, nrounds, dt, o_recv, latency)
                return
        # queued[dest][round] -> arrival time; parked[rank] -> post_time of
        # the round it blocks on (round tracked in rnd[rank])
        queued: dict[tuple[int, int], float] = {}
        rnd = {}
        parked_post: dict[int, float] = {}
        ready: deque = deque()
        for e in self._entries:
            ready.append((states[e.rank], e.rank, 0, None))
        while ready:
            st, rank, round_no, resume_t = ready.popleft()
            clock = st.clock
            if resume_t is not None and resume_t > clock:
                clock = resume_t
            busy = st.busy
            dist = 1 << round_no
            while dist < size:
                to = (rank + dist) % size
                # isend(to, tag=round, size=0): charge, then deliver
                clock += dt
                busy += dt
                st.msgs_sent += 1
                arrival = clock + latency
                tst = states[to]
                if rnd.get(to) == round_no:
                    # destination already parked on this round: fire
                    del rnd[to]
                    done_recv = parked_post.pop(to) + o_recv
                    if arrival > done_recv:
                        done_recv = arrival
                    tst.msgs_received += 1
                    tst.busy += o_recv
                    ready.append((tst, to, round_no + 1, done_recv))
                else:
                    queued[(to, round_no)] = arrival
                # recv((rank - dist) % size, tag=round)
                got = queued.pop((rank, round_no), None)
                if got is None:
                    st.clock = clock
                    st.busy = busy
                    rnd[rank] = round_no
                    parked_post[rank] = clock
                    break
                done_recv = clock + o_recv
                if got > done_recv:
                    done_recv = got
                st.msgs_received += 1
                busy += o_recv
                if done_recv > clock:
                    clock = done_recv
                dist <<= 1
                round_no += 1
            else:
                st.clock = clock
                st.busy = busy
                st.done = True

    def _run_vector(self, np, size: int, nrounds: int, dt: float,
                    o_recv: float, latency: float) -> None:
        """Whole-world numpy recurrence for the dissemination barrier.

        Rank ``i`` in round ``r`` (dist ``2**r``) posts its send at
        ``S = C + dt`` and completes its recv from ``(i - dist) % size`` at
        ``max(S + o_recv, S_sender + latency)`` — exactly the two scalar
        paths above (queued and parked both reduce to that formula because
        the recv immediately follows the send, so the post time *is* ``S``).
        np.float64 elementwise ops are IEEE-identical to the CPython scalar
        chain, so the result is bit-for-bit the same.
        """
        C = np.empty(size, dtype=np.float64)
        B = np.empty(size, dtype=np.float64)
        states = self.states
        for st in states.values():
            C[st.rank] = st.clock
            B[st.rank] = st.busy
        dist = 1
        for _ in range(nrounds):
            S = C + dt
            # np.roll(A, dist)[i] == A[(i - dist) % size]: the sender's post
            C = np.maximum(S + o_recv, np.roll(S + latency, dist))
            B = (B + dt) + o_recv  # send charge then recv charge, in order
            dist <<= 1
        for st in states.values():
            r = st.rank
            st.clock = float(C[r])
            st.busy = float(B[r])
            st.msgs_sent += nrounds
            st.msgs_received += nrounds
            st.done = True


class _TreeReplay:
    """Vectorized replay of the binomial-tree collectives (bcast/reduce).

    Both schedules are round-synchronous in relative-rank space: bcast
    round ``t`` sends ``u -> u + 2**t`` for every ``u < 2**t`` (increasing
    ``t``, matching each rank's increasing-bit child order), reduce runs
    the same edges in *decreasing* ``t`` (matching the generator's
    ``reversed(binomial_children)`` fold).  Each rank's program order is a
    straight line — receives then sends for bcast, folds then one send for
    reduce — so per-round array updates reproduce the scalar clock/busy
    accumulation chains exactly.  ``run`` returns ``False`` (bail to the
    generator mini-engine) on any rendezvous-sized payload or a raising
    reduction op; the generator path then reproduces the raise with the
    engine's exact failure semantics.
    """

    __slots__ = ("net", "entries", "kind", "root", "size", "states",
                 "total_messages", "total_bytes", "failed_state", "failure")

    def __init__(self, net, entries: list["_GateEntry"], kind: str,
                 root: int, size: int) -> None:
        self.net = net
        self.entries = entries
        self.kind = kind
        self.root = root
        self.size = size
        self.states: dict[int, _RankState] = {}
        self.total_messages = 0
        self.total_bytes = 0
        self.failed_state = None
        self.failure = None

    def run(self) -> bool:
        np = _numpy_or_none()
        if np is None:
            return False
        size = self.size
        by_rank = {e.rank: e for e in self.entries}
        if len(by_rank) != size:  # pragma: no cover - gates always fill
            return False
        # relative rank u lives at comm-local rank (u + root) % size
        rel = [by_rank[(u + self.root) % size] for u in range(size)]
        if self.kind == "bcast":
            return self._run_bcast(np, rel)
        return self._run_reduce(np, rel)

    def _run_bcast(self, np, rel: list["_GateEntry"]) -> bool:
        size = self.size
        net = self.net
        value = rel[0].genargs[1]  # root's payload, shared by reference
        eager_max = net.eager_threshold
        default_nb = -1
        nbs = []
        for e in rel:
            arg = e.genargs[2]
            if arg is None:
                if default_nb < 0:
                    default_nb = payload_nbytes(value)
                nbs.append(default_nb)
            else:
                nbs.append(int(arg))
        if max(nbs) > eager_max:
            return False  # rendezvous edges: generator replay handles
        mb = net.min_message_bytes
        nb_arr = np.array(nbs, dtype=np.int64)
        # same expression _MiniEngine._isend evaluates, per sender
        dts = net.o_send + np.where(nb_arr > mb, nb_arr, mb) / net.bandwidth
        o_recv = net.o_recv
        lat = net.latency
        C = np.array([e.clock0 for e in rel], dtype=np.float64)
        B = np.array([e.busy0 for e in rel], dtype=np.float64)
        sent = np.zeros(size, dtype=np.int64)
        recvd = np.zeros(size, dtype=np.int64)
        bsent = np.zeros(size, dtype=np.int64)
        brecvd = np.zeros(size, dtype=np.int64)
        total_bytes = 0
        half = 1
        while half < size:
            n = half if size - half > half else size - half
            s = slice(0, n)
            t = slice(half, half + n)
            dt_s = dts[s]
            Cs = C[s] + dt_s  # sender posts: clock += dt
            C[s] = Cs
            # receiver's first op: done = max(clock0 + o_recv, arrival)
            C[t] = np.maximum(C[t] + o_recv, Cs + lat)
            B[t] += o_recv
            B[s] += dt_s
            sent[s] += 1
            bsent[s] += nb_arr[s]
            recvd[t] += 1
            brecvd[t] += nb_arr[s]
            total_bytes += int(nb_arr[s].sum())
            half <<= 1
        self.total_messages = size - 1
        self.total_bytes = total_bytes
        self._writeback(rel, C, B, sent, bsent, recvd, brecvd,
                        [value] * size)
        return True

    def _run_reduce(self, np, rel: list["_GateEntry"]) -> bool:
        size = self.size
        net = self.net
        eager_max = net.eager_threshold
        acc = [e.genargs[1] for e in rel]
        ops = [e.genargs[2] for e in rel]
        nbargs = [e.genargs[3] for e in rel]
        halves = []
        half = 1
        while half < size:
            halves.append(half)
            half <<= 1
        halves.reverse()  # decreasing distance == reversed(children) fold
        # Data-plane pre-pass: fold accumulators and record per-edge byte
        # counts in the exact per-receiver fold order.  A raising op bails
        # to the generator replay, which re-runs the ops from scratch and
        # reproduces the failure on the right rank.
        nb_rounds = []
        for half in halves:
            n = half if size - half > half else size - half
            nbs = np.empty(n, dtype=np.int64)
            for u in range(n):
                v = u + half
                arg = nbargs[v]
                nb = payload_nbytes(acc[v]) if arg is None else int(arg)
                if nb > eager_max:
                    return False
                nbs[u] = nb
                try:
                    acc[u] = ops[u](acc[v], acc[u])
                except BaseException:  # noqa: BLE001 - replayed by generators
                    return False
            nb_rounds.append(nbs)
        mb = net.min_message_bytes
        bw = net.bandwidth
        o_send = net.o_send
        o_recv = net.o_recv
        lat = net.latency
        C = np.array([e.clock0 for e in rel], dtype=np.float64)
        B = np.array([e.busy0 for e in rel], dtype=np.float64)
        sent = np.zeros(size, dtype=np.int64)
        recvd = np.zeros(size, dtype=np.int64)
        bsent = np.zeros(size, dtype=np.int64)
        brecvd = np.zeros(size, dtype=np.int64)
        total_bytes = 0
        for i, half in enumerate(halves):
            n = half if size - half > half else size - half
            u = slice(0, n)
            v = slice(half, half + n)
            nbs = nb_rounds[i]
            dt_v = o_send + np.where(nbs > mb, nbs, mb) / bw
            Cv = C[v] + dt_v  # sender finished folding; send charge
            C[v] = Cv
            C[u] = np.maximum(C[u] + o_recv, Cv + lat)
            B[u] += o_recv
            B[v] += dt_v
            sent[v] += 1
            bsent[v] += nbs
            recvd[u] += 1
            brecvd[u] += nbs
            total_bytes += int(nbs.sum())
        self.total_messages = size - 1
        self.total_bytes = total_bytes
        results: list[Any] = [None] * size
        results[0] = acc[0]  # only the root returns the reduction
        self._writeback(rel, C, B, sent, bsent, recvd, brecvd, results)
        return True

    def _writeback(self, rel, C, B, sent, bsent, recvd, brecvd,
                   results) -> None:
        states = self.states
        for i, e in enumerate(rel):
            st = _RankState(e)
            st.clock = float(C[i])
            st.busy = float(B[i])
            st.msgs_sent = e.sent0 + int(sent[i])
            st.bytes_sent = e.bytes_sent0 + int(bsent[i])
            st.msgs_received = e.recvd0 + int(recvd[i])
            st.bytes_received = e.bytes_recvd0 + int(brecvd[i])
            st.result = results[i]
            st.done = True
            states[st.rank] = st


def _run_replay(kind: str, root: int | None, net,
                entries: list["_GateEntry"], size: int):
    """Run one gate instance through the cheapest bit-exact replay.

    Barrier takes the dedicated array replay; large bcast/reduce try the
    vectorized tree replay and bail to the generator mini-engine on
    rendezvous-sized payloads or raising reduction ops; everything else
    drives the schedule generators.  Generators are only built when the
    generator path actually runs.  Shared by the single-process gate and
    the sharded engine's owner-shard replay.
    """
    if kind == "barrier":
        sim = _BarrierReplay(net, entries)
        sim.run()
        return sim
    if size >= _VEC_MIN_SIZE and (kind == "bcast" or kind == "reduce"):
        tree = _TreeReplay(net, entries, kind, root, size)
        if tree.run():
            return tree
    factory = _GEN_FACTORIES[kind]
    for e in entries:
        if e.gen is None:
            e.gen = factory(e.rank, size, *e.genargs)
    sim = _MiniEngine(net, entries)
    sim.run()
    return sim


class _Raised:
    """Wrapper carrying a mini-engine exception back to its owning rank."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class _GateEntry:
    """One rank's registration at a gate: its generator plus a snapshot of
    the task state at join time (fault-timeout releases can move the task
    on before the gate completes, so live reads would be stale)."""

    __slots__ = (
        "rank", "task", "fut", "gen", "genargs", "clock0", "busy0", "sent0",
        "bytes_sent0", "recvd0", "bytes_recvd0",
    )

    def __init__(self, rank, task, fut, gen, genargs=()):
        self.rank = rank
        self.task = task
        self.fut = fut
        # The schedule generator is built lazily at replay time: the
        # barrier/tree replays never drive generators at all, so deferring
        # construction skips P generator allocations per gate on the
        # hottest collectives.
        self.gen = gen
        self.genargs = genargs
        self.clock0 = task.clock
        self.busy0 = task.busy
        self.sent0 = task.msgs_sent
        self.bytes_sent0 = task.bytes_sent
        self.recvd0 = task.msgs_received
        self.bytes_recvd0 = task.bytes_received


class _CollGate:
    """Rendezvous point for one collective instance on one communicator.

    The first arriving rank computes the fast-vs-simulated verdict
    (``reason`` is ``None`` for fast, else the fallback tag); the verdict
    is cached so every participant takes the same path.  Fast joiners
    register a :class:`_GateEntry` and park on a ``coll`` future; the last
    arrival replays the whole instance through the mini-engine and resolves
    everyone in one bulk advance.
    """

    __slots__ = ("kind", "root", "reason", "expected", "consulted", "entries")

    def __init__(self, kind: str, root: int | None, reason: str | None,
                 expected: int) -> None:
        self.kind = kind
        self.root = root
        self.reason = reason
        self.expected = expected
        self.consulted = 0
        self.entries: list[_GateEntry] = []

    def complete(self, comm: "Communicator") -> None:
        ctx = comm.context
        engine = comm.engine
        sim = _run_replay(self.kind, self.root, engine.network,
                          self.entries, self.expected)
        engine.total_messages += sim.total_messages
        engine.total_bytes += sim.total_bytes
        if sim.failure is not None:
            # A reduction op (or similar user callable) raised inside the
            # replay: surface it on the rank that would have raised in the
            # simulated path.  Peers stay parked — without faults the run
            # aborts on that rank's TaskFailedError exactly like the
            # simulated path; with faults the op-timeout backstop releases
            # them, as it releases any rank orphaned mid-collective.
            st = sim.failed_state
            entry = next(e for e in self.entries if e.rank == st.rank)
            task = entry.task
            task.clock = st.clock
            task.busy = st.busy
            task.msgs_sent = st.msgs_sent
            task.bytes_sent = st.bytes_sent
            task.msgs_received = st.msgs_received
            task.bytes_received = st.bytes_received
            engine.wave_resolve(
                [(entry.fut, _Raised(sim.failure), st.clock)]
            )
            return
        ins = engine.instrument
        emit = ins.enabled
        alg = _ALGORITHMS[self.kind]
        resolutions = []
        for entry in sorted(self.entries, key=lambda e: e.rank):
            if entry.fut.done:
                # Released by a fault timeout while parked: the task
                # already moved on with LOST at the release time; its
                # replayed state must not overwrite the real one.
                continue
            st = sim.states[entry.rank]
            task = entry.task
            task.clock = st.clock
            task.busy = st.busy
            task.msgs_sent = st.msgs_sent
            task.bytes_sent = st.bytes_sent
            task.msgs_received = st.msgs_received
            task.bytes_received = st.bytes_received
            if emit:
                world = ctx.ranks[entry.rank]
                ins.span(
                    world, self.kind, "coll", entry.clock0, st.clock,
                    {"algorithm": alg, "comm": ctx.id, "size": ctx.size},
                )
                ins.metrics.count("coll/calls", 1, rank=world,
                                  op=self.kind, t=st.clock)
                ins.metrics.count("coll/time", st.clock - entry.clock0,
                                  rank=world, op=self.kind, t=st.clock)
                ins.metrics.count("coll/fast_hits", 1, rank=world,
                                  op=self.kind, t=st.clock)
            resolutions.append((entry.fut, st.result, st.clock))
        engine.wave_resolve(resolutions)


class Communicator(Comm):
    """A :class:`Comm` with collective operations attached.

    Public collective methods are thin dispatchers: they consult the
    instance's :class:`_CollGate` and either join the macro fast path or
    run the message-level ``_*_sim`` body.  ``allreduce``, ``split`` and
    ``dup`` are compositions of the leaf collectives and need no dispatch
    of their own.
    """

    # -- internal helpers ----------------------------------------------------

    def _claim_tags(self) -> int:
        """Reserve a tag window for one collective instance.

        Windows start well above MAX_USER_TAG (tags 1..1023 above it are
        reserved for tool traffic such as trace shipping).
        """
        seq = self.context.coll_seq[self.rank]
        self.context.coll_seq[self.rank] = seq + 1
        self.task.collectives += 1
        return MAX_USER_TAG + 1024 + seq * _TAG_STRIDE

    def _fallback_reason(self, seq: int) -> str | None:
        """Why collective instance ``seq`` must take the simulated path
        (``None`` = the fast path is safe).  Evaluated once per instance by
        the first arriving rank; every input is either static for the whole
        run or can only strand the verdict on the safe (fallback) side."""
        engine = self.engine
        if engine.collectives != "fast":
            return "disabled"
        if engine.matching != "indexed":
            return "linear-matching"
        ins = engine.instrument
        if ins.enabled and ins.granularity != "span":
            return "message-tracing"
        ctx = self.context
        reason = engine.faults.collective_fallback_reason(ctx.ranks)
        if reason is not None:
            return reason
        base = MAX_USER_TAG + 1024 + seq * _TAG_STRIDE
        hi = base + _TAG_STRIDE
        for mbox in ctx._mailboxes.values():
            if mbox.has_tag_window(base, hi):
                return "tag-window"
        return None

    def _consult_gate(self, kind: str, root: int | None) -> _CollGate | None:
        """Join the decision gate for this rank's next collective instance.

        Returns the gate when the instance runs on the fast path, or
        ``None`` when this rank must run the message-level body.  The
        verdict is computed once (first arrival) and cached, so all ranks
        of one instance always take the same path.
        """
        ctx = self.context
        seq = ctx.coll_seq[self.rank]
        gate = ctx._gates.get(seq)
        if gate is None:
            gate = _CollGate(kind, root, self._fallback_reason(seq), ctx.size)
            ctx._gates[seq] = gate
        elif gate.kind != kind or gate.root != root:
            raise CollectiveMismatchError(
                f"rank {self.rank} called {kind}(root={root}) as collective "
                f"#{seq} but other ranks are in "
                f"{gate.kind}(root={gate.root})"
            )
        gate.consulted += 1
        if gate.consulted == ctx.size:
            del ctx._gates[seq]
        if gate.reason is None:
            return gate
        engine = self.engine
        engine.collectives_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "coll/fallbacks", 1, rank=self.world_rank(self.rank),
                op=f"{kind}:{gate.reason}", t=self.task.clock,
            )
        return None

    async def _join_fast(self, gate: _CollGate, genargs: tuple) -> Any:
        """Register this rank on ``gate`` and await the bulk advance."""
        ctx = self.context
        task = self.task
        seq = ctx.coll_seq[self.rank]
        # Mirror _claim_tags' bookkeeping so fast and simulated instances
        # interleave freely on one communicator (windows stay aligned).
        ctx.coll_seq[self.rank] = seq + 1
        task.collectives += 1
        self.engine.collectives_fast += 1
        fut = SimFuture(
            kind="coll", tag=seq, dest=ctx.ranks[self.rank], comm=ctx.id,
            post_time=task.clock,
        )
        gate.entries.append(_GateEntry(self.rank, task, fut, None, genargs))
        if len(gate.entries) == gate.expected:
            gate.complete(self)
        result = await fut
        task.advance_to(fut.time)
        if type(result) is _Raised:
            raise result.exc
        return result

    # -- collectives ---------------------------------------------------------

    async def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 P) rounds of paired messages."""
        gate = self._consult_gate("barrier", None)
        if gate is None:
            return await self._barrier_sim()
        return await self._join_fast(gate, ())

    @_observed("barrier", "dissemination")
    async def _barrier_sim(self) -> None:
        size = self.size
        base = self._claim_tags()
        if size == 1:
            return
        round_no = 0
        dist = 1
        while dist < size:
            to = (self.rank + dist) % size
            frm = (self.rank - dist) % size
            sreq = self.isend(to, None, tag=base + round_no, size=0)
            await self.recv(frm, tag=base + round_no)
            await sreq.wait()
            dist <<= 1
            round_no += 1

    async def bcast(self, value: Any, root: int = 0, size: int | None = None) -> Any:
        """Binomial-tree broadcast; returns the value on every rank."""
        self._check_peer(root, "root")
        gate = self._consult_gate("bcast", root)
        if gate is None:
            return await self._bcast_sim(value, root, size)
        return await self._join_fast(gate, (root, value, size))

    @_observed("bcast", "binomial-tree")
    async def _bcast_sim(self, value: Any, root: int, size: int | None) -> Any:
        base = self._claim_tags()
        if self.size == 1:
            return value
        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            value = await self.recv(parent, tag=base)
        for child in binomial_children(self.rank, self.size, root):
            await self.send(child, value, tag=base, size=size)
        return value

    async def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = SUM,
        root: int = 0,
        size: int | None = None,
    ) -> Any:
        """Binomial-tree reduction; the result is returned on ``root`` only
        (other ranks get ``None``), matching ``MPI_Reduce``."""
        self._check_peer(root, "root")
        gate = self._consult_gate("reduce", root)
        if gate is None:
            return await self._reduce_sim(value, op, root, size)
        return await self._join_fast(gate, (root, value, op, size))

    @_observed("reduce", "binomial-tree")
    async def _reduce_sim(
        self, value: Any, op: Callable[[Any, Any], Any], root: int,
        size: int | None,
    ) -> Any:
        base = self._claim_tags()
        if self.size == 1:
            return value
        # Children in the bcast tree are exactly the senders in the reduce
        # tree; fold deepest-first for determinism.  LOST contributions
        # (fault holes from a crashed subtree) are skipped: the reduction
        # completes over the values that actually arrived.
        acc = value
        for child in reversed(binomial_children(self.rank, self.size, root)):
            child_val = await self.recv(child, tag=base)
            if child_val is LOST:
                continue
            acc = child_val if acc is LOST else op(child_val, acc)
        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            await self.send(parent, acc, tag=base, size=size)
            return None
        return acc

    @_observed("allreduce", "reduce+bcast")
    async def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = SUM,
        size: int | None = None,
    ) -> Any:
        """Reduce to rank 0 followed by broadcast; all ranks get the result."""
        reduced = await self.reduce(value, op=op, root=0, size=size)
        return await self.bcast(reduced, root=0, size=size)

    async def gather(
        self, value: Any, root: int = 0, size: int | None = None
    ) -> list[Any] | None:
        """Binomial-tree gather; ``root`` returns the rank-ordered list."""
        self._check_peer(root, "root")
        gate = self._consult_gate("gather", root)
        if gate is None:
            return await self._gather_sim(value, root, size)
        return await self._join_fast(gate, (root, value, size))

    @_observed("gather", "binomial-tree")
    async def _gather_sim(
        self, value: Any, root: int, size: int | None
    ) -> list[Any] | None:
        base = self._claim_tags()
        if self.size == 1:
            return [value]
        segment: dict[int, Any] = {self.rank: value}
        for child in reversed(binomial_children(self.rank, self.size, root)):
            child_seg: dict[int, Any] = await self.recv(child, tag=base)
            if child_seg is LOST:
                continue  # fault hole: that subtree's values are gone
            segment.update(child_seg)
        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            seg_size = None if size is None else size * len(segment)
            await self.send(parent, segment, tag=base, size=seg_size)
            return None
        if len(segment) != self.size:
            if self.engine.faults.active:
                # complete-with-holes: missing contributions become LOST
                return [segment.get(r, LOST) for r in range(self.size)]
            raise CollectiveMismatchError(  # pragma: no cover - invariant
                f"gather assembled {len(segment)} of {self.size} values"
            )
        return [segment[r] for r in range(self.size)]

    async def scatter(
        self, values: Sequence[Any] | None, root: int = 0, size: int | None = None
    ) -> Any:
        """Binomial-tree scatter; each rank returns its element of ``values``."""
        self._check_peer(root, "root")
        gate = self._consult_gate("scatter", root)
        if gate is None:
            return await self._scatter_sim(values, root, size)
        if self.rank == root and (values is None or len(values) != self.size):
            # Raised before joining so a bad root cannot strand its peers
            # in the gate; same error the simulated body raises.
            raise CollectiveMismatchError(
                "scatter needs one value per rank" if self.size == 1
                else "scatter root must supply exactly one value per rank"
            )
        return await self._join_fast(gate, (root, values, size))

    @_observed("scatter", "binomial-tree")
    async def _scatter_sim(
        self, values: Sequence[Any] | None, root: int, size: int | None
    ) -> Any:
        base = self._claim_tags()
        if self.size == 1:
            if values is None or len(values) != 1:
                raise CollectiveMismatchError("scatter needs one value per rank")
            return values[0]
        parent = binomial_parent(self.rank, self.size, root)
        if parent is None:
            if values is None or len(values) != self.size:
                raise CollectiveMismatchError(
                    "scatter root must supply exactly one value per rank"
                )
            segment = {r: values[r] for r in range(self.size)}
        else:
            segment = await self.recv(parent, tag=base)
            if segment is LOST:
                segment = {}  # fault hole: nothing reached this subtree

        # Each child owns the contiguous block of tree descendants; compute
        # membership by walking the binomial structure.
        for child in binomial_children(self.rank, self.size, root):
            members = binomial_subtree(child, self.size, root)
            child_seg = {r: segment[r] for r in members if r in segment}
            seg_size = None if size is None else size * max(len(child_seg), 1)
            await self.send(child, child_seg, tag=base, size=seg_size)
        if self.rank not in segment:
            return LOST  # reachable only through a fault hole upstream
        return segment[self.rank]

    async def allgather(self, value: Any, size: int | None = None) -> list[Any]:
        """Ring allgather: P-1 steps, each forwarding the next segment."""
        gate = self._consult_gate("allgather", None)
        if gate is None:
            return await self._allgather_sim(value, size)
        return await self._join_fast(gate, (value, size))

    @_observed("allgather", "ring")
    async def _allgather_sim(self, value: Any, size: int | None) -> list[Any]:
        base = self._claim_tags()
        out: list[Any] = [None] * self.size
        out[self.rank] = value
        if self.size == 1:
            return out
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        carry_rank, carry = self.rank, value
        for step in range(self.size - 1):
            sreq = self.isend(right, (carry_rank, carry), tag=base + step, size=size)
            got = await self.recv(left, tag=base + step)
            await sreq.wait()
            if got is LOST:
                # fault hole: forward the hole so every rank learns the
                # same segment is missing, keep our own slots intact
                carry_rank, carry = None, LOST
                continue
            carry_rank, carry = got
            if carry_rank is not None:
                out[carry_rank] = carry
        return out

    async def alltoall(
        self, values: Sequence[Any], size: int | None = None
    ) -> list[Any]:
        """Pairwise-exchange all-to-all; ``values[i]`` goes to rank ``i``."""
        if len(values) != self.size:
            raise CollectiveMismatchError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )
        gate = self._consult_gate("alltoall", None)
        if gate is None:
            return await self._alltoall_sim(values, size)
        return await self._join_fast(gate, (values, size))

    @_observed("alltoall", "pairwise-exchange")
    async def _alltoall_sim(
        self, values: Sequence[Any], size: int | None
    ) -> list[Any]:
        base = self._claim_tags()
        out: list[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for step in range(1, self.size):
            to = (self.rank + step) % self.size
            frm = (self.rank - step) % self.size
            sreq = self.isend(to, values[to], tag=base + step, size=size)
            out[frm] = await self.recv(frm, tag=base + step)
            await sreq.wait()
        return out

    async def scan(
        self, value: Any, op: Callable[[Any, Any], Any] = SUM, size: int | None = None
    ) -> Any:
        """Inclusive prefix scan (linear chain, like small-P MPI_Scan)."""
        gate = self._consult_gate("scan", None)
        if gate is None:
            return await self._scan_sim(value, op, size)
        return await self._join_fast(gate, (value, op, size))

    @_observed("scan", "linear-chain")
    async def _scan_sim(
        self, value: Any, op: Callable[[Any, Any], Any], size: int | None
    ) -> Any:
        base = self._claim_tags()
        acc = value
        if self.rank > 0:
            prev = await self.recv(self.rank - 1, tag=base)
            if prev is not LOST:
                acc = op(prev, value)
        if self.rank < self.size - 1:
            await self.send(self.rank + 1, acc, tag=base, size=size)
        return acc

    # -- communicator construction ----------------------------------------

    @_observed("split", "gather+bcast")
    async def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Collective split; returns the new communicator (None if color<0)."""
        key = self.rank if key is None else key
        triples = await self.gather((color, key, self.rank), root=0)
        contexts: dict[int, CommContext] | None = None
        if self.rank == 0:
            assert triples is not None
            groups: dict[int, list[tuple[int, int]]] = {}
            for triple in triples:
                if triple is LOST:
                    continue  # fault hole: that rank cannot join any group
                c, k, r = triple
                if c >= 0:
                    groups.setdefault(c, []).append((k, r))
            contexts = {}
            for c in sorted(groups):
                members = [r for _k, r in sorted(groups[c])]
                contexts[c] = CommContext(self.engine, [self.world_rank(m) for m in members])
        contexts = await self.bcast(contexts, root=0)
        if color < 0:
            return None
        ctx = contexts[color]
        my_world = self.world_rank(self.rank)
        local_rank = ctx.local_of[my_world]
        return Communicator(ctx, local_rank, self.task)

    @_observed("dup", "gather+bcast")
    async def dup(self) -> "Communicator":
        """Collective duplicate: a congruent communicator with fresh state."""
        new = await self.split(color=0, key=self.rank)
        assert new is not None
        return new

    # -- declared p2p patterns (macro p2p fast path) -----------------------

    async def exchange(
        self,
        pattern: NeighborPattern,
        *,
        compute: Callable[[float], Any] | None = None,
    ) -> None:
        """Run one declared regular exchange (collective over the comm).

        Every rank must call ``exchange`` with an equal pattern (same
        content key) in the same program position.  Eligible instances
        resolve through the macro p2p gate — one bulk clock advance, no
        mailbox traffic; ineligible ones (and runs under
        ``SimConfig(p2p="simulated")``) drive this rank's declared ops
        through the ordinary message-level path instead.  Bit-identical
        virtual time either way.

        ``compute`` (pass ``ctx.compute``) is used by the fallback to
        charge the pattern's ``("compute", s)`` ops, which keeps fault
        compute-factor draws aligned with the undeclared body; the gate
        replay charges them directly (fault plans force the fallback, so
        the factors are the identity whenever the gate runs).
        """
        if pattern.size != self.size:
            raise PatternMismatchError(
                f"pattern {pattern.name!r} declares {pattern.size} ranks "
                f"but communicator {self.context.id} has {self.size}"
            )
        gate = self._consult_p2p_gate(pattern)
        if gate is None:
            return await self._drive_pattern(pattern, compute)
        return await self._join_p2p_fast(gate, pattern, compute)

    def _p2p_traffic_reason(self) -> str | None:
        """Mailbox-state eligibility: the gate may only bypass matching
        when nothing is queued or posted anywhere on this communicator
        (only materialized mailboxes are visited, so an idle communicator
        costs nothing to scan)."""
        for mbox in self.context._mailboxes.values():
            if mbox.has_wild_pending():
                return "pending-wildcard"
            if mbox.has_pending():
                return "pending-recv"
            if mbox.has_queued():
                return "queued-traffic"
        return None

    def _p2p_fallback_reason(self) -> str | None:
        """Why this exchange instance must take the message-level path
        (``None`` = the gate is safe), evaluated by the first arrival."""
        engine = self.engine
        if engine.p2p != "fast":
            return "disabled"
        if engine.matching != "indexed":
            return "linear-matching"
        ins = engine.instrument
        if ins.enabled and ins.granularity != "span":
            return "message-tracing"
        if engine.faults.active:
            # Any armed plan falls back — message/link faults perturb p2p
            # directly, and compute factors are keyed to a per-rank draw
            # sequence only the real ``ctx.compute`` path advances.
            return "faults"
        return self._p2p_traffic_reason()

    def _consult_p2p_gate(self, pattern: NeighborPattern) -> _P2PGate | None:
        """Join the decision gate for this rank's next exchange instance.

        Returns the gate when the instance runs on the fast path, or
        ``None`` when this rank must drive the message-level body.
        Unlike the collective gate, the verdict is *re-checked* at every
        arrival: traffic posted between arrivals (by ranks still short of
        their exchange call) could interleave with the pattern's
        messages, so a dirty mailbox scan aborts the gate and releases
        the already-parked ranks to the message-level path at their join
        clocks.
        """
        ctx = self.context
        seq = ctx.p2p_seq[self.rank]
        ctx.p2p_seq[self.rank] = seq + 1
        gate = ctx._p2p_gates.get(seq)
        if gate is None:
            gate = _P2PGate(pattern, seq, self._p2p_fallback_reason(),
                            ctx.size)
            ctx._p2p_gates[seq] = gate
        elif gate.key != pattern.key:
            raise PatternMismatchError(
                f"rank {self.rank} called exchange({pattern.name!r}) as p2p "
                f"instance #{seq} but other ranks are in {gate.name!r}"
            )
        elif gate.reason is None and self._p2p_traffic_reason() is not None:
            gate.abort(self.engine, "mid-phase-traffic")
        gate.consulted += 1
        if gate.consulted == ctx.size:
            del ctx._p2p_gates[seq]
        if gate.reason is None:
            return gate
        engine = self.engine
        engine.p2p_simulated += 1
        ins = engine.instrument
        if ins.enabled:
            ins.metrics.count(
                "p2p/fallbacks", 1, rank=self.world_rank(self.rank),
                op=f"{pattern.name}:{gate.reason}", t=self.task.clock,
            )
        return None

    async def _join_p2p_fast(
        self,
        gate: _P2PGate,
        pattern: NeighborPattern,
        compute: Callable[[float], Any] | None,
    ) -> None:
        """Register this rank on ``gate`` and await the bulk advance."""
        ctx = self.context
        task = self.task
        fut = SimFuture(
            kind="p2p", tag=gate.seq, dest=ctx.ranks[self.rank],
            comm=ctx.id, post_time=task.clock,
        )
        gate.entries.append(_P2PEntry(self.rank, task, fut))
        if len(gate.entries) == gate.expected:
            resolve_p2p_gate(self, pattern, gate)
        result = await fut
        task.advance_to(fut.time)
        if result is RUN_SIM:
            # Aborted mid-phase: rerun from the join clock (parking cost
            # nothing in virtual time) on the message-level path.
            engine = self.engine
            engine.p2p_simulated += 1
            ins = engine.instrument
            if ins.enabled:
                ins.metrics.count(
                    "p2p/fallbacks", 1, rank=self.world_rank(self.rank),
                    op=f"{pattern.name}:{gate.reason}", t=task.clock,
                )
            await self._drive_pattern(pattern, compute)

    async def _drive_pattern(
        self,
        pattern: NeighborPattern,
        compute: Callable[[float], Any] | None,
    ) -> None:
        """Message-level reference: run this rank's declared ops through
        the ordinary isend/send/recv/wait primitives (also the
        ``p2p="simulated"`` path and the bit-identity oracle)."""
        task = self.task
        reqs: list[Any] = []
        for op in pattern.ops[self.rank]:
            if op is None:
                continue
            code = op[0]
            if code == "isend":
                reqs.append(self.isend(op[1], None, tag=op[2], size=op[3]))
            elif code == "send":
                await self.send(op[1], None, tag=op[2], size=op[3])
            elif code == "recv":
                await self.recv(op[1], tag=op[2])
            elif code == "wait":
                await reqs[op[1]].wait()
            elif compute is not None:
                compute(op[1])
            else:
                task.charge(op[1])
