"""Collective operations built from point-to-point messages.

Each collective is implemented with the classic algorithm an MPI library
would use, so its virtual-time cost has the right shape automatically:

* ``barrier``      — dissemination, ``ceil(log2 P)`` rounds
* ``bcast``        — binomial tree, ``ceil(log2 P)`` rounds
* ``reduce``       — binomial tree (leaves fold upward)
* ``allreduce``    — reduce + bcast
* ``gather``       — binomial tree with growing segments
* ``scatter``      — binomial tree with shrinking segments
* ``allgather``    — ring, ``P - 1`` steps
* ``alltoall``     — pairwise exchange, ``P - 1`` steps
* ``split``/``dup``— communicator construction via gather + bcast

Every collective instance claims a private tag window derived from the
caller's per-communicator collective sequence number; SPMD programs call
collectives in the same order on every rank, which keeps the windows
aligned (the same assumption a real MPI library makes about matching
collective calls).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Sequence

from ..faults.injector import LOST
from .comm import Comm, CommContext, MAX_USER_TAG
from .errors import CollectiveMismatchError

# -- reduction operators -----------------------------------------------------


def SUM(a: Any, b: Any) -> Any:
    return a + b


def PROD(a: Any, b: Any) -> Any:
    return a * b


def MAX(a: Any, b: Any) -> Any:
    import numpy as np

    if hasattr(a, "shape") or hasattr(b, "shape"):
        return np.maximum(a, b)
    return a if a >= b else b


def MIN(a: Any, b: Any) -> Any:
    import numpy as np

    if hasattr(a, "shape") or hasattr(b, "shape"):
        return np.minimum(a, b)
    return a if a <= b else b


def LOR(a: Any, b: Any) -> Any:
    return bool(a) or bool(b)


def LAND(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def BOR(a: Any, b: Any) -> Any:
    return a | b


#: Tags per collective instance: room for log2(P) rounds plus ring steps.
_TAG_STRIDE = 4096


def _observed(name: str, algorithm: str):
    """Wrap a collective so its whole execution becomes one span on the
    caller's lane (cat ``coll``), tagged with the algorithm the simulated
    MPI library would have used.  With the no-op instrument the wrapper is
    a single attribute check — virtual time is untouched either way."""

    def deco(fn):
        @functools.wraps(fn)
        async def wrapper(self: "Communicator", *args: Any, **kwargs: Any):
            ins = self.engine.instrument
            if not ins.enabled:
                return await fn(self, *args, **kwargs)
            t0 = self.task.clock
            result = await fn(self, *args, **kwargs)
            t1 = self.task.clock
            world = self.world_rank(self.rank)
            ins.span(
                world, name, "coll", t0, t1,
                {"algorithm": algorithm, "comm": self.context.id,
                 "size": self.size},
            )
            ins.metrics.count("coll/calls", 1, rank=world, op=name, t=t1)
            ins.metrics.count("coll/time", t1 - t0, rank=world, op=name, t=t1)
            return result

        return wrapper

    return deco


class Communicator(Comm):
    """A :class:`Comm` with collective operations attached."""

    # -- internal helpers ----------------------------------------------------

    def _claim_tags(self) -> int:
        """Reserve a tag window for one collective instance.

        Windows start well above MAX_USER_TAG (tags 1..1023 above it are
        reserved for tool traffic such as trace shipping).
        """
        seq = self.context.coll_seq[self.rank]
        self.context.coll_seq[self.rank] = seq + 1
        self.task.collectives += 1
        return MAX_USER_TAG + 1024 + seq * _TAG_STRIDE

    # -- collectives ---------------------------------------------------------

    @_observed("barrier", "dissemination")
    async def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 P) rounds of paired messages."""
        size = self.size
        base = self._claim_tags()
        if size == 1:
            return
        round_no = 0
        dist = 1
        while dist < size:
            to = (self.rank + dist) % size
            frm = (self.rank - dist) % size
            sreq = self.isend(to, None, tag=base + round_no, size=0)
            await self.recv(frm, tag=base + round_no)
            await sreq.wait()
            dist <<= 1
            round_no += 1

    @_observed("bcast", "binomial-tree")
    async def bcast(self, value: Any, root: int = 0, size: int | None = None) -> Any:
        """Binomial-tree broadcast; returns the value on every rank."""
        self._check_peer(root, "root")
        base = self._claim_tags()
        if self.size == 1:
            return value
        from .topology import binomial_children, binomial_parent

        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            value = await self.recv(parent, tag=base)
        for child in binomial_children(self.rank, self.size, root):
            await self.send(child, value, tag=base, size=size)
        return value

    @_observed("reduce", "binomial-tree")
    async def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = SUM,
        root: int = 0,
        size: int | None = None,
    ) -> Any:
        """Binomial-tree reduction; the result is returned on ``root`` only
        (other ranks get ``None``), matching ``MPI_Reduce``."""
        self._check_peer(root, "root")
        base = self._claim_tags()
        if self.size == 1:
            return value
        from .topology import binomial_children, binomial_parent

        # Children in the bcast tree are exactly the senders in the reduce
        # tree; fold deepest-first for determinism.  LOST contributions
        # (fault holes from a crashed subtree) are skipped: the reduction
        # completes over the values that actually arrived.
        acc = value
        for child in reversed(binomial_children(self.rank, self.size, root)):
            child_val = await self.recv(child, tag=base)
            if child_val is LOST:
                continue
            acc = child_val if acc is LOST else op(child_val, acc)
        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            await self.send(parent, acc, tag=base, size=size)
            return None
        return acc

    @_observed("allreduce", "reduce+bcast")
    async def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = SUM,
        size: int | None = None,
    ) -> Any:
        """Reduce to rank 0 followed by broadcast; all ranks get the result."""
        reduced = await self.reduce(value, op=op, root=0, size=size)
        return await self.bcast(reduced, root=0, size=size)

    @_observed("gather", "binomial-tree")
    async def gather(
        self, value: Any, root: int = 0, size: int | None = None
    ) -> list[Any] | None:
        """Binomial-tree gather; ``root`` returns the rank-ordered list."""
        self._check_peer(root, "root")
        base = self._claim_tags()
        if self.size == 1:
            return [value]
        from .topology import binomial_children, binomial_parent

        segment: dict[int, Any] = {self.rank: value}
        for child in reversed(binomial_children(self.rank, self.size, root)):
            child_seg: dict[int, Any] = await self.recv(child, tag=base)
            if child_seg is LOST:
                continue  # fault hole: that subtree's values are gone
            segment.update(child_seg)
        parent = binomial_parent(self.rank, self.size, root)
        if parent is not None:
            seg_size = None if size is None else size * len(segment)
            await self.send(parent, segment, tag=base, size=seg_size)
            return None
        if len(segment) != self.size:
            if self.engine.faults.active:
                # complete-with-holes: missing contributions become LOST
                return [segment.get(r, LOST) for r in range(self.size)]
            raise CollectiveMismatchError(  # pragma: no cover - invariant
                f"gather assembled {len(segment)} of {self.size} values"
            )
        return [segment[r] for r in range(self.size)]

    @_observed("scatter", "binomial-tree")
    async def scatter(
        self, values: Sequence[Any] | None, root: int = 0, size: int | None = None
    ) -> Any:
        """Binomial-tree scatter; each rank returns its element of ``values``."""
        self._check_peer(root, "root")
        base = self._claim_tags()
        if self.size == 1:
            if values is None or len(values) != 1:
                raise CollectiveMismatchError("scatter needs one value per rank")
            return values[0]
        from .topology import binomial_children, binomial_parent

        parent = binomial_parent(self.rank, self.size, root)
        if parent is None:
            if values is None or len(values) != self.size:
                raise CollectiveMismatchError(
                    "scatter root must supply exactly one value per rank"
                )
            segment = {r: values[r] for r in range(self.size)}
        else:
            segment = await self.recv(parent, tag=base)
            if segment is LOST:
                segment = {}  # fault hole: nothing reached this subtree

        # Each child owns the contiguous block of tree descendants; compute
        # membership by walking the binomial structure.
        for child in binomial_children(self.rank, self.size, root):
            members = _binomial_subtree(child, self.size, root)
            child_seg = {r: segment[r] for r in members if r in segment}
            seg_size = None if size is None else size * max(len(child_seg), 1)
            await self.send(child, child_seg, tag=base, size=seg_size)
        if self.rank not in segment:
            return LOST  # reachable only through a fault hole upstream
        return segment[self.rank]

    @_observed("allgather", "ring")
    async def allgather(self, value: Any, size: int | None = None) -> list[Any]:
        """Ring allgather: P-1 steps, each forwarding the next segment."""
        base = self._claim_tags()
        out: list[Any] = [None] * self.size
        out[self.rank] = value
        if self.size == 1:
            return out
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        carry_rank, carry = self.rank, value
        for step in range(self.size - 1):
            sreq = self.isend(right, (carry_rank, carry), tag=base + step, size=size)
            got = await self.recv(left, tag=base + step)
            await sreq.wait()
            if got is LOST:
                # fault hole: forward the hole so every rank learns the
                # same segment is missing, keep our own slots intact
                carry_rank, carry = None, LOST
                continue
            carry_rank, carry = got
            if carry_rank is not None:
                out[carry_rank] = carry
        return out

    @_observed("alltoall", "pairwise-exchange")
    async def alltoall(
        self, values: Sequence[Any], size: int | None = None
    ) -> list[Any]:
        """Pairwise-exchange all-to-all; ``values[i]`` goes to rank ``i``."""
        if len(values) != self.size:
            raise CollectiveMismatchError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )
        base = self._claim_tags()
        out: list[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for step in range(1, self.size):
            to = (self.rank + step) % self.size
            frm = (self.rank - step) % self.size
            sreq = self.isend(to, values[to], tag=base + step, size=size)
            out[frm] = await self.recv(frm, tag=base + step)
            await sreq.wait()
        return out

    @_observed("scan", "linear-chain")
    async def scan(
        self, value: Any, op: Callable[[Any, Any], Any] = SUM, size: int | None = None
    ) -> Any:
        """Inclusive prefix scan (linear chain, like small-P MPI_Scan)."""
        base = self._claim_tags()
        acc = value
        if self.rank > 0:
            prev = await self.recv(self.rank - 1, tag=base)
            if prev is not LOST:
                acc = op(prev, value)
        if self.rank < self.size - 1:
            await self.send(self.rank + 1, acc, tag=base, size=size)
        return acc

    # -- communicator construction ----------------------------------------

    @_observed("split", "gather+bcast")
    async def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Collective split; returns the new communicator (None if color<0)."""
        key = self.rank if key is None else key
        triples = await self.gather((color, key, self.rank), root=0)
        contexts: dict[int, CommContext] | None = None
        if self.rank == 0:
            assert triples is not None
            groups: dict[int, list[tuple[int, int]]] = {}
            for triple in triples:
                if triple is LOST:
                    continue  # fault hole: that rank cannot join any group
                c, k, r = triple
                if c >= 0:
                    groups.setdefault(c, []).append((k, r))
            contexts = {}
            for c in sorted(groups):
                members = [r for _k, r in sorted(groups[c])]
                contexts[c] = CommContext(self.engine, [self.world_rank(m) for m in members])
        contexts = await self.bcast(contexts, root=0)
        if color < 0:
            return None
        ctx = contexts[color]
        my_world = self.world_rank(self.rank)
        local_rank = ctx.local_of[my_world]
        return Communicator(ctx, local_rank, self.task)

    @_observed("dup", "gather+bcast")
    async def dup(self) -> "Communicator":
        """Collective duplicate: a congruent communicator with fresh state."""
        new = await self.split(color=0, key=self.rank)
        assert new is not None
        return new


def _binomial_subtree(rank: int, size: int, root: int) -> list[int]:
    """All ranks in the binomial subtree rooted at ``rank``."""
    from .topology import binomial_children

    out = [rank]
    stack = [rank]
    while stack:
        node = stack.pop()
        for child in binomial_children(node, size, root):
            out.append(child)
            stack.append(child)
    return out
