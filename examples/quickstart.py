#!/usr/bin/env python3
"""Quickstart: trace a small stencil code with Chameleon.

Runs a 1-D halo-exchange kernel on 8 simulated MPI ranks under the
Chameleon tracer, prints the transition-graph decisions the marker took,
the compressed online trace, and replays it to check the timing accuracy.

Run:  python examples/quickstart.py
"""

from repro.core import ChameleonConfig, ChameleonTracer
from repro.replay import accuracy, replay_trace
from repro.simmpi import run_spmd
from repro.workloads import NullTracer

NPROCS = 8
TIMESTEPS = 12


async def stencil(ctx, tracer):
    """A toy iterative SPMD kernel: halo exchange + reduction per step."""
    for step in range(TIMESTEPS):
        with ctx.frame("halo_exchange"):
            ctx.compute(0.002)  # 2 ms of local work
            if ctx.rank + 1 < ctx.size:
                await tracer.send(ctx.rank + 1, None, tag=1, size=8 * 1024)
            if ctx.rank > 0:
                await tracer.recv(ctx.rank - 1, tag=1)
        with ctx.frame("residual"):
            await tracer.allreduce(0.0, size=8)
        await tracer.marker()  # timestep boundary: the Chameleon marker


async def traced_main(ctx):
    tracer = ChameleonTracer(ctx, ChameleonConfig(k=3))
    await stencil(ctx, tracer)
    trace = await tracer.finalize()
    return {"trace": trace, "cstats": tracer.cstats, "clock": ctx.clock}


async def app_main(ctx):
    await stencil(ctx, NullTracer(ctx))
    return ctx.clock


def main() -> None:
    print(f"== Chameleon quickstart: {NPROCS} ranks, {TIMESTEPS} timesteps ==\n")

    traced = run_spmd(traced_main, NPROCS)
    app = run_spmd(app_main, NPROCS)

    cstats = traced.results[0]["cstats"]
    print("marker calls:", cstats.effective_calls)
    print("states:      ", dict(cstats.state_counts))
    print("clusters (Call-Paths):", cstats.num_callpaths, "- K used:", cstats.k_used)
    print()

    trace = traced.results[0]["trace"]
    print("online trace at rank 0:")
    print(f"  {trace.leaf_count()} PRSD events representing "
          f"{trace.expanded_count()} original MPI calls "
          f"(compression ratio {trace.compression_ratio():.1f}x)")
    for node in trace.nodes:
        print("   ", node)
    print()

    app_time = max(app.results)
    traced_time = max(r["clock"] for r in traced.results)
    print(f"application time : {app_time * 1e3:8.3f} ms")
    print(f"traced time      : {traced_time * 1e3:8.3f} ms "
          f"(overhead {100 * (traced_time - app_time) / app_time:.2f}%)")

    replay = replay_trace(trace)
    acc = accuracy(app_time, replay.time)
    print(f"replay time      : {replay.time * 1e3:8.3f} ms "
          f"(accuracy vs app: {100 * acc:.2f}%)")

    out = "/tmp/quickstart.scalatrace"
    trace.save(out)
    print(f"\ntrace written to {out}")

    # The same workflow on a paper benchmark through the stable facade —
    # one import, cached and parallelizable via the experiment engine:
    import repro

    result = repro.run("bt", nprocs=4, mode="chameleon",
                       workload_params={"problem_class": "A", "iterations": 4})
    roundtrip = repro.replay(repro.load_trace(out))
    print(f"\nrepro.run('bt'): {result.trace.leaf_count()} PRSD events, "
          f"repro.replay(load_trace(...)): {roundtrip.time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
