#!/usr/bin/env python3
"""Extensions tour: auto-markers, trace extrapolation, DVFS energy.

Three capabilities beyond the paper's evaluation (built from its §VII
discussion and conclusion):

1. **Automatic marker insertion** — trace an iterative kernel that never
   calls ``marker()``; the tracer detects the timestep period on its own.
2. **ScalaExtrap-lite** — extrapolate the trace from 8 to 32 ranks and
   replay it at the larger scale.
3. **DVFS energy model** — estimate the energy saved by down-clocking the
   idle non-lead ranks during the lead phase.

Run:  python examples/extrapolate_and_energy.py
"""

from repro.core import (
    AutoMarkerTracer,
    ChameleonConfig,
    PowerModel,
    energy_report,
)
from repro.replay import extrapolate_trace, replay_trace
from repro.simmpi import run_spmd
from repro.workloads import NullTracer

NPROCS = 8
STEPS = 12


async def kernel(ctx, tracer):
    """Iterative kernel with NO manual markers."""
    for _ in range(STEPS):
        with ctx.frame("halo"):
            ctx.compute(0.003)
            if ctx.rank + 1 < ctx.size:
                await tracer.send(ctx.rank + 1, None, size=4096)
            if ctx.rank > 0:
                await tracer.recv(ctx.rank - 1)
        with ctx.frame("residual"):
            await tracer.allreduce(0.0, size=8)


async def traced_main(ctx):
    tracer = AutoMarkerTracer(ctx, ChameleonConfig(k=3))
    await kernel(ctx, tracer)
    trace = await tracer.finalize()
    return {
        "trace": trace,
        "auto_markers": tracer.auto_markers,
        "states": dict(tracer.cstats.state_counts),
        "is_lead": tracer.tracing,
    }


async def app_main(ctx):
    await kernel(ctx, NullTracer(ctx))
    return None


def main() -> None:
    print(f"== extensions tour: {NPROCS} ranks, {STEPS} timesteps ==\n")

    traced = run_spmd(traced_main, NPROCS)
    app = run_spmd(app_main, NPROCS)
    r0 = traced.results[0]

    print("1) automatic marker insertion")
    print(f"   markers fired automatically: {r0['auto_markers']}")
    print(f"   transition-graph states:     {r0['states']}\n")

    trace = r0["trace"]
    print("2) trace extrapolation (ScalaExtrap-lite)")
    big, report = extrapolate_trace(trace, 32)
    replay_small = replay_trace(trace)
    replay_big = replay_trace(big)
    print(f"   original : P={trace.nprocs}, replay {replay_small.time * 1e3:.2f} ms")
    print(f"   extrapolated: P={big.nprocs}, replay {replay_big.time * 1e3:.2f} ms "
          f"({report.coverage * 100:.0f}% of ranklists rescaled)\n")

    print("3) DVFS energy on non-lead ranks (paper's future work)")
    leads = {r for r, res in enumerate(traced.results) if res["is_lead"]}
    rep = energy_report(
        app.busy_times, app.max_time,
        traced.busy_times, traced.max_time,
        leads, PowerModel(),
    )
    print(f"   leads: {sorted(leads)} of {NPROCS} ranks")
    print(f"   traced energy          : {rep.traced_joules:.3f} J")
    print(f"   traced energy with DVFS: {rep.traced_dvfs_joules:.3f} J "
          f"({rep.dvfs_savings * 100:.1f}% saved)")


if __name__ == "__main__":
    main()
