#!/usr/bin/env python3
"""Sweep3D with a program phase change: watching the transition graph.

Runs the Sweep3D wavefront skeleton on a simulated 16-rank cluster, then
switches the code into a different kernel mid-run (as an adaptive code
would), and prints the per-marker decisions Chameleon's transition graph
took: AT -> C -> L ... flush on the phase change -> C again.

Run:  python examples/sweep3d_phases.py
"""

from repro.core import ChameleonConfig, ChameleonTracer
from repro.simmpi import run_spmd
from repro.workloads import Sweep3D

NPROCS = 16
PHASE1_STEPS = 6
PHASE2_STEPS = 6


async def main(ctx):
    tracer = ChameleonTracer(ctx, ChameleonConfig(k=9))
    sweep = Sweep3D(nx=16, ny=16, nz=32, iterations=1)
    decisions = []

    # phase 1: transport sweeps
    for step in range(PHASE1_STEPS):
        await sweep.timestep(ctx, tracer, step)
        decisions.append(await tracer.marker())

    # phase 2: the code switches to a different kernel (e.g. a source
    # iteration with pure collectives)
    for _ in range(PHASE2_STEPS):
        with ctx.frame("source_iteration"):
            ctx.compute(0.001)
            await tracer.allreduce(0.0, size=8)
            await tracer.barrier()
        decisions.append(await tracer.marker())

    trace = await tracer.finalize()
    return {"decisions": decisions, "cstats": tracer.cstats, "trace": trace}


def run() -> None:
    print(f"== Sweep3D with a mid-run phase change ({NPROCS} ranks) ==\n")
    result = run_spmd(main, NPROCS)
    r0 = result.results[0]

    print("marker timeline (one row per timestep):")
    for i, d in enumerate(r0["decisions"], start=1):
        actions = []
        if d.do_cluster:
            actions.append("cluster")
        if d.do_merge:
            actions.append("merge->online trace")
        if d.phase_changed:
            actions.append("phase change detected")
        print(f"  step {i:2d}: {d.state.value:12s} {' + '.join(actions)}")

    cs = r0["cstats"]
    print("\nsummary:")
    print("  state counts:   ", dict(cs.state_counts))
    print("  re-clusterings: ", cs.reclusterings)
    print("  Call-Path groups:", cs.num_callpaths, "/ K used:", cs.k_used)

    trace = r0["trace"]
    print(
        f"\nonline trace: {trace.leaf_count()} PRSD events for "
        f"{trace.expanded_count()} MPI calls over {trace.nprocs} ranks"
    )


if __name__ == "__main__":
    run()
