#!/usr/bin/env python3
"""Replay-accuracy study: BT under all four tracing modes.

Reproduces the paper's central accuracy experiment in miniature: run NPB BT
uninstrumented, under ScalaTrace, under Chameleon and under the ACURDION
baseline; replay the ScalaTrace and Chameleon traces; and compare replay
times against the application (paper Figure 5 / Observation 3).

Run:  python examples/replay_accuracy.py
"""

from repro.harness import Mode, overhead, render_table, run_suite
from repro.replay import AccuracyReport, replay_trace

NPROCS = 16
PARAMS = {"problem_class": "A", "iterations": 12}


def run() -> None:
    print(f"== BT class A on {NPROCS} simulated ranks ==\n")
    suite = run_suite(
        "bt",
        NPROCS,
        modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE, Mode.ACURDION),
        workload_params=PARAMS,
        call_frequency=3,
    )
    app = suite[Mode.APP]

    rows = []
    for mode in (Mode.CHAMELEON, Mode.SCALATRACE, Mode.ACURDION):
        result = suite[mode]
        trace = result.trace
        rows.append(
            [
                mode.value,
                overhead(result, app),
                trace.leaf_count(),
                trace.expanded_count(),
                trace.size_bytes(),
            ]
        )
    print(
        render_table(
            ["mode", "overhead [s]", "PRSD events", "MPI calls", "trace bytes"],
            rows,
            title="Tracing overhead and trace sizes",
        )
    )

    st_replay = replay_trace(suite[Mode.SCALATRACE].trace, nprocs=NPROCS)
    ch_replay = replay_trace(suite[Mode.CHAMELEON].trace, nprocs=NPROCS)
    report = AccuracyReport(
        app_time=app.max_time,
        scalatrace_replay_time=st_replay.time,
        chameleon_replay_time=ch_replay.time,
    )
    print()
    print(
        render_table(
            ["quantity", "seconds"],
            [
                ["application", report.app_time],
                ["ScalaTrace replay", report.scalatrace_replay_time],
                ["Chameleon replay", report.chameleon_replay_time],
            ],
            title="Replay times",
        )
    )
    print()
    print(f"Chameleon accuracy vs application : "
          f"{100 * report.chameleon_vs_app:.2f}%")
    print(f"Chameleon accuracy vs ScalaTrace  : "
          f"{100 * report.chameleon_vs_scalatrace:.2f}%")
    print("(paper: 97.75% for BT under strong scaling)")


if __name__ == "__main__":
    run()
