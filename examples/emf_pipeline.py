#!/usr/bin/env python3
"""EMF: tracing a master-worker medical pipeline (the paper's EMF rows).

Shows the two properties the paper highlights for EMF:

* intra-node compression collapses the whole master-worker run into a
  handful of PRSD events (strided fan-out + hub encodings), and
* Chameleon finds exactly two behaviour clusters (master vs workers,
  Table I: K=2), with one lead per cluster carrying the trace.

Run:  python examples/emf_pipeline.py
"""

from repro.core import ChameleonConfig, ChameleonTracer
from repro.harness import Mode, overhead, run_suite
from repro.replay import accuracy, replay_trace
from repro.simmpi import run_spmd
from repro.workloads import EMF

NPROCS = 16


async def main(ctx):
    tracer = ChameleonTracer(ctx, ChameleonConfig(k=2, call_frequency=4))
    workload = EMF(total_tasks=360, task_seconds=0.002)
    await workload.run(ctx, tracer)
    trace = await tracer.finalize()
    return {"trace": trace, "cstats": tracer.cstats}


def run() -> None:
    print(f"== EMF master-worker pipeline ({NPROCS} ranks: 1 master, "
          f"{NPROCS - 1} workers) ==\n")

    result = run_spmd(main, NPROCS)
    r0 = result.results[0]
    trace, cs = r0["trace"], r0["cstats"]

    print(f"clusters: {cs.num_callpaths} Call-Path groups (paper: K=2 — "
          "master vs workers)")
    print(f"states:   {dict(cs.state_counts)}\n")

    print(f"trace: {trace.leaf_count()} PRSD events representing "
          f"{trace.expanded_count()} MPI calls")
    print("(paper: 'intra-compression reduces all MPI events to just 6 PRSD "
          "events')\n")
    for i, leaf in enumerate(trace.leaves()):
        print(f"  [{i}] {leaf.record}")

    # overhead comparison: the paper notes ScalaTrace wins for EMF at small
    # P because the traces are tiny — reproduce that crossover observation
    print("\noverhead comparison at P=16 (paper: ScalaTrace wins below the "
          "crossover at ~P=501):")
    suite = run_suite(
        "emf",
        NPROCS,
        modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
        workload_params={"total_tasks": 360, "task_seconds": 0.002},
        call_frequency=4,
    )
    app = suite[Mode.APP]
    for mode in (Mode.CHAMELEON, Mode.SCALATRACE):
        print(f"  {mode.value:10s}: {overhead(suite[mode], app) * 1e3:.3f} ms")

    rep = replay_trace(trace)
    print(f"\nreplay accuracy vs application: "
          f"{100 * accuracy(result.max_time, rep.time):.2f}%")


if __name__ == "__main__":
    run()
