#!/usr/bin/env python3
"""Trace tooling tour: analysis, timelines, and semantic diffing.

Traces are only useful if you can look inside them.  This example traces
the LULESH skeleton, then:

1. prints the aggregate summary and communication matrix,
2. reconstructs a per-rank Gantt timeline (mini-Vampir),
3. semantically diffs the ScalaTrace and Chameleon traces of the same run —
   verifying the paper's claim that the online trace is equivalent to the
   ``MPI_Finalize`` output.

Run:  python examples/trace_tools.py
"""

import numpy as np

from repro.core import ChameleonConfig, ChameleonTracer
from repro.replay import reconstruct_timeline
from repro.scalatrace import (
    ScalaTraceTracer,
    communication_matrix,
    diff_traces,
    summarize,
)
from repro.simmpi import run_spmd
from repro.workloads import LULESH

NPROCS = 8  # LULESH needs a perfect cube
STEPS = 6


def trace_with(factory):
    async def main(ctx):
        tracer = factory(ctx)
        await LULESH(edge_elems=8, iterations=STEPS).run(ctx, tracer)
        return await tracer.finalize()

    return run_spmd(main, NPROCS).results[0]


def main() -> None:
    print(f"== trace tooling on LULESH ({NPROCS} ranks, {STEPS} steps) ==\n")
    st_trace = trace_with(ScalaTraceTracer)
    ch_trace = trace_with(lambda ctx: ChameleonTracer(ctx, ChameleonConfig(k=9)))

    print("1) summary")
    print(summarize(st_trace).report())

    print("\n2) communication matrix (KB sent, row -> column)")
    matrix = communication_matrix(st_trace) / 1024.0
    for row in matrix:
        print("   " + " ".join(f"{v:7.1f}" for v in row))
    total = matrix.sum()
    heaviest = np.unravel_index(np.argmax(matrix), matrix.shape)
    print(f"   total {total:.1f} KB; heaviest pair {heaviest}")

    print("\n3) per-rank timeline (mini-Vampir)")
    timeline = reconstruct_timeline(st_trace)
    print(timeline.gantt(width=60))

    print("\n4) online-trace equivalence (Chameleon vs ScalaTrace)")
    diff = diff_traces(st_trace, ch_trace)
    print(diff.report())
    assert diff.similarity() > 0.95


if __name__ == "__main__":
    main()
