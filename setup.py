"""Legacy shim: this offline environment lacks the `wheel` package that
PEP-517 editable installs require, so `pip install -e .` falls back to
`setup.py develop` via this file."""
from setuptools import setup

setup()
