#!/usr/bin/env python
"""CI smoke test for ``repro serve``: boot, stream, poll, download, diff.

Boots a real server (in-process, ephemeral port), streams a small trace
to it in several chunks, polls the job to completion, downloads the
resulting trace, and diffs it byte-for-byte against the batch oracle —
the equivalent ``repro.stream_run`` over the same events.  Exits
non-zero on any mismatch.

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import stream_run  # noqa: E402
from repro.harness.cache import RunCache  # noqa: E402
from repro.harness.engine import ExperimentEngine  # noqa: E402
from repro.serve.app import ServerThread  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.jobs import ServeConfig  # noqa: E402
from repro.workloads.stream import default_steps  # noqa: E402

NPROCS = 8
MODE = "chameleon"


def fail(msg: str) -> None:
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    steps = default_steps()
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    engine = ExperimentEngine(jobs=2, cache=RunCache(cache_dir))
    server = ServerThread(engine, ServeConfig(port=0, batch_window=0.01))
    server.start()
    print(f"serve-smoke: server up on port {server.port}")
    try:
        client = ServeClient(port=server.port)
        if client.health() != {"ok": True}:
            fail("health probe")

        job = client.create_job(nprocs=NPROCS, mode=MODE,
                                label="ci-smoke")["job"]
        for lo in range(0, len(steps), 2):
            ack = client.send_events(job, steps[lo:lo + 2])
            print(f"serve-smoke: streamed chunk, "
                  f"{ack['steps_received']} steps received")
        client.close_job(job)
        doc = client.wait(job, timeout=300)
        if doc["state"] != "complete":
            fail(f"job ended {doc['state']}: {doc.get('error')}")
        print(f"serve-smoke: job complete, cache={doc.get('cache')}, "
              f"digest={doc.get('digest', '')[:12]}")

        served_trace = client.trace(job)
        served_leads = sorted(client.clusters(job)["leads"])

        oracle = stream_run(steps, nprocs=NPROCS, mode=MODE,
                            engine=ExperimentEngine(jobs=0, cache=None))
        if doc["result"]["fingerprint"] != oracle.fingerprint():
            fail("streamed fingerprint != batch fingerprint")
        if served_trace != oracle.trace.serialize():
            fail("streamed trace bytes != batch trace bytes")
        if served_leads != sorted(oracle.lead_ranks):
            fail(f"lead ranks {served_leads} != "
                 f"{sorted(oracle.lead_ranks)}")
        print("serve-smoke: streamed result is bit-identical to batch")

        # The dedup layer: the same events through the shared engine must
        # be served from the cache the streamed job populated.
        again = stream_run(steps, nprocs=NPROCS, mode=MODE, engine=engine)
        if engine.cache.stats.hits < 1:
            fail("batch rerun did not hit the streamed job's cache entry")
        if again.fingerprint() != oracle.fingerprint():
            fail("cached rerun fingerprint mismatch")
        print("serve-smoke: batch rerun served from the streamed cache "
              "entry")

        # Quarantine isolation: a poisoned sibling fails alone.
        poisoned = client.create_job(
            nprocs=4, steps=[{"ops": [{"op": "bcast", "root": 99}]}],
            label="ci-poison",
        )["job"]
        bad = client.wait(poisoned, timeout=300)
        if bad["state"] != "failed" or "quarantine" not in bad:
            fail(f"poisoned job not quarantined: {bad}")
        print(f"serve-smoke: poisoned job quarantined "
              f"({bad['quarantine']['reason']})")
    finally:
        server.stop()
    print("serve-smoke: OK")


if __name__ == "__main__":
    main()
