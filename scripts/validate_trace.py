#!/usr/bin/env python
"""Validate exporter output against the checked-in JSON schemas.

Used by CI after the smoke run::

    PYTHONPATH=src python scripts/validate_trace.py trace.json
    PYTHONPATH=src python scripts/validate_trace.py --metrics metrics.jsonl

Exits non-zero (printing every violation) if the document does not match
``schemas/chrome_trace.schema.json`` / ``schemas/metrics_row.schema.json``.
No third-party validator is needed — the subset interpreter in
:mod:`repro.obs.schema` covers everything the schemas use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.schema import validate  # noqa: E402


def _load(path: str):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def validate_trace(path: str) -> list[str]:
    schema = _load(REPO / "schemas" / "chrome_trace.schema.json")
    doc = _load(path)
    errors = validate(doc, schema)
    # Structural invariants beyond what JSON Schema expresses: timed events
    # sorted by timestamp, and every event on a rank lane (pid == tid).
    timed = [e for e in doc.get("traceEvents", []) if e.get("ph") != "M"]
    stamps = [e["ts"] for e in timed]
    if stamps != sorted(stamps):
        errors.append("$.traceEvents: timed events are not sorted by ts")
    for i, e in enumerate(timed):
        if e.get("pid") != e.get("tid"):
            errors.append(f"$.traceEvents[{i}]: pid != tid (not a rank lane)")
    return errors


def validate_metrics(path: str) -> list[str]:
    schema = _load(REPO / "schemas" / "metrics_row.schema.json")
    errors: list[str] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            errors.extend(
                f"line {lineno}: {e}" for e in validate(row, schema)
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="Chrome trace JSON to check")
    parser.add_argument("--metrics", help="metrics JSONL to check")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass a trace and/or --metrics")

    failures = 0
    if args.trace:
        errors = validate_trace(args.trace)
        if errors:
            failures += 1
            print(f"{args.trace}: INVALID")
            for e in errors[:25]:
                print(f"  {e}")
        else:
            print(f"{args.trace}: OK (chrome_trace.schema.json)")
    if args.metrics:
        errors = validate_metrics(args.metrics)
        if errors:
            failures += 1
            print(f"{args.metrics}: INVALID")
            for e in errors[:25]:
                print(f"  {e}")
        else:
            print(f"{args.metrics}: OK (metrics_row.schema.json)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
