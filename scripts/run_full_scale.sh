#!/usr/bin/env bash
# Regenerate every paper table/figure at full scale (P up to 1024, paper
# iteration counts).  Expect hours of CPU time; the quick-scale run
# (`pytest benchmarks/ --benchmark-only`) finishes in minutes instead.
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_FULL_SCALE=1
exec python -m pytest benchmarks/ --benchmark-only -q "$@"
