"""Probabilistic replay timing (histogram draws, Wu et al. [27])."""

import random

import pytest

from repro.replay import accuracy, replay_trace
from repro.scalatrace import DeltaHistogram, ScalaTraceTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


class TestHistogramDraw:
    def test_empty_draws_zero(self):
        assert DeltaHistogram().draw(random.Random(1)) == 0.0

    def test_single_value_draw_near_value(self):
        h = DeltaHistogram()
        for _ in range(5):
            h.record(0.01)
        rng = random.Random(7)
        for _ in range(20):
            v = h.draw(rng)
            # within the 0.01 bin (log bins: factor ~1.8 wide)
            assert 0.002 < v < 0.02

    def test_draw_respects_distribution(self):
        h = DeltaHistogram()
        for _ in range(90):
            h.record(1e-3)
        for _ in range(10):
            h.record(1.0)
        rng = random.Random(3)
        draws = [h.draw(rng) for _ in range(500)]
        big = sum(1 for d in draws if d > 0.1)
        assert 20 < big < 200  # ~10% +- tolerance

    def test_deterministic_per_seed(self):
        h = DeltaHistogram()
        for i in range(10):
            h.record(0.001 * (i + 1))
        a = [h.draw(random.Random(42)) for _ in range(1)]
        b = [h.draw(random.Random(42)) for _ in range(1)]
        assert a == b


def make_trace():
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        for i in range(8):
            with ctx.frame("step"):
                ctx.compute(0.005 if i % 2 else 0.015)  # bimodal gaps
                await tracer.allreduce(0.0, size=8)
        return await tracer.finalize()

    return run_spmd(main, 4, config=SimConfig(network=ZERO_COST)).results[0]


class TestSampledReplay:
    def test_modes_validated(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            replay_trace(trace, timing="exact")

    def test_sampled_replay_reproducible(self):
        trace = make_trace()
        a = replay_trace(trace, timing="sampled", seed=11).time
        b = replay_trace(trace, timing="sampled", seed=11).time
        assert a == b

    def test_different_seeds_differ(self):
        trace = make_trace()
        a = replay_trace(trace, timing="sampled", seed=11).time
        b = replay_trace(trace, timing="sampled", seed=12).time
        assert a != b

    def test_sampled_accuracy_close_to_mean(self):
        trace = make_trace()
        mean_time = replay_trace(trace, timing="mean").time
        sampled = replay_trace(trace, timing="sampled", seed=5).time
        assert accuracy(mean_time, sampled) > 0.5
