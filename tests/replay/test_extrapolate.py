"""ScalaExtrap-lite: extrapolating traces to larger process counts."""

import pytest

from repro.replay import coverage, extrapolate_trace, replay_trace
from repro.scalatrace import ScalaTraceTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def trace_of(prog, nprocs):
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        await prog(ctx, tracer)
        return await tracer.finalize()

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results[0]


async def chain(ctx, tr, steps=4):
    """1-D stencil: interior band sends right, receives left."""
    for _ in range(steps):
        with ctx.frame("halo"):
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, size=128)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1)
            await tr.allreduce(0.0, size=8)


async def hub(ctx, tr, rounds=3):
    """Master-worker: rank 0 dispatches to 1..P-1."""
    for _ in range(rounds):
        if ctx.rank == 0:
            with ctx.frame("dispatch"):
                for w in range(1, ctx.size):
                    await tr.send(w, None, tag=5, size=64)
            with ctx.frame("collect"):
                for _w in range(1, ctx.size):
                    await tr.recv(tag=6)
        else:
            with ctx.frame("work"):
                await tr.recv(0, tag=5)
                await tr.send(0, None, tag=6, size=16)


class TestExtrapolateStencil:
    def test_validation(self):
        trace = trace_of(chain, 4)
        with pytest.raises(ValueError):
            extrapolate_trace(trace, 2)

    def test_same_size_is_copy(self):
        trace = trace_of(chain, 6)
        out, report = extrapolate_trace(trace, 6)
        assert out.nprocs == 6
        assert out.expanded_count() == trace.expanded_count()

    def test_world_collective_scales(self):
        from repro.scalatrace import Op

        trace = trace_of(chain, 8)
        out, report = extrapolate_trace(trace, 16)
        colls = [
            l.record for l in out.leaves() if l.record.op is Op.ALLREDUCE
        ]
        covered = set()
        for rec in colls:
            covered.update(rec.participants.ranks())
        assert covered == set(range(16))

    def test_band_participants_scale(self):
        from repro.scalatrace import Op

        trace = trace_of(chain, 8)
        out, _ = extrapolate_trace(trace, 16)
        sends = [l.record for l in out.leaves() if l.record.op is Op.SEND]
        covered = set()
        for rec in sends:
            covered.update(rec.participants.ranks())
        # senders: everyone but the last rank at the NEW size
        assert covered == set(range(15))

    def test_extrapolated_replay_covers_new_ranks(self):
        trace = trace_of(chain, 8)
        out, report = extrapolate_trace(trace, 24)
        cov = coverage(out)
        assert cov.full_coverage
        assert report.coverage > 0.9

    def test_extrapolated_replay_matches_native_trace(self):
        """The headline property: replaying a P=8 trace extrapolated to 16
        behaves like a real P=16 trace."""
        small = trace_of(chain, 8)
        big_native = trace_of(chain, 16)
        big_extrap, _ = extrapolate_trace(small, 16)

        native = replay_trace(big_native, nprocs=16)
        extrap = replay_trace(big_extrap, nprocs=16)
        assert extrap.stats.p2p_dropped == 0
        # same number of operations replayed at the new scale
        assert extrap.stats.sends == native.stats.sends
        assert extrap.stats.recvs == native.stats.recvs
        # replay time within 25% of the native trace's
        assert abs(extrap.time - native.time) <= 0.25 * native.time


class TestExtrapolateHub:
    def test_master_fanout_stretches(self):
        from repro.scalatrace import Op

        trace = trace_of(hub, 5)
        out, report = extrapolate_trace(trace, 9)
        master_sends = [
            l.record
            for l in out.leaves()
            if l.record.op is Op.SEND and 0 in l.record.participants.ranks()
        ]
        assert master_sends
        p = master_sends[0].dest.pattern
        assert p is not None and p.length == 8  # P' - 1 workers

    def test_workers_scale_and_replay(self):
        small = trace_of(hub, 5)
        out, _ = extrapolate_trace(small, 9)
        native = trace_of(hub, 9)
        e = replay_trace(out, nprocs=9)
        n = replay_trace(native, nprocs=9)
        assert e.stats.p2p_dropped == 0
        assert e.stats.sends == n.stats.sends
        assert e.stats.recvs == n.stats.recvs
