"""Replay engine: schedules, reconciliation, timed replay, accuracy."""

import pytest

from repro.core import ChameleonConfig, ChameleonTracer
from repro.replay import (
    AccuracyReport,
    accuracy,
    build_schedule,
    coverage,
    events_by_rank,
    reconcile,
    replay_trace,
)
from repro.scalatrace import ScalaTraceTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def trace_of(prog, nprocs, tracer_cls=ScalaTraceTracer, **kw):
    async def main(ctx):
        tracer = tracer_cls(ctx, **kw)
        await prog(ctx, tracer)
        return await tracer.finalize()

    res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
    return res.results[0]


async def stencil(ctx, tr, steps=4, work=0.01):
    for _ in range(steps):
        with ctx.frame("sweep"):
            ctx.compute(work)
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, size=64)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1)
            await tr.allreduce(1.0)
        await tr.marker()


class TestScheduleBuilding:
    def test_every_participant_scheduled(self):
        trace = trace_of(stencil, 6)
        schedules = build_schedule(trace, 6)
        assert all(len(s) > 0 for s in schedules)

    def test_endpoint_transposition(self):
        trace = trace_of(stencil, 6)
        schedules = build_schedule(trace, 6)
        sends = [(r, op.peer) for r, s in enumerate(schedules) for op in s
                 if op.kind == "send"]
        # every send goes to rank+1
        assert sends and all(dst == r + 1 for r, dst in sends)

    def test_out_of_range_endpoints_skipped(self):
        trace = trace_of(stencil, 6)
        # replay on fewer ranks: offsets beyond the edge are dropped
        schedules = build_schedule(trace, 3)
        for r, sched in enumerate(schedules):
            for op in sched:
                if op.kind in ("send", "recv") and op.peer is not None:
                    assert 0 <= op.peer < 3

    def test_collective_groups_cover_world(self):
        # Edge ranks fold into different loop shapes than interior ranks, so
        # one source-level allreduce can appear as several records with
        # partial groups; their union must still cover every rank.
        trace = trace_of(stencil, 4)
        schedules = build_schedule(trace, 4)
        colls = [op for s in schedules for op in s if op.kind == "coll"]
        assert colls
        covered = set()
        for op in colls:
            covered.update(op.group)
        assert covered == {0, 1, 2, 3}

    def test_uniform_collective_group_is_world(self):
        async def prog(ctx, tr):
            for _ in range(3):
                with ctx.frame("u"):
                    await tr.allreduce(1.0)
                await tr.marker()

        trace = trace_of(prog, 4)
        schedules = build_schedule(trace, 4)
        colls = [op for s in schedules for op in s if op.kind == "coll"]
        assert colls and all(op.group == (0, 1, 2, 3) for op in colls)

    def test_sleep_from_histogram(self):
        trace = trace_of(stencil, 4)
        schedules = build_schedule(trace, 4)
        assert any(op.sleep > 0 for s in schedules for op in s)


class TestReconcile:
    def test_balanced_schedule_untouched(self):
        trace = trace_of(stencil, 6)
        schedules = build_schedule(trace, 6)
        before = sum(len(s) for s in schedules)
        dropped = reconcile(schedules)
        assert dropped == 0
        assert sum(len(s) for s in schedules) == before

    def test_unmatched_recv_dropped(self):
        from repro.replay import ReplayOp

        schedules = [
            [ReplayOp("send", 0.0, 8, peer=1)],
            [
                ReplayOp("recv", 0.0, 8, peer=0),
                ReplayOp("recv", 0.0, 8, peer=0),
            ],
        ]
        dropped = reconcile(schedules)
        assert dropped == 1
        assert len(schedules[1]) == 1

    def test_unmatched_send_dropped(self):
        from repro.replay import ReplayOp

        schedules = [
            [ReplayOp("send", 0.0, 8, peer=1), ReplayOp("send", 0.0, 8, peer=1)],
            [ReplayOp("recv", 0.0, 8, peer=0)],
        ]
        dropped = reconcile(schedules)
        assert dropped == 1

    def test_wildcard_recv_matches_leftover(self):
        from repro.replay import ReplayOp

        schedules = [
            [ReplayOp("send", 0.0, 8, peer=1)],
            [ReplayOp("recv", 0.0, 8, peer=None)],
        ]
        assert reconcile(schedules) == 0


class TestTimedReplay:
    def test_replay_runs_and_times(self):
        trace = trace_of(stencil, 6)
        result = replay_trace(trace)
        assert result.time > 0
        assert result.stats.ops_issued == result.stats.ops_scheduled
        assert result.stats.p2p_dropped == 0

    def test_replay_time_tracks_compute(self):
        fast = trace_of(lambda c, t: stencil(c, t, work=0.001), 4)
        slow = trace_of(lambda c, t: stencil(c, t, work=0.1), 4)
        t_fast = replay_trace(fast).time
        t_slow = replay_trace(slow).time
        assert t_slow > t_fast * 5

    def test_replay_accuracy_against_app(self):
        """Replaying an (unclustered) trace approximates the original app's
        virtual time — the foundation of Figures 5/7."""
        steps, work = 5, 0.02

        async def app(ctx):
            await stencil(ctx, _NullTracer(ctx), steps=steps, work=work)
            return ctx.clock

        trace = trace_of(lambda c, t: stencil(c, t, steps=steps, work=work), 8)
        app_time = max(run_spmd(app, 8).results)
        rep = replay_trace(trace)
        assert accuracy(app_time, rep.time) > 0.85

    def test_chameleon_trace_cluster_replay(self):
        """A Chameleon trace (lead events stamped with cluster ranklists)
        replays on ALL ranks."""
        trace = trace_of(
            lambda c, t: stencil(c, t, steps=6),
            8,
            tracer_cls=ChameleonTracer,
            config=ChameleonConfig(k=3),
        )
        rep = replay_trace(trace)
        assert rep.time > 0
        cov = coverage(trace)
        assert cov.full_coverage
        assert cov.out_of_range_endpoints == 0

    def test_events_by_rank_balanced_for_spmd(self):
        trace = trace_of(stencil, 8)
        counts = events_by_rank(trace)
        assert len(counts) == 8
        assert min(counts) > 0
        assert max(counts) <= 2 * min(counts)

    def test_replay_invalid_nprocs(self):
        trace = trace_of(stencil, 4)
        with pytest.raises(ValueError):
            replay_trace(trace, nprocs=0)


class _NullTracer:
    """Pass-through 'tracer' used to time the uninstrumented app."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.comm = ctx.comm

    def __getattr__(self, name):
        return getattr(self.comm, name)

    async def marker(self):
        return None


class TestAccuracyMetric:
    def test_perfect(self):
        assert accuracy(10.0, 10.0) == 1.0

    def test_ten_percent_off(self):
        assert accuracy(10.0, 11.0) == pytest.approx(0.9)
        assert accuracy(10.0, 9.0) == pytest.approx(0.9)

    def test_zero_reference(self):
        assert accuracy(0.0, 0.0) == 1.0
        assert accuracy(0.0, 5.0) == 0.0

    def test_report_properties(self):
        rep = AccuracyReport(
            app_time=10.0, scalatrace_replay_time=9.5, chameleon_replay_time=9.0
        )
        assert rep.chameleon_vs_scalatrace == pytest.approx(1 - 0.5 / 9.5)
        assert rep.chameleon_vs_app == pytest.approx(0.9)
        assert rep.scalatrace_vs_app == pytest.approx(0.95)
        row = rep.row()
        assert set(row) == {
            "app",
            "replay_scalatrace",
            "replay_chameleon",
            "acc_vs_scalatrace",
            "acc_vs_app",
        }
