"""Timeline reconstruction (mini-Vampir) from replayed traces."""

import pytest

from repro.replay import reconstruct_timeline
from repro.scalatrace import ScalaTraceTracer
from repro.simmpi import run_spmd


@pytest.fixture(scope="module")
def trace():
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        for _ in range(4):
            with ctx.frame("work"):
                ctx.compute(0.01)
                if ctx.rank + 1 < ctx.size:
                    await tracer.send(ctx.rank + 1, None, size=128)
                if ctx.rank > 0:
                    await tracer.recv(ctx.rank - 1)
                await tracer.allreduce(0.0, size=8)
        return await tracer.finalize()

    return run_spmd(main, 4).results[0]


class TestTimeline:
    def test_every_rank_has_intervals(self, trace):
        tl = reconstruct_timeline(trace)
        assert tl.nprocs == 4
        assert all(len(ivs) > 0 for ivs in tl.intervals)
        assert tl.makespan > 0

    def test_interval_kinds(self, trace):
        tl = reconstruct_timeline(trace)
        kinds = {iv.kind for ivs in tl.intervals for iv in ivs}
        assert "compute" in kinds
        assert "coll" in kinds
        assert "send" in kinds or "recv" in kinds

    def test_intervals_ordered_and_bounded(self, trace):
        tl = reconstruct_timeline(trace)
        for ivs in tl.intervals:
            for prev, cur in zip(ivs, ivs[1:]):
                assert cur.start >= prev.start - 1e-12
            for iv in ivs:
                assert 0 <= iv.start <= iv.end <= tl.makespan + 1e-12

    def test_busy_fraction(self, trace):
        tl = reconstruct_timeline(trace)
        for rank in range(tl.nprocs):
            assert 0 <= tl.busy_fraction(rank) <= 1
        # compute dominates this kernel on at least one rank
        assert max(tl.busy_fraction(r) for r in range(4)) > 0.3

    def test_gantt_renders(self, trace):
        tl = reconstruct_timeline(trace)
        text = tl.gantt(width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 ranks + axis
        assert all("|" in ln for ln in lines[:4])
        assert "=" in text  # compute blocks visible

    def test_empty_timeline_gantt(self):
        from repro.replay import Timeline

        assert "(empty timeline)" in Timeline([], 0.0).gantt()
