"""Intra-node RSD/PRSD loop compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scalatrace import (
    EventNode,
    EventRecord,
    IntraCompressor,
    LoopNode,
    Op,
    RankSet,
    expand,
)


def ev(sig: int, op: Op = Op.SEND, dest_off: int | None = 1, rank: int = 0) -> EventRecord:
    from repro.scalatrace import EndpointStat

    dest = (
        EndpointStat.of(rank + dest_off, rank)
        if op.is_p2p and dest_off is not None
        else None
    )
    r = EventRecord(
        op=op,
        stack_sig=sig,
        comm_id=1,
        dest=dest,
        participants=RankSet.single(rank),
    )
    r.count.add(64)
    r.tag.add(0)
    r.dhist.record(0.0)
    return r


def feed(compressor: IntraCompressor, sigs) -> None:
    for s in sigs:
        compressor.append(ev(s))


class TestBasicFolding:
    def test_no_repetition_no_folding(self):
        c = IntraCompressor()
        feed(c, [1, 2, 3])
        assert len(c.nodes) == 3
        assert all(isinstance(n, EventNode) for n in c.nodes)

    def test_two_identical_events_fold(self):
        c = IntraCompressor()
        feed(c, [1, 1])
        assert len(c.nodes) == 1
        loop = c.nodes[0]
        assert isinstance(loop, LoopNode)
        assert loop.iters == 2 and len(loop.body) == 1

    def test_repeated_event_absorbs(self):
        c = IntraCompressor()
        feed(c, [1] * 10)
        assert len(c.nodes) == 1
        assert c.nodes[0].iters == 10

    def test_pair_pattern_folds(self):
        # A B A B A B -> Loop(3, [A, B])
        c = IntraCompressor()
        feed(c, [1, 2, 1, 2, 1, 2])
        assert len(c.nodes) == 1
        loop = c.nodes[0]
        assert loop.iters == 3 and len(loop.body) == 2

    def test_paper_example_nested_prsd(self):
        # for 1000: (for 100: send, recv); barrier
        # -> Loop(1000, [Loop(100, [send, recv]), barrier])
        c = IntraCompressor()
        outer, inner = 50, 20  # scaled-down but same structure
        for _ in range(outer):
            for _ in range(inner):
                c.append(ev(101, Op.SEND))
                c.append(ev(102, Op.RECV, dest_off=None))
            c.append(ev(103, Op.BARRIER))
        assert len(c.nodes) == 1
        top = c.nodes[0]
        assert isinstance(top, LoopNode) and top.iters == outer
        assert len(top.body) == 2
        inner_loop, barrier = top.body
        assert isinstance(inner_loop, LoopNode) and inner_loop.iters == inner
        assert len(inner_loop.body) == 2
        assert isinstance(barrier, EventNode)
        assert barrier.record.op is Op.BARRIER

    def test_leaf_count_is_paper_n(self):
        c = IntraCompressor()
        for _ in range(30):
            c.append(ev(1))
            c.append(ev(2))
            c.append(ev(3))
        assert c.leaf_count() == 3

    def test_expanded_count_preserved(self):
        c = IntraCompressor()
        sigs = [1, 2, 1, 2, 3, 1, 2, 1, 2, 3] * 5
        feed(c, sigs)
        assert c.expanded_count() == len(sigs)

    def test_stats_merged_across_iterations(self):
        c = IntraCompressor()
        for i in range(8):
            r = ev(7)
            r.dhist = type(r.dhist)()
            r.dhist.record(float(i))
            c.append(r)
        loop = c.nodes[0]
        leaf = loop.body[0]
        assert leaf.record.dhist.total == 8
        assert leaf.record.dhist.mean == pytest.approx(3.5)


class TestExpansionRoundtrip:
    @given(
        st.lists(st.integers(1, 4), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_expansion_reproduces_signature_stream(self, sig_stream):
        """Fundamental invariant: compression is lossless on the event
        *sequence* (signatures in order)."""
        c = IntraCompressor()
        feed(c, sig_stream)
        expanded = [r.stack_sig for r in expand(c.nodes)]
        assert expanded == sig_stream

    @given(
        st.lists(st.integers(1, 3), min_size=1, max_size=8),
        st.integers(2, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_periodic_streams_compress_well(self, period, reps):
        c = IntraCompressor()
        stream = period * reps
        feed(c, stream)
        # compressed size must not exceed ~2 periods' worth of leaves
        assert c.leaf_count() <= 2 * len(set(period)) * len(period)
        expanded = [r.stack_sig for r in expand(c.nodes)]
        assert expanded == stream


class TestWindow:
    def test_pattern_longer_than_window_not_folded(self):
        c = IntraCompressor(window=3)
        pattern = [1, 2, 3, 4, 5]  # body of 5 > window 3
        feed(c, pattern * 2)
        # No loop can form over the full pattern.
        assert all(
            not (isinstance(n, LoopNode) and len(n.body) == 5) for n in c.nodes
        )
        expanded = [r.stack_sig for r in expand(c.nodes)]
        assert expanded == pattern * 2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            IntraCompressor(window=0)


class TestMeterAndState:
    def test_meter_counts_work(self):
        c = IntraCompressor()
        feed(c, [1, 2] * 10)
        assert c.meter.comparisons > 0
        assert c.meter.folds > 0

    def test_take_nodes_resets(self):
        c = IntraCompressor()
        feed(c, [1, 1, 1])
        nodes = c.take_nodes()
        assert len(nodes) == 1
        assert c.nodes == []
        assert c.leaf_count() == 0
        assert c.appended_events == 0

    def test_size_bytes_sublinear_for_loops(self):
        c_loop = IntraCompressor()
        feed(c_loop, [1] * 100)
        c_flat = IntraCompressor()
        feed(c_flat, list(range(100)))
        assert c_loop.size_bytes() < c_flat.size_bytes() / 10
