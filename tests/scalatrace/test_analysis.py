"""Trace analysis: summaries, communication matrices, hotspots."""

import numpy as np
import pytest

from repro.scalatrace import ScalaTraceTracer
from repro.scalatrace.analysis import (
    collective_volume,
    communication_matrix,
    hotspots,
    summarize,
)
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


@pytest.fixture(scope="module")
def chain_trace():
    """Each rank sends 100 B to rank+1 and allreduces, 4 times."""

    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        for _ in range(4):
            with ctx.frame("step"):
                if ctx.rank + 1 < ctx.size:
                    await tracer.send(ctx.rank + 1, None, size=100)
                if ctx.rank > 0:
                    await tracer.recv(ctx.rank - 1)
                await tracer.allreduce(0.0, size=8)
        return await tracer.finalize()

    return run_spmd(main, 6, config=SimConfig(network=ZERO_COST)).results[0]


class TestSummarize:
    def test_counts(self, chain_trace):
        s = summarize(chain_trace)
        assert s.nprocs == 6
        assert s.events_by_op["send"] == 5 * 4  # 5 senders x 4 steps
        assert s.events_by_op["recv"] == 5 * 4
        assert s.events_by_op["allreduce"] == 6 * 4

    def test_bytes(self, chain_trace):
        s = summarize(chain_trace)
        assert s.bytes_by_op["send"] == pytest.approx(100 * 20)
        assert s.bytes_by_op["allreduce"] == pytest.approx(8 * 24)

    def test_report_renders(self, chain_trace):
        text = summarize(chain_trace).report()
        assert "PRSD events" in text
        assert "send" in text and "allreduce" in text

    def test_compression_fields(self, chain_trace):
        s = summarize(chain_trace)
        assert s.total_events > s.prsd_events
        assert s.compression_ratio > 1
        assert s.size_bytes > 0


class TestCommunicationMatrix:
    def test_chain_pattern(self, chain_trace):
        m = communication_matrix(chain_trace)
        assert m.shape == (6, 6)
        for r in range(5):
            assert m[r, r + 1] == pytest.approx(400.0)  # 4 steps x 100 B
        # nothing else
        expected = np.zeros((6, 6))
        for r in range(5):
            expected[r, r + 1] = 400.0
        assert np.allclose(m, expected)

    def test_collective_volume(self, chain_trace):
        assert collective_volume(chain_trace) == pytest.approx(8 * 24)

    def test_hotspots(self, chain_trace):
        hs = hotspots(chain_trace, top=3)
        assert len(hs) == 3
        ranks = {r for r, _b in hs}
        assert ranks <= set(range(5))  # rank 5 sends nothing
        assert all(b == pytest.approx(400.0) for _r, b in hs)

    def test_hub_pattern_resolved_via_abs(self):
        """Workers sending to the absolute master show up as column 0."""

        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            for _ in range(3):
                with ctx.frame("round"):
                    if ctx.rank == 0:
                        for _w in range(ctx.size - 1):
                            await tracer.recv()
                    else:
                        await tracer.send(0, None, size=64)
            return await tracer.finalize()

        trace = run_spmd(main, 5, config=SimConfig(network=ZERO_COST)).results[0]
        m = communication_matrix(trace)
        for w in range(1, 5):
            assert m[w, 0] == pytest.approx(3 * 64)
        assert m[:, 1:].sum() == 0
